//! Umbrella crate for the *On-the-Fly Pipeline Parallelism* (SPAA 2013)
//! reproduction.
//!
//! This crate simply re-exports the workspace members so that examples and
//! integration tests (and downstream users who want "everything") can depend
//! on a single crate:
//!
//! * [`piper`] — the core contribution: a work-stealing runtime with
//!   on-the-fly pipeline parallelism (`pipe_while`), PIPER scheduling,
//!   throttling, lazy enabling and dependency folding.
//! * [`pipedag`] — pipeline/computation dag model, work/span analysis and a
//!   discrete-event scheduler simulator used by the evaluation harness.
//! * [`pipeserve`] — the multi-tenant pipeline executor service: admits,
//!   schedules and observes many concurrent pipelines over one shared
//!   `piper` pool (frame-budget admission, weighted-fair dispatch,
//!   cooperative cancellation).
//! * [`piped`] — the network layer: a TCP daemon + client streaming byte
//!   jobs onto a shared `pipeserve` executor over a CRC-framed wire
//!   protocol (graceful drain, per-connection backpressure).
//! * [`baselines`] — bind-to-stage (Pthreads-style) and construct-and-run
//!   (TBB-style) pipeline executors the paper compares against.
//! * [`workloads`] — the PARSEC-analogue pipeline programs: ferret, dedup,
//!   x264 and the synthetic pipe-fib.
//! * Substrates: [`wsdeque`], [`checksum`], [`compress`], [`imagesim`],
//!   [`videosim`].

pub use baselines;
pub use checksum;
pub use compress;
pub use imagesim;
pub use piped;
pub use pipedag;
pub use piper;
pub use pipeserve;
pub use videosim;
pub use workloads;
pub use wsdeque;
