//! Determinism tests: the paper argues (Section 10, citing Bocchino et al.)
//! that a key advantage of Cilk-P's model over hand-rolled Pthreads
//! pipelines is that pipeline programs stay *deterministic*. These tests
//! pin that property for every workload: the output must be bit-identical
//! to the serial reference regardless of the number of workers, the
//! throttling limit, or which runtime optimizations are enabled.

use onthefly_pipeline::piper::{PipeOptions, ThreadPool};
use onthefly_pipeline::workloads::{dedup, ferret, pipefib, uniform, x264};

/// The four lazy-enabling × dependency-folding combinations of Section 9.
fn optimization_grid() -> Vec<(PipeOptions, &'static str)> {
    vec![
        (PipeOptions::default(), "lazy+fold"),
        (PipeOptions::default().lazy_enabling(false), "eager+fold"),
        (
            PipeOptions::default().dependency_folding(false),
            "lazy+nofold",
        ),
        (
            PipeOptions::default()
                .lazy_enabling(false)
                .dependency_folding(false),
            "eager+nofold",
        ),
    ]
}

#[test]
fn ferret_is_deterministic_across_workers_and_optimizations() {
    let config = ferret::FerretConfig::tiny();
    let index = ferret::build_index(&config);
    let serial = ferret::run_serial(&config, &index);
    for workers in [1usize, 2, 4] {
        let pool = ThreadPool::new(workers);
        for (options, name) in optimization_grid() {
            let out = ferret::run_piper(&config, &index, &pool, options);
            assert_eq!(out, serial, "P={workers}, options={name}");
        }
    }
}

#[test]
fn dedup_is_deterministic_across_throttling_limits() {
    let config = dedup::DedupConfig::tiny();
    let input = config.generate_input();
    let serial = dedup::run_serial(&config, &input);
    let pool = ThreadPool::new(4);
    for k in [1usize, 2, 3, 8, 64] {
        let out = dedup::run_piper(&config, &input, &pool, PipeOptions::with_throttle(k));
        assert_eq!(out, serial, "K={k}");
        assert_eq!(out.decode().unwrap(), input, "K={k}: archive must decode");
    }
}

#[test]
fn x264_is_deterministic_across_optimizations() {
    let config = x264::X264Config::tiny();
    let serial = x264::run_serial(&config);
    let pool = ThreadPool::new(3);
    for (options, name) in optimization_grid() {
        let out = x264::run_piper(&config, &pool, options);
        assert_eq!(out, serial, "options={name}");
    }
}

#[test]
fn x264_repeated_runs_are_identical() {
    // Work stealing makes the *schedule* nondeterministic; the output must
    // not be. Run the same encode several times on the same pool.
    let config = x264::X264Config::tiny();
    let pool = ThreadPool::new(4);
    let first = x264::run_piper(&config, &pool, PipeOptions::default());
    for run in 1..4 {
        let again = x264::run_piper(&config, &pool, PipeOptions::default());
        assert_eq!(again, first, "run {run}");
    }
}

#[test]
fn pipefib_is_deterministic_across_optimizations_and_workers() {
    let config = pipefib::PipeFibConfig {
        n: 220,
        block_bits: 1,
    };
    let serial = pipefib::run_serial(&config);
    for workers in [1usize, 3] {
        let pool = ThreadPool::new(workers);
        for (options, name) in optimization_grid() {
            let (bits, _) = pipefib::run_piper(&config, &pool, options);
            assert_eq!(bits, serial, "P={workers}, options={name}");
        }
    }
}

#[test]
fn uniform_pipeline_is_deterministic_under_every_setting() {
    let config = uniform::UniformConfig::tiny();
    let serial = uniform::run_serial(&config);
    for workers in [1usize, 2, 4] {
        let pool = ThreadPool::new(workers);
        for (options, name) in optimization_grid() {
            let (out, stats) = uniform::run_piper(&config, &pool, options);
            assert_eq!(out, serial, "P={workers}, options={name}");
            assert_eq!(stats.iterations, config.iterations as u64);
        }
        for k in [1usize, 2, 16] {
            let (out, stats) = uniform::run_piper(&config, &pool, PipeOptions::with_throttle(k));
            assert_eq!(out, serial, "P={workers}, K={k}");
            assert!(
                stats.peak_active_iterations <= k as u64,
                "P={workers}, K={k}"
            );
        }
    }
}

#[test]
fn serial_references_are_stable_across_calls() {
    // The synthetic input generators are seeded; two independent generations
    // must agree, otherwise every comparison in the harness is meaningless.
    let dedup_cfg = dedup::DedupConfig::tiny();
    assert_eq!(dedup_cfg.generate_input(), dedup_cfg.generate_input());

    let ferret_cfg = ferret::FerretConfig::tiny();
    let index_a = ferret::build_index(&ferret_cfg);
    let index_b = ferret::build_index(&ferret_cfg);
    assert_eq!(
        ferret::run_serial(&ferret_cfg, &index_a),
        ferret::run_serial(&ferret_cfg, &index_b)
    );

    let x264_cfg = x264::X264Config::tiny();
    assert_eq!(x264::run_serial(&x264_cfg), x264::run_serial(&x264_cfg));
}
