//! Integration tests for the analytical machinery: closed-form checks from
//! Section 1, the dag families of Figures 1, 3 and 10, and the interplay of
//! recorded workload dags with the analyzer, the burdened (Cilkview-style)
//! model, the validator and the scheduler simulator.

use onthefly_pipeline::pipedag::{
    self, analyze, analyze_burdened, analyze_unthrottled, generators, signature, simulate_piper,
    to_dot, validate, BurdenModel, DotOptions,
};
use onthefly_pipeline::workloads::{dedup, ferret, pipefib, x264};

#[test]
fn figure1_sps_closed_forms_hold_across_parameters() {
    // Section 1: T1 = n(r+2), span = n + r (+1 with this crate's boundary
    // convention), parallelism ≥ r/2 + 1 when 1 << r <= n.
    for (n, r) in [(100usize, 20u64), (500, 100), (1_000, 999)] {
        let spec = generators::sps(n, 1, r, 1);
        let a = analyze_unthrottled(&spec);
        assert_eq!(a.work, n as u64 * (r + 2));
        assert_eq!(a.span, n as u64 + r + 1);
        assert!(
            a.parallelism() >= r as f64 / 2.0,
            "n={n} r={r}: parallelism {}",
            a.parallelism()
        );
    }
}

#[test]
fn generated_and_recorded_dags_pass_structural_validation() {
    let ferret_cfg = ferret::FerretConfig::tiny();
    let index = ferret::build_index(&ferret_cfg);
    let dedup_cfg = dedup::DedupConfig::tiny();
    let input = dedup_cfg.generate_input();
    let specs = [
        generators::sps(20, 1, 9, 1),
        generators::x264_dag(8, 4, 2, 1, 3, 2, 3, 1),
        generators::pathological(500_000),
        ferret::record_spec(&ferret_cfg, &index),
        dedup::record_spec(&dedup_cfg, &input),
        pipefib::build_spec(&pipefib::PipeFibConfig::tiny(), 1),
        x264::build_spec(&x264::X264Config::tiny(), 5, 3, 1),
    ];
    for (i, spec) in specs.iter().enumerate() {
        let violations = validate(spec);
        assert!(violations.is_empty(), "spec {i}: {violations:?}");
    }
}

#[test]
fn ferret_and_dedup_signatures_match_the_papers_pipelines() {
    // Figure 1: ferret is SPS. Figure 4: dedup is SSPS.
    assert_eq!(signature(&generators::sps(10, 1, 5, 1)), "SPS");
    assert_eq!(signature(&generators::ssps(10, 1, 2, 9, 1)), "SSPS");
}

#[test]
fn x264_dag_shape_matches_figure3() {
    // Stage skipping: iteration i's first row node sits at stage 1 + w·i.
    let w = 2u64;
    let spec = generators::x264_dag(6, 3, 4, w, 3, 2, 5, 1);
    for (i, iteration) in spec.iterations.iter().enumerate() {
        assert_eq!(iteration[0].stage, 0);
        assert_eq!(iteration[1].stage, 1 + w * i as u64);
    }
    // The dag still has parallelism despite the serial P-frame rows.
    let a = analyze_unthrottled(&spec);
    assert!(a.parallelism() > 1.0);
    // Its DOT rendering references null nodes (the collapsed skipped stages
    // Figure 3 draws as edge intersections).
    let dot = to_dot(&spec, &DotOptions::default());
    assert!(dot.contains("shape=point"));
}

#[test]
fn throttled_span_interpolates_between_unthrottled_and_serial() {
    let spec = generators::ssps(200, 1, 2, 30, 1);
    let unthrottled = analyze_unthrottled(&spec).span;
    let serial = spec.work();
    let mut previous = serial;
    // Larger windows can only shorten (or keep) the span; K=1 serialises.
    assert_eq!(analyze(&spec, Some(1)).span, serial);
    for k in [2usize, 4, 16, 64, 256] {
        let span = analyze(&spec, Some(k)).span;
        assert!(span <= previous, "K={k}: {span} > {previous}");
        assert!(span >= unthrottled, "K={k}");
        previous = span;
    }
}

#[test]
fn pathological_dag_shows_the_theorem13_throttling_wall() {
    // Theorem 13: with a small throttling window no scheduler can achieve
    // more than a small constant speedup on the Figure 10 dag, while a
    // window of Ω(T1^{1/3}) recovers the parallelism.
    let spec = generators::pathological(8_000_000);
    let t1 = spec.work();
    let cube_root = (t1 as f64).powf(1.0 / 3.0);
    let workers = 16;

    let small_k = simulate_piper(&spec, workers, Some(2));
    let large_k = simulate_piper(&spec, workers, Some((4.0 * cube_root) as usize));
    let small_speedup = small_k.speedup_vs(t1);
    let large_speedup = large_k.speedup_vs(t1);
    assert!(
        small_speedup < 4.0,
        "tiny window should cap speedup near 3, got {small_speedup:.2}"
    );
    assert!(
        large_speedup > small_speedup * 1.5,
        "a Θ(T1^(1/3)) window should recover parallelism: {small_speedup:.2} -> {large_speedup:.2}"
    );
    // And the price of that speedup is space: more live iterations.
    assert!(large_k.peak_live_iterations > small_k.peak_live_iterations);
}

#[test]
fn simulator_respects_greedy_bounds_on_recorded_workload_dags() {
    let config = dedup::DedupConfig::tiny();
    let input = config.generate_input();
    let spec = dedup::record_spec(&config, &input);
    let a = analyze_unthrottled(&spec);
    for p in [1usize, 2, 4, 8, 16] {
        let sim = simulate_piper(&spec, p, None);
        assert_eq!(sim.work_executed, a.work);
        // Brent: T_P ≤ T1/P + T∞ for a greedy schedule; and T_P ≥ max(T1/P, T∞).
        assert!(sim.makespan as f64 >= a.work as f64 / p as f64 - 1.0);
        assert!(sim.makespan >= a.span);
        assert!(sim.makespan <= a.work.div_ceil(p as u64) + a.span);
    }
}

#[test]
fn burdened_parallelism_never_exceeds_plain_parallelism() {
    let ferret_cfg = ferret::FerretConfig::tiny();
    let index = ferret::build_index(&ferret_cfg);
    let specs = vec![
        ferret::record_spec(&ferret_cfg, &index),
        generators::pipe_fib(100, 1, 3),
        generators::uniform(64, 6, 20),
    ];
    for spec in &specs {
        let plain = analyze_unthrottled(spec);
        let burdened = analyze_burdened(spec, &BurdenModel::default());
        assert!(burdened.burdened_span >= plain.span);
        assert!(burdened.burdened_parallelism() <= plain.parallelism() + 1e-9);
        // The speedup estimate brackets are consistent for every P.
        for p in [1usize, 4, 16] {
            let est = burdened.estimate(p);
            assert!(est.lower <= est.upper + 1e-9);
            assert!(est.upper <= p as f64 + 1e-9);
        }
    }
}

#[test]
fn recorded_x264_dag_has_growing_stage_skip() {
    let config = x264::X264Config::tiny();
    let spec = x264::build_spec(&config, 5, 3, 1);
    // Iterations correspond to I/P frames only; each skips more stages than
    // the one before (the Figure 3 staircase).
    let first_stages: Vec<u64> = spec.iterations.iter().map(|it| it[1].stage).collect();
    for pair in first_stages.windows(2) {
        assert!(
            pair[1] >= pair[0],
            "stage skip must not decrease: {first_stages:?}"
        );
    }
    assert!(
        first_stages.last().unwrap() > first_stages.first().unwrap(),
        "stage skip must grow over the stream: {first_stages:?}"
    );
}

#[test]
fn dot_export_of_recorded_ferret_dag_is_complete() {
    let config = ferret::FerretConfig::tiny();
    let index = ferret::build_index(&config);
    let spec = ferret::record_spec(&config, &index);
    let dot = pipedag::to_dot(&spec, &DotOptions::default());
    // One node declaration per real node.
    let declared = dot.matches(" [label=").count();
    assert_eq!(declared, spec.num_nodes());
    assert!(dot.starts_with("digraph"));
}
