//! Workspace-level integration tests: exercise the public API across crates
//! the way a downstream user would (runtime + workloads + baselines +
//! analysis together).

use std::sync::{Arc, Mutex};

use onthefly_pipeline::baselines::{BindToStageConfig, ConstructAndRunConfig};
use onthefly_pipeline::pipedag;
use onthefly_pipeline::piper::{
    NodeOutcome, PipeOptions, PipelineIteration, Stage0, StagedPipeline, ThreadPool,
};
use onthefly_pipeline::workloads::{dedup, ferret, pipefib, x264};

#[test]
fn all_executors_agree_on_dedup() {
    let config = dedup::DedupConfig::tiny();
    let input = config.generate_input();
    let serial = dedup::run_serial(&config, &input);
    let pool = ThreadPool::new(3);
    assert_eq!(
        dedup::run_piper(&config, &input, &pool, PipeOptions::default()),
        serial
    );
    assert_eq!(
        dedup::run_bind_to_stage(&config, &input, BindToStageConfig::default()),
        serial
    );
    assert_eq!(
        dedup::run_construct_and_run(&config, &input, ConstructAndRunConfig::default()),
        serial
    );
    assert_eq!(serial.decode().unwrap(), input);
}

#[test]
fn all_executors_agree_on_ferret() {
    let config = ferret::FerretConfig::tiny();
    let index = ferret::build_index(&config);
    let serial = ferret::run_serial(&config, &index);
    let pool = ThreadPool::new(2);
    assert_eq!(
        ferret::run_piper(&config, &index, &pool, PipeOptions::default()),
        serial
    );
    assert_eq!(
        ferret::run_bind_to_stage(&config, &index, BindToStageConfig::default()),
        serial
    );
}

#[test]
fn x264_on_the_fly_pipeline_is_deterministic_across_pool_sizes() {
    let config = x264::X264Config::tiny();
    let serial = x264::run_serial(&config);
    for workers in [1usize, 2, 4] {
        let pool = ThreadPool::new(workers);
        let out = x264::run_piper(&config, &pool, PipeOptions::with_throttle(4 * workers));
        assert_eq!(out, serial, "P = {workers}");
    }
}

#[test]
fn pipefib_matches_serial_and_respects_throttle() {
    let config = pipefib::PipeFibConfig {
        n: 150,
        block_bits: 1,
    };
    let serial = pipefib::run_serial(&config);
    let pool = ThreadPool::new(3);
    let (bits, stats) = pipefib::run_piper(&config, &pool, PipeOptions::with_throttle(6));
    assert_eq!(bits, serial);
    assert!(stats.peak_active_iterations <= 6);
}

#[test]
fn nested_pipeline_and_fork_join_compose() {
    // An outer pipeline whose parallel stage runs a nested StagedPipeline
    // and fork-join work — the D = 2 nesting of the space-bound theorem.
    let pool = Arc::new(ThreadPool::new(3));
    let results = Arc::new(Mutex::new(Vec::new()));

    struct Outer {
        i: u64,
        pool: Arc<ThreadPool>,
        results: Arc<Mutex<Vec<u64>>>,
    }
    impl PipelineIteration for Outer {
        fn run_node(&mut self, stage: u64) -> NodeOutcome {
            match stage {
                1 => {
                    // Nested fork-join.
                    let (a, b) = onthefly_pipeline::piper::join(|| self.i * 3, || self.i * 4);
                    // Nested pipeline.
                    let acc = Arc::new(Mutex::new(0u64));
                    let acc2 = Arc::clone(&acc);
                    let mut j = 0u64;
                    let limit = self.i % 3 + 1;
                    StagedPipeline::<u64>::new()
                        .parallel(|x| *x += 1)
                        .serial(move |x| *acc2.lock().unwrap() += *x)
                        .run(&self.pool, PipeOptions::with_throttle(2), move || {
                            if j == limit {
                                None
                            } else {
                                j += 1;
                                Some(j - 1)
                            }
                        });
                    let inner = *acc.lock().unwrap();
                    self.results.lock().unwrap().push(a + b + inner);
                    NodeOutcome::WaitFor(2)
                }
                _ => NodeOutcome::Done,
            }
        }
    }

    let sink = Arc::clone(&results);
    let pool2 = Arc::clone(&pool);
    let n = 9u64;
    pool.pipe_while(PipeOptions::with_throttle(4), move |i| {
        if i == n {
            return Stage0::Stop;
        }
        Stage0::wait(Outer {
            i,
            pool: Arc::clone(&pool2),
            results: Arc::clone(&sink),
        })
    });

    let got = results.lock().unwrap().clone();
    let expected: Vec<u64> = (0..n)
        .map(|i| {
            let limit = i % 3 + 1;
            let inner: u64 = (0..limit).map(|x| x + 1).sum();
            i * 7 + inner
        })
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn recorded_dedup_dag_parallelism_is_in_the_papers_regime() {
    let config = dedup::DedupConfig::tiny();
    let input = config.generate_input();
    let spec = dedup::record_spec(&config, &input);
    let analysis = pipedag::analyze_unthrottled(&spec);
    // The paper's Cilkview measurement for dedup is 7.4; the synthetic input
    // should land in the same order of magnitude (limited parallelism).
    assert!(analysis.parallelism() > 1.5 && analysis.parallelism() < 200.0);
    // And the simulator should plateau: 16 simulated workers cannot beat the
    // dag's parallelism.
    let sim = pipedag::simulate_piper(&spec, 16, Some(64));
    assert!(sim.speedup_vs(spec.work()) <= analysis.parallelism() + 1e-9);
}

#[test]
fn throttling_bounds_live_iterations_under_stress() {
    let pool = ThreadPool::new(4);
    for k in [1usize, 3, 8] {
        let mut next = 0u64;
        let stats = StagedPipeline::<u64>::new()
            .parallel(|x| {
                let mut acc = *x;
                for r in 0..500u64 {
                    acc = acc.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(r);
                }
                *x = std::hint::black_box(acc);
            })
            .serial(|_| {})
            .run(&pool, PipeOptions::with_throttle(k), move || {
                if next == 500 {
                    None
                } else {
                    next += 1;
                    Some(next)
                }
            });
        assert!(stats.peak_active_iterations <= k as u64);
        assert_eq!(stats.iterations, 500);
    }
}
