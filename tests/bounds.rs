//! Integration tests for the paper's resource bounds on the *real* runtime
//! (not the simulator): Theorem 11's space bound (at most `K` live
//! iterations per `pipe_while`, including nested pipelines), Theorem 10's
//! steal behaviour in the degenerate cases where it can be pinned exactly,
//! and the Section 9 optimization counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use onthefly_pipeline::piper::{
    NodeOutcome, PipeOptions, PipelineIteration, Stage0, StagedPipeline, ThreadPool,
};
use onthefly_pipeline::workloads::{dedup, pipefib, uniform};

#[test]
fn space_bound_holds_for_every_throttling_limit() {
    // Theorem 11: a pipe_while never has more than K live iterations.
    let config = uniform::UniformConfig {
        iterations: 400,
        stages: 4,
        work_rounds: 20,
    };
    let pool = ThreadPool::new(4);
    for k in [1usize, 2, 4, 7, 16, 100] {
        let (_, stats) = uniform::run_piper(&config, &pool, PipeOptions::with_throttle(k));
        assert!(
            stats.peak_active_iterations <= k as u64,
            "K={k}: peak {}",
            stats.peak_active_iterations
        );
    }
}

#[test]
fn default_throttle_is_4p_as_in_the_paper() {
    // With no explicit limit the runtime uses K = 4·P (the paper's default
    // for dedup/x264), so the peak live iterations stay within that.
    for workers in [1usize, 2, 4] {
        let pool = ThreadPool::new(workers);
        let config = uniform::UniformConfig {
            iterations: 300,
            stages: 3,
            work_rounds: 10,
        };
        let (_, stats) = uniform::run_piper(&config, &pool, PipeOptions::default());
        assert!(
            stats.peak_active_iterations <= 4 * workers as u64,
            "P={workers}: peak {}",
            stats.peak_active_iterations
        );
    }
}

#[test]
fn nested_pipelines_bound_space_at_both_levels() {
    // D = 2 nesting: each outer iteration runs an inner pipe_while. Both the
    // outer and every inner pipeline must respect their own K.
    let pool = Arc::new(ThreadPool::new(4));
    let inner_peaks = Arc::new(Mutex::new(Vec::new()));

    struct Outer {
        pool: Arc<ThreadPool>,
        inner_peaks: Arc<Mutex<Vec<u64>>>,
    }
    impl PipelineIteration for Outer {
        fn run_node(&mut self, stage: u64) -> NodeOutcome {
            if stage == 1 {
                let mut next = 0u64;
                let stats = StagedPipeline::<u64>::new()
                    .parallel(|x| *x = x.wrapping_mul(0x9E3779B97F4A7C15))
                    .serial(|_| {})
                    .run(&self.pool, PipeOptions::with_throttle(3), move || {
                        if next == 40 {
                            None
                        } else {
                            next += 1;
                            Some(next)
                        }
                    });
                self.inner_peaks
                    .lock()
                    .unwrap()
                    .push(stats.peak_active_iterations);
                NodeOutcome::WaitFor(2)
            } else {
                NodeOutcome::Done
            }
        }
    }

    let pool2 = Arc::clone(&pool);
    let peaks = Arc::clone(&inner_peaks);
    let outer_stats = pool.pipe_while(PipeOptions::with_throttle(2), move |i| {
        if i == 12 {
            return Stage0::Stop;
        }
        Stage0::wait(Outer {
            pool: Arc::clone(&pool2),
            inner_peaks: Arc::clone(&peaks),
        })
    });

    assert_eq!(outer_stats.iterations, 12);
    assert!(outer_stats.peak_active_iterations <= 2);
    let inner = inner_peaks.lock().unwrap();
    assert_eq!(inner.len(), 12);
    assert!(inner.iter().all(|&p| p <= 3), "inner peaks {inner:?}");
}

#[test]
fn one_worker_execution_performs_no_steals() {
    // Theorem 10's steal bucket is empty when P = 1: there is nobody to
    // steal from, so the serial elision must not generate steal attempts
    // that scale with the work.
    let pool = ThreadPool::new(1);
    let before = pool.metrics();
    let config = pipefib::PipeFibConfig {
        n: 300,
        block_bits: 1,
    };
    let (_, stats) = pipefib::run_piper(&config, &pool, PipeOptions::default());
    let delta = pool.metrics().since(&before);
    assert!(stats.nodes > 1_000, "sanity: plenty of nodes executed");
    assert!(
        delta.steals <= 4,
        "a single worker must not steal from itself (got {})",
        delta.steals
    );
}

#[test]
fn steal_attempts_stay_far_below_the_node_count() {
    // Theorem 10 bounds steal attempts by O(P·T∞) on dedicated processors.
    // On a shared/oversubscribed host the wall-clock-dependent part of that
    // bound is not measurable, but its qualitative content still is: the
    // scheduler must not perform work-proportional stealing (the whole point
    // of lazy enabling and the work-first principle). Check that steal
    // attempts stay well below the number of pipeline nodes executed.
    let pool = ThreadPool::new(4);
    let before = pool.metrics();
    let config = uniform::UniformConfig {
        iterations: 400,
        stages: 4,
        work_rounds: 400,
    };
    let (_, stats) = uniform::run_piper(&config, &pool, PipeOptions::default());
    let delta = pool.metrics().since(&before);
    assert_eq!(stats.nodes, 3 * 400); // stages 1..=3 per iteration
    let nodes = delta.nodes_executed.max(1);
    assert!(
        delta.steal_attempts < 4 * nodes,
        "steal attempts ({}) should not be work-proportional (nodes {})",
        delta.steal_attempts,
        nodes
    );
}

#[test]
fn dependency_folding_reduces_stage_counter_reads_on_dedup() {
    let config = dedup::DedupConfig::tiny();
    let input = config.generate_input();
    let pool = ThreadPool::new(2);
    // Run with and without folding; compare the cross-check counters via the
    // pool metrics (PipeStats are not returned by the dedup driver).
    let before = pool.metrics();
    let _ = dedup::run_piper(&config, &input, &pool, PipeOptions::default());
    let with_folding = pool.metrics().since(&before);

    let before = pool.metrics();
    let _ = dedup::run_piper(
        &config,
        &input,
        &pool,
        PipeOptions::default().dependency_folding(false),
    );
    let without_folding = pool.metrics().since(&before);

    assert_eq!(without_folding.folded_checks, 0);
    assert!(
        with_folding.cross_checks <= without_folding.cross_checks,
        "folding must not increase stage-counter reads ({} vs {})",
        with_folding.cross_checks,
        without_folding.cross_checks
    );
}

#[test]
fn throttle_suspensions_appear_only_under_tight_windows() {
    let pool = ThreadPool::new(4);
    let heavy_parallel_stage = |x: &mut u64| {
        let mut acc = *x;
        for r in 0..2_000u64 {
            acc = acc.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(r);
        }
        *x = std::hint::black_box(acc);
    };
    // A huge window never throttles a 100-iteration pipeline.
    let mut next = 0u64;
    let unthrottled = StagedPipeline::<u64>::new()
        .parallel(heavy_parallel_stage)
        .serial(|_| {})
        .run(&pool, PipeOptions::with_throttle(1_000), move || {
            if next == 100 {
                None
            } else {
                next += 1;
                Some(next)
            }
        });
    assert_eq!(unthrottled.throttle_suspensions, 0);

    // A window of 1 serialises the pipeline: at most one live iteration,
    // whatever the pool size. (Whether the control frame ever *suspends*
    // depends on who wins the race to resume it — with PIPER's depth-first
    // rule the producing worker often finishes the iteration itself before
    // producing the next one, so a zero suspension count is legitimate.)
    let mut next = 0u64;
    let throttled = StagedPipeline::<u64>::new()
        .parallel(heavy_parallel_stage)
        .serial(|_| {})
        .run(&pool, PipeOptions::with_throttle(1), move || {
            if next == 100 {
                None
            } else {
                next += 1;
                Some(next)
            }
        });
    assert_eq!(throttled.iterations, 100);
    assert!(throttled.peak_active_iterations <= 1);
}

#[test]
fn panics_inside_stages_propagate_and_leave_the_pool_usable() {
    // Failure injection: a panicking node must not deadlock the pool or
    // poison later pipelines.
    let pool = ThreadPool::new(3);
    let attempted = Arc::new(AtomicU64::new(0));

    struct Exploder {
        i: u64,
        attempted: Arc<AtomicU64>,
    }
    impl PipelineIteration for Exploder {
        fn run_node(&mut self, _stage: u64) -> NodeOutcome {
            self.attempted.fetch_add(1, Ordering::SeqCst);
            if self.i == 7 {
                panic!("intentional test panic in iteration 7");
            }
            NodeOutcome::Done
        }
    }

    let counter = Arc::clone(&attempted);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.pipe_while(PipeOptions::with_throttle(4), move |i| {
            if i == 32 {
                return Stage0::Stop;
            }
            Stage0::wait(Exploder {
                i,
                attempted: Arc::clone(&counter),
            })
        })
    }));
    assert!(result.is_err(), "the panic must propagate to the caller");
    // With K = 4, iteration 7 can only start after iterations 0–3 completed,
    // so at least those plus the exploding node itself ran.
    assert!(attempted.load(Ordering::SeqCst) >= 5);

    // The pool is still usable afterwards.
    let mut next = 0u64;
    let stats = StagedPipeline::<u64>::new()
        .parallel(|x| *x += 1)
        .serial(|_| {})
        .run(&pool, PipeOptions::default(), move || {
            if next == 20 {
                None
            } else {
                next += 1;
                Some(next)
            }
        });
    assert_eq!(stats.iterations, 20);
}
