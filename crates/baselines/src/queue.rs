//! A bounded MPMC queue with blocking push/pop and in-order retrieval.
//!
//! The PARSEC Pthreads pipelines connect stages with bounded concurrent
//! queues; the bound is their throttling mechanism. Serial stages must also
//! consume items in iteration order even when an upstream parallel stage
//! finished them out of order, so the queue supports both `pop_any` (for
//! parallel consumers) and `pop_in_order` (for serial consumers, which wait
//! for the next expected sequence number).

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};

struct QueueState<T> {
    items: BTreeMap<u64, T>,
    closed: bool,
}

/// A bounded queue of `(sequence number, item)` pairs.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue with the given capacity (at least 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: BTreeMap::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Inserts an item, blocking while the queue is full. Returns `false`
    /// if the queue was closed.
    pub fn push(&self, seq: u64, item: T) -> bool {
        let mut state = self.state.lock().unwrap();
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).unwrap();
        }
        if state.closed {
            return false;
        }
        state.items.insert(seq, item);
        drop(state);
        self.not_empty.notify_all();
        true
    }

    /// Removes any available item (the smallest sequence currently present),
    /// blocking while the queue is empty. Returns `None` once the queue is
    /// closed and drained.
    pub fn pop_any(&self) -> Option<(u64, T)> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some((&seq, _)) = state.items.iter().next() {
                let item = state.items.remove(&seq).unwrap();
                drop(state);
                self.not_full.notify_all();
                return Some((seq, item));
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap();
        }
    }

    /// Removes the item with sequence number exactly `expected`, blocking
    /// until it arrives. Returns `None` once the queue is closed and the
    /// expected item can no longer arrive.
    pub fn pop_in_order(&self, expected: u64) -> Option<T> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(item) = state.items.remove(&expected) {
                drop(state);
                self.not_full.notify_all();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap();
        }
    }

    /// Closes the queue: blocked producers give up, consumers drain what is
    /// left and then receive `None`.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_any_roundtrip() {
        let q = BoundedQueue::new(4);
        assert!(q.push(0, "a"));
        assert!(q.push(1, "b"));
        assert_eq!(q.pop_any(), Some((0, "a")));
        assert_eq!(q.pop_any(), Some((1, "b")));
    }

    #[test]
    fn pop_in_order_waits_for_expected_sequence() {
        let q = Arc::new(BoundedQueue::new(8));
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.pop_in_order(0));
        // Push out of order; the consumer must wait for seq 0.
        q.push(1, "later");
        thread::sleep(std::time::Duration::from_millis(10));
        q.push(0, "first");
        assert_eq!(h.join().unwrap(), Some("first"));
        assert_eq!(q.pop_in_order(1), Some("later"));
    }

    #[test]
    fn capacity_blocks_producer_until_consumed() {
        let q = Arc::new(BoundedQueue::new(2));
        q.push(0, 0);
        q.push(1, 1);
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || q2.push(2, 2));
        thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(q.len(), 2, "producer must be blocked");
        assert_eq!(q.pop_any(), Some((0, 0)));
        assert!(producer.join().unwrap());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_unblocks_consumers_and_producers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let consumer = thread::spawn(move || q2.pop_any());
        thread::sleep(std::time::Duration::from_millis(5));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
        assert!(!q.push(5, 5), "push after close must fail");
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything() {
        let q = Arc::new(BoundedQueue::new(16));
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..500u64 {
                        q.push(p * 500 + i, p * 500 + i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some((_, v)) = q.pop_any() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        assert_eq!(all, (0..2000).collect::<Vec<_>>());
    }
}
