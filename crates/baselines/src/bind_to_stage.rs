//! The Pthreads-style bind-to-stage pipeline executor.
//!
//! Mirrors the PARSEC implementations of ferret and dedup: every stage owns
//! dedicated threads — one for a serial stage, `Q` for a parallel stage
//! (the *oversubscription* parameter, Section 10) — connected by bounded
//! queues whose capacity throttles the pipeline. The producer closure plays
//! the role of the serial input stage.

use std::sync::Arc;
use std::thread;

use crate::queue::BoundedQueue;
use crate::stages::{StageKind, StageSet};

/// Configuration of the bind-to-stage executor.
#[derive(Debug, Clone, Copy)]
pub struct BindToStageConfig {
    /// Threads per parallel stage (`Q`); serial stages always get one.
    pub threads_per_parallel_stage: usize,
    /// Capacity of each inter-stage queue (the throttling knob).
    pub queue_capacity: usize,
}

impl Default for BindToStageConfig {
    fn default() -> Self {
        BindToStageConfig {
            threads_per_parallel_stage: 4,
            queue_capacity: 64,
        }
    }
}

/// A bind-to-stage pipeline over items of type `T`.
pub struct BindToStagePipeline<T> {
    stages: StageSet<T>,
    config: BindToStageConfig,
}

impl<T: Send + 'static> BindToStagePipeline<T> {
    /// Creates an executor for the given stages.
    pub fn new(stages: StageSet<T>, config: BindToStageConfig) -> Self {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        BindToStagePipeline { stages, config }
    }

    /// Runs the pipeline to completion: `producer` is called serially (it is
    /// the pipeline's input stage) until it returns `None`, and every
    /// produced item flows through all stages. Returns the number of items
    /// processed.
    ///
    /// Serial stages consume items strictly in production order (using the
    /// sequence numbers attached by the input stage), so a serial output
    /// stage observes the same order a serial execution would — the same
    /// guarantee the PARSEC Pthreads pipelines provide with their ordered
    /// queues.
    pub fn run<P>(&self, mut producer: P) -> u64
    where
        P: FnMut() -> Option<T> + Send,
    {
        let num_stages = self.stages.len();
        // queues[s] feeds stage s.
        let queues: Vec<Arc<BoundedQueue<T>>> = (0..num_stages)
            .map(|_| Arc::new(BoundedQueue::new(self.config.queue_capacity)))
            .collect();

        let mut produced = 0u64;
        thread::scope(|scope| {
            let mut handles_per_stage: Vec<Vec<thread::ScopedJoinHandle<'_, ()>>> = Vec::new();
            for (s, stage) in self.stages.stages().iter().enumerate() {
                let mut handles = Vec::new();
                let threads = match stage.kind {
                    StageKind::Serial => 1,
                    StageKind::Parallel => self.config.threads_per_parallel_stage.max(1),
                };
                for _ in 0..threads {
                    let body = Arc::clone(&stage.body);
                    let input = Arc::clone(&queues[s]);
                    let output = queues.get(s + 1).cloned();
                    let kind = stage.kind;
                    handles.push(scope.spawn(move || {
                        match kind {
                            StageKind::Parallel => {
                                while let Some((seq, mut item)) = input.pop_any() {
                                    body(&mut item);
                                    if let Some(out) = &output {
                                        out.push(seq, item);
                                    }
                                }
                            }
                            StageKind::Serial => {
                                // A serial stage must process items in
                                // production order even though an upstream
                                // parallel stage finishes them out of order.
                                // Crucially it keeps draining its input queue
                                // into a local reorder buffer while waiting
                                // for the next expected item: popping only
                                // the expected sequence number would let
                                // out-of-order items fill the bounded queue
                                // and deadlock the upstream stage — the exact
                                // failure mode the paper mentions for dedup's
                                // output queue (Section 10, footnote on the
                                // 2^20 default limit).
                                let mut expected = 0u64;
                                let mut pending: std::collections::BTreeMap<u64, T> =
                                    std::collections::BTreeMap::new();
                                let handle = |seq: u64, mut item: T| {
                                    body(&mut item);
                                    if let Some(out) = &output {
                                        out.push(seq, item);
                                    }
                                };
                                loop {
                                    while let Some(item) = pending.remove(&expected) {
                                        handle(expected, item);
                                        expected += 1;
                                    }
                                    match input.pop_any() {
                                        Some((seq, item)) if seq == expected => {
                                            handle(seq, item);
                                            expected += 1;
                                        }
                                        Some((seq, item)) => {
                                            pending.insert(seq, item);
                                        }
                                        None => {
                                            // Closed and drained: everything
                                            // still pending is contiguous.
                                            while let Some(item) = pending.remove(&expected) {
                                                handle(expected, item);
                                                expected += 1;
                                            }
                                            debug_assert!(pending.is_empty());
                                            break;
                                        }
                                    }
                                }
                            }
                        }
                    }));
                }
                handles_per_stage.push(handles);
            }

            // The serial input stage runs on the calling thread.
            while let Some(item) = producer() {
                queues[0].push(produced, item);
                produced += 1;
            }

            // Cascading shutdown: close stage s's input queue, wait for its
            // threads to drain it and exit (everything they forwarded is now
            // in stage s+1's queue), then shut down the next stage.
            for (s, handles) in handles_per_stage.into_iter().enumerate() {
                queues[s].close();
                for h in handles {
                    h.join().expect("stage thread panicked");
                }
            }
        });
        produced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    #[test]
    fn processes_every_item_through_all_stages() {
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let stages: StageSet<u64> = StageSet::new().parallel(|x| *x *= 2).serial(move |x| {
            c.fetch_add(*x, Ordering::SeqCst);
        });
        let pipeline = BindToStagePipeline::new(stages, BindToStageConfig::default());
        let mut next = 0u64;
        let produced = pipeline.run(move || {
            if next == 100 {
                None
            } else {
                next += 1;
                Some(next - 1)
            }
        });
        assert_eq!(produced, 100);
        assert_eq!(count.load(Ordering::SeqCst), (0..100).map(|x| x * 2).sum());
    }

    #[test]
    fn serial_output_stage_sees_items_in_order() {
        let output = Arc::new(Mutex::new(Vec::new()));
        let out = Arc::clone(&output);
        let stages: StageSet<u64> = StageSet::new()
            .parallel(|x| {
                // Uneven work so parallel threads finish out of order.
                let delay = (*x % 7) * 10;
                for _ in 0..delay * 100 {
                    std::hint::spin_loop();
                }
                *x += 1000;
            })
            .serial(move |x| out.lock().unwrap().push(*x));
        let pipeline = BindToStagePipeline::new(
            stages,
            BindToStageConfig {
                threads_per_parallel_stage: 4,
                queue_capacity: 8,
            },
        );
        let mut next = 0u64;
        pipeline.run(move || {
            if next == 200 {
                None
            } else {
                next += 1;
                Some(next - 1)
            }
        });
        let got = output.lock().unwrap().clone();
        assert_eq!(got, (1000..1200).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_input_completes() {
        let stages: StageSet<u64> = StageSet::new().serial(|_| {});
        let pipeline = BindToStagePipeline::new(stages, BindToStageConfig::default());
        let produced = pipeline.run(|| None);
        assert_eq!(produced, 0);
    }

    #[test]
    fn small_queue_capacity_still_completes() {
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let stages: StageSet<u64> = StageSet::new()
            .serial(|x| *x += 1)
            .parallel(|x| *x += 1)
            .serial(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            });
        let pipeline = BindToStagePipeline::new(
            stages,
            BindToStageConfig {
                threads_per_parallel_stage: 2,
                queue_capacity: 1,
            },
        );
        let mut next = 0u64;
        pipeline.run(move || {
            if next == 50 {
                None
            } else {
                next += 1;
                Some(0)
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn three_stage_ssps_preserves_output_order() {
        let output = Arc::new(Mutex::new(Vec::new()));
        let out = Arc::clone(&output);
        let stages: StageSet<(u64, u64)> = StageSet::new()
            .serial(|pair: &mut (u64, u64)| pair.1 = pair.0 * 10)
            .parallel(|pair| pair.1 += 1)
            .serial(move |pair| out.lock().unwrap().push(pair.1));
        let pipeline = BindToStagePipeline::new(stages, BindToStageConfig::default());
        let mut next = 0u64;
        pipeline.run(move || {
            if next == 80 {
                None
            } else {
                next += 1;
                Some((next - 1, 0))
            }
        });
        assert_eq!(
            *output.lock().unwrap(),
            (0..80).map(|x| x * 10 + 1).collect::<Vec<u64>>()
        );
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_stage_set_rejected() {
        let _ = BindToStagePipeline::<u64>::new(StageSet::new(), BindToStageConfig::default());
    }
}
