//! Baseline pipeline executors the paper compares Cilk-P against
//! (Section 10):
//!
//! * [`BindToStagePipeline`] — the PARSEC Pthreads strategy: each stage owns
//!   its own thread(s) (one for serial stages, `Q` for parallel stages, the
//!   "oversubscription" knob), items flow through bounded queues, and the
//!   queue capacity provides throttling.
//! * [`ConstructAndRunPipeline`] — the TBB strategy: the pipeline's stage
//!   sequence is fixed before execution, a team of `P` threads executes
//!   items end-to-end (bind-to-element), with an in-flight token limit and
//!   in-order execution of serial stages.
//!
//! Both run on plain `std::thread` with no dependence on the `piper` crate,
//! so the three-way comparison in the evaluation harness really does compare
//! three independent scheduling strategies. Both executors preserve the
//!   iteration order at serial stages, as the PARSEC implementations do.

pub mod bind_to_stage;
pub mod construct_and_run;
pub mod queue;
pub mod stages;

pub use bind_to_stage::{BindToStageConfig, BindToStagePipeline};
pub use construct_and_run::{ConstructAndRunConfig, ConstructAndRunPipeline};
pub use queue::BoundedQueue;
pub use stages::{Stage, StageKind, StageSet};
