//! Static pipeline-stage definitions shared by both baseline executors.

use std::sync::Arc;

/// Whether a stage must process items in iteration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Items are processed one at a time in iteration order.
    Serial,
    /// Items may be processed concurrently and out of order.
    Parallel,
}

/// One pipeline stage: a kind plus the work to perform on each item.
pub struct Stage<T> {
    /// Serial or parallel.
    pub kind: StageKind,
    /// The stage body.
    pub body: Arc<dyn Fn(&mut T) + Send + Sync>,
}

impl<T> Clone for Stage<T> {
    fn clone(&self) -> Self {
        Stage {
            kind: self.kind,
            body: Arc::clone(&self.body),
        }
    }
}

/// An ordered list of stages (excluding the implicit serial input stage,
/// which is the producer closure handed to the executors).
pub struct StageSet<T> {
    stages: Vec<Stage<T>>,
}

impl<T> Default for StageSet<T> {
    fn default() -> Self {
        StageSet { stages: Vec::new() }
    }
}

impl<T> Clone for StageSet<T> {
    fn clone(&self) -> Self {
        StageSet {
            stages: self.stages.clone(),
        }
    }
}

impl<T> StageSet<T> {
    /// Creates an empty stage list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a serial stage.
    pub fn serial(mut self, body: impl Fn(&mut T) + Send + Sync + 'static) -> Self {
        self.stages.push(Stage {
            kind: StageKind::Serial,
            body: Arc::new(body),
        });
        self
    }

    /// Appends a parallel stage.
    pub fn parallel(mut self, body: impl Fn(&mut T) + Send + Sync + 'static) -> Self {
        self.stages.push(Stage {
            kind: StageKind::Parallel,
            body: Arc::new(body),
        });
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True if no stages were added.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stages in order.
    pub fn stages(&self) -> &[Stage<T>] {
        &self.stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_stages_in_order() {
        let set: StageSet<u32> = StageSet::new()
            .serial(|x| *x += 1)
            .parallel(|x| *x *= 2)
            .serial(|_| {});
        assert_eq!(set.len(), 3);
        assert_eq!(set.stages()[0].kind, StageKind::Serial);
        assert_eq!(set.stages()[1].kind, StageKind::Parallel);
        assert_eq!(set.stages()[2].kind, StageKind::Serial);
    }

    #[test]
    fn stage_bodies_apply() {
        let set: StageSet<u32> = StageSet::new().serial(|x| *x += 5).parallel(|x| *x *= 3);
        let mut value = 1u32;
        for stage in set.stages() {
            (stage.body)(&mut value);
        }
        assert_eq!(value, 18);
    }

    #[test]
    fn clone_shares_bodies() {
        let set: StageSet<u32> = StageSet::new().serial(|x| *x += 1);
        let cloned = set.clone();
        assert_eq!(cloned.len(), 1);
        let mut v = 0;
        (cloned.stages()[0].body)(&mut v);
        assert_eq!(v, 1);
    }
}
