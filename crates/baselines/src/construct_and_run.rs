//! The TBB-style construct-and-run pipeline executor.
//!
//! TBB's `parallel_pipeline` fixes the sequence of stages (filters) before
//! execution and then lets a team of threads execute items end-to-end
//! (bind-to-element), bounding the number of items in flight with a token
//! limit, and running serial filters in input order. This executor
//! reproduces that model with plain threads and condition variables — it is
//! the "TBB" column of the paper's Figures 6–7.
//!
//! Note what it *cannot* express, which is the paper's core argument: the
//! stage sequence and the serial/parallel decision are fixed up front, so a
//! pipeline whose dependency structure is data dependent (x264) does not fit
//! this model.

use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use crate::stages::{StageKind, StageSet};

/// Configuration of the construct-and-run executor.
#[derive(Debug, Clone, Copy)]
pub struct ConstructAndRunConfig {
    /// Number of worker threads (`P`).
    pub threads: usize,
    /// Maximum number of items in flight (TBB's `max_number_of_live_tokens`).
    pub max_tokens: usize,
}

impl Default for ConstructAndRunConfig {
    fn default() -> Self {
        ConstructAndRunConfig {
            threads: 4,
            max_tokens: 16,
        }
    }
}

/// Progress tracker for one serial stage: the sequence number of the next
/// item allowed to enter it.
struct SerialGate {
    next: Mutex<u64>,
    ready: Condvar,
}

impl SerialGate {
    fn new() -> Self {
        SerialGate {
            next: Mutex::new(0),
            ready: Condvar::new(),
        }
    }

    /// Blocks until it is `seq`'s turn to execute the stage.
    fn enter(&self, seq: u64) {
        let mut next = self.next.lock().unwrap();
        while *next != seq {
            next = self.ready.wait(next).unwrap();
        }
    }

    /// Marks `seq` as having finished the stage.
    fn leave(&self, seq: u64) {
        let mut next = self.next.lock().unwrap();
        debug_assert_eq!(*next, seq);
        *next = seq + 1;
        drop(next);
        self.ready.notify_all();
    }
}

/// Shared in-flight token accounting.
struct TokenPool {
    available: Mutex<usize>,
    freed: Condvar,
}

impl TokenPool {
    fn new(tokens: usize) -> Self {
        TokenPool {
            available: Mutex::new(tokens.max(1)),
            freed: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut avail = self.available.lock().unwrap();
        while *avail == 0 {
            avail = self.freed.wait(avail).unwrap();
        }
        *avail -= 1;
    }

    fn release(&self) {
        let mut avail = self.available.lock().unwrap();
        *avail += 1;
        drop(avail);
        self.freed.notify_one();
    }
}

/// A construct-and-run (TBB-style) pipeline over items of type `T`.
pub struct ConstructAndRunPipeline<T> {
    stages: StageSet<T>,
    config: ConstructAndRunConfig,
}

impl<T: Send + 'static> ConstructAndRunPipeline<T> {
    /// Creates an executor for the given (static) stage sequence.
    pub fn new(stages: StageSet<T>, config: ConstructAndRunConfig) -> Self {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        ConstructAndRunPipeline { stages, config }
    }

    /// Runs the pipeline to completion and returns the number of items
    /// processed. `producer` is the serial input filter.
    pub fn run<P>(&self, producer: P) -> u64
    where
        P: FnMut() -> Option<T> + Send,
    {
        struct Source<P> {
            producer: P,
            next_seq: u64,
            done: bool,
        }
        let source = Arc::new(Mutex::new(Source {
            producer,
            next_seq: 0,
            done: false,
        }));
        let tokens = Arc::new(TokenPool::new(self.config.max_tokens));
        let gates: Vec<Arc<SerialGate>> = self
            .stages
            .stages()
            .iter()
            .map(|_| Arc::new(SerialGate::new()))
            .collect();
        let processed = Arc::new(Mutex::new(0u64));

        thread::scope(|scope| {
            for _ in 0..self.config.threads.max(1) {
                let source = Arc::clone(&source);
                let tokens = Arc::clone(&tokens);
                let gates = gates.clone();
                let processed = Arc::clone(&processed);
                let stages = &self.stages;
                scope.spawn(move || {
                    loop {
                        // Respect the in-flight token limit before pulling
                        // the next item from the (serial) input filter.
                        tokens.acquire();
                        let (seq, item) = {
                            let mut src = source.lock().unwrap();
                            if src.done {
                                tokens.release();
                                return;
                            }
                            match (src.producer)() {
                                None => {
                                    src.done = true;
                                    tokens.release();
                                    return;
                                }
                                Some(item) => {
                                    let seq = src.next_seq;
                                    src.next_seq += 1;
                                    (seq, item)
                                }
                            }
                        };
                        let mut item = item;
                        for (s, stage) in stages.stages().iter().enumerate() {
                            match stage.kind {
                                StageKind::Parallel => (stage.body)(&mut item),
                                StageKind::Serial => {
                                    gates[s].enter(seq);
                                    (stage.body)(&mut item);
                                    gates[s].leave(seq);
                                }
                            }
                        }
                        drop(item);
                        *processed.lock().unwrap() += 1;
                        tokens.release();
                    }
                });
            }
        });

        let done = *processed.lock().unwrap();
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn processes_all_items() {
        let total = Arc::new(AtomicU64::new(0));
        let t = Arc::clone(&total);
        let stages: StageSet<u64> =
            StageSet::new()
                .parallel(|x| *x = *x * 2 + 1)
                .serial(move |x| {
                    t.fetch_add(*x, Ordering::SeqCst);
                });
        let pipeline = ConstructAndRunPipeline::new(stages, ConstructAndRunConfig::default());
        let mut next = 0u64;
        let n = pipeline.run(move || {
            if next == 200 {
                None
            } else {
                next += 1;
                Some(next - 1)
            }
        });
        assert_eq!(n, 200);
        assert_eq!(
            total.load(Ordering::SeqCst),
            (0..200).map(|x| x * 2 + 1).sum()
        );
    }

    #[test]
    fn serial_stages_execute_in_input_order() {
        let output = Arc::new(Mutex::new(Vec::new()));
        let out = Arc::clone(&output);
        let stages: StageSet<u64> = StageSet::new()
            .parallel(|x| {
                for _ in 0..(*x % 5) * 200 {
                    std::hint::spin_loop();
                }
            })
            .serial(move |x| out.lock().unwrap().push(*x));
        let pipeline = ConstructAndRunPipeline::new(
            stages,
            ConstructAndRunConfig {
                threads: 4,
                max_tokens: 8,
            },
        );
        let mut next = 0u64;
        pipeline.run(move || {
            if next == 150 {
                None
            } else {
                next += 1;
                Some(next - 1)
            }
        });
        assert_eq!(*output.lock().unwrap(), (0..150).collect::<Vec<u64>>());
    }

    #[test]
    fn token_limit_of_one_still_completes() {
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let stages: StageSet<u64> = StageSet::new().serial(move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        let pipeline = ConstructAndRunPipeline::new(
            stages,
            ConstructAndRunConfig {
                threads: 3,
                max_tokens: 1,
            },
        );
        let mut next = 0u64;
        pipeline.run(move || {
            if next == 40 {
                None
            } else {
                next += 1;
                Some(0)
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 40);
    }

    #[test]
    fn empty_input_completes() {
        let stages: StageSet<u64> = StageSet::new().serial(|_| {});
        let pipeline = ConstructAndRunPipeline::new(stages, ConstructAndRunConfig::default());
        assert_eq!(pipeline.run(|| None), 0);
    }

    #[test]
    fn single_thread_configuration_works() {
        let total = Arc::new(AtomicU64::new(0));
        let t = Arc::clone(&total);
        let stages: StageSet<u64> = StageSet::new().serial(|x| *x += 1).parallel(move |x| {
            t.fetch_add(*x, Ordering::SeqCst);
        });
        let pipeline = ConstructAndRunPipeline::new(
            stages,
            ConstructAndRunConfig {
                threads: 1,
                max_tokens: 4,
            },
        );
        let mut next = 0u64;
        pipeline.run(move || {
            if next == 30 {
                None
            } else {
                next += 1;
                Some(next - 1)
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), (1..=30).sum());
    }
}
