//! Property-based tests for the compression substrate: every codec must be
//! lossless on arbitrary inputs (the dedup workload's correctness depends on
//! it), and the container formats must reject truncated data rather than
//! panic or return wrong output.

use compress::deflate::{deflate_compress, deflate_decompress, Codec};
use compress::huffman::{huffman_compress, huffman_decompress};
use compress::lz::{lz_compress, lz_decompress};
use compress::rle::{rle_compress, rle_decompress};
use proptest::prelude::*;

/// Arbitrary byte payloads, biased toward the kinds of content the dedup
/// workload produces: runs, repeated phrases and plain noise.
fn payload() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Arbitrary bytes.
        proptest::collection::vec(any::<u8>(), 0..2_048),
        // Highly repetitive: a couple of distinct bytes.
        proptest::collection::vec(prop_oneof![Just(0u8), Just(7u8), Just(255u8)], 0..2_048),
        // Repeated phrase with arbitrary period.
        (proptest::collection::vec(any::<u8>(), 1..64), 1usize..64).prop_map(|(phrase, reps)| {
            let mut out = Vec::with_capacity(phrase.len() * reps);
            for _ in 0..reps {
                out.extend_from_slice(&phrase);
            }
            out
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn rle_roundtrips(data in payload()) {
        let compressed = rle_compress(&data);
        let decoded = rle_decompress(&compressed);
        prop_assert_eq!(decoded, Some(data));
    }

    #[test]
    fn lz_roundtrips(data in payload()) {
        let compressed = lz_compress(&data);
        let decoded = lz_decompress(&compressed);
        prop_assert_eq!(decoded, Some(data));
    }

    #[test]
    fn deflate_roundtrips(data in payload()) {
        let compressed = deflate_compress(&data);
        let decoded = deflate_decompress(&compressed);
        prop_assert_eq!(decoded, Some(data));
    }

    #[test]
    fn huffman_roundtrips(data in payload()) {
        let compressed = huffman_compress(&data);
        let decoded = huffman_decompress(&compressed);
        prop_assert_eq!(decoded, Some(data));
    }

    #[test]
    fn codec_enum_roundtrips_every_codec(data in payload()) {
        for codec in Codec::ALL {
            let compressed = codec.compress(&data);
            let decoded = codec.decompress(&compressed);
            prop_assert_eq!(decoded, Some(data.clone()), "codec {}", codec.name());
        }
    }

    #[test]
    fn repetitive_content_actually_compresses(byte in any::<u8>(), len in 512usize..4_096) {
        // Not just lossless: a constant run must shrink under every codec
        // that claims to exploit redundancy (RLE, LZ, deflate).
        let data = vec![byte; len];
        prop_assert!(rle_compress(&data).len() < data.len() / 4);
        prop_assert!(lz_compress(&data).len() < data.len() / 4);
        prop_assert!(deflate_compress(&data).len() < data.len() / 2);
    }

    #[test]
    fn truncated_streams_are_rejected_not_misdecoded(data in payload(), cut in 0usize..64) {
        // Chopping bytes off the end of a compressed stream must yield
        // either None or something different from silently "succeeding" with
        // the original data when bytes are actually missing.
        let compressed = deflate_compress(&data);
        if cut > 0 && cut < compressed.len() {
            let truncated = &compressed[..compressed.len() - cut];
            match deflate_decompress(truncated) {
                None => {}
                Some(decoded) => prop_assert_ne!(decoded, data),
            }
        }
    }

    #[test]
    fn compression_is_deterministic(data in payload()) {
        prop_assert_eq!(deflate_compress(&data), deflate_compress(&data));
        prop_assert_eq!(lz_compress(&data), lz_compress(&data));
    }
}

#[test]
fn empty_input_roundtrips_through_every_codec() {
    for codec in Codec::ALL {
        let compressed = codec.compress(&[]);
        assert_eq!(codec.decompress(&compressed), Some(Vec::new()));
    }
    assert_eq!(huffman_decompress(&huffman_compress(&[])), Some(Vec::new()));
}
