//! Compression substrate for the dedup workload.
//!
//! PARSEC's dedup compresses every previously unseen chunk (with gzip in the
//! original). This crate provides two from-scratch codecs with round-trip
//! guarantees:
//!
//! * [`lz`] — a byte-oriented LZ77 compressor with a hash-chain match
//!   finder and a varint token encoding. This is the workhorse used by the
//!   dedup workload's parallel "compress" stage.
//! * [`huffman`] — canonical Huffman coding over byte symbols with
//!   DEFLATE-style length limiting.
//! * [`deflate`] — the gzip-like composite (LZ77 → Huffman → CRC-32
//!   trailer), the closest analogue of what PARSEC's dedup actually runs,
//!   plus the [`Codec`] selector the dedup workload exposes.
//! * [`rle`] — a trivial run-length coder, useful as a much cheaper stage
//!   body when benchmarks want to vary the work of the parallel stage.
//!
//! None of the codecs aims at gzip-competitive ratios; they exist to give
//! the pipeline stage a realistic, data-dependent amount of CPU work and an
//! output whose correctness can be verified by decompression.

pub mod bitstream;
pub mod deflate;
pub mod huffman;
pub mod lz;
pub mod rle;

pub use deflate::{deflate_compress, deflate_decompress, Codec};
pub use huffman::{huffman_compress, huffman_decompress, Codebook, MAX_CODE_BITS};
pub use lz::{lz_compress, lz_decompress};
pub use rle::{rle_compress, rle_decompress};
