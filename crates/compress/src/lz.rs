//! A small LZ77 compressor with hash-chain matching and varint tokens.
//!
//! Format: a sequence of tokens. Each token starts with a control byte
//! `0x00` (literal run) or `0x01` (match), followed by varint-encoded
//! fields: literal runs carry `(length, bytes…)`; matches carry
//! `(distance, length)`. The format favours simplicity and deterministic
//! behaviour over ratio.

/// Minimum match length worth encoding.
const MIN_MATCH: usize = 4;
/// Maximum match length per token.
const MAX_MATCH: usize = 1 << 16;
/// Sliding-window size (maximum match distance).
const WINDOW: usize = 1 << 16;
/// Number of head slots in the hash chain.
const HASH_SIZE: usize = 1 << 15;
/// How many chain links to follow when searching for a match.
const MAX_CHAIN: usize = 32;

fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        value |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(2654435761) as usize >> 17) & (HASH_SIZE - 1)
}

/// Compresses `data`.
pub fn lz_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    // Uncompressed length header so decompression can pre-allocate.
    write_varint(&mut out, data.len() as u64);

    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut chain = vec![usize::MAX; data.len()];
    let mut literal_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, data: &[u8]| {
        if to > from {
            out.push(0x00);
            write_varint(out, (to - from) as u64);
            out.extend_from_slice(&data[from..to]);
        }
    };

    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash4(&data[i..]);
            let mut candidate = head[h];
            let mut steps = 0usize;
            while candidate != usize::MAX && steps < MAX_CHAIN {
                if i - candidate <= WINDOW {
                    let max_len = (data.len() - i).min(MAX_MATCH);
                    let mut len = 0usize;
                    while len < max_len && data[candidate + len] == data[i + len] {
                        len += 1;
                    }
                    if len > best_len {
                        best_len = len;
                        best_dist = i - candidate;
                    }
                } else {
                    break;
                }
                candidate = chain[candidate];
                steps += 1;
            }
            // Insert current position into the chain.
            chain[i] = head[h];
            head[h] = i;
        }

        if best_len >= MIN_MATCH {
            flush_literals(&mut out, literal_start, i, data);
            out.push(0x01);
            write_varint(&mut out, best_dist as u64);
            write_varint(&mut out, best_len as u64);
            // Insert the skipped positions into the hash chains too (cheap
            // and improves later matches).
            let end = i + best_len;
            let mut j = i + 1;
            while j + MIN_MATCH <= data.len() && j < end {
                let h = hash4(&data[j..]);
                chain[j] = head[h];
                head[h] = j;
                j += 1;
            }
            i = end;
            literal_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, literal_start, data.len(), data);
    out
}

/// Decompresses data produced by [`lz_compress`]. Returns `None` if the
/// input is malformed.
pub fn lz_decompress(data: &[u8]) -> Option<Vec<u8>> {
    let mut pos = 0usize;
    let expected = read_varint(data, &mut pos)? as usize;
    let mut out = Vec::with_capacity(expected);
    while pos < data.len() {
        let control = data[pos];
        pos += 1;
        match control {
            0x00 => {
                let len = read_varint(data, &mut pos)? as usize;
                if pos + len > data.len() {
                    return None;
                }
                out.extend_from_slice(&data[pos..pos + len]);
                pos += len;
            }
            0x01 => {
                let dist = read_varint(data, &mut pos)? as usize;
                let len = read_varint(data, &mut pos)? as usize;
                if dist == 0 || dist > out.len() {
                    return None;
                }
                let start = out.len() - dist;
                for k in 0..len {
                    let byte = out[start + k];
                    out.push(byte);
                }
            }
            _ => return None,
        }
    }
    if out.len() != expected {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(len: usize, seed: u64, repetitiveness: u8) -> Vec<u8> {
        let mut state = seed | 1;
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if (state & 0xFF) as u8 <= repetitiveness && out.len() >= 32 {
                // Copy a previous run to create matches.
                let start = (state as usize >> 8) % (out.len() - 16);
                let run = 8 + (state as usize >> 24) % 24;
                let run = run.min(len - out.len()).min(out.len() - start);
                let copied: Vec<u8> = out[start..start + run].to_vec();
                out.extend_from_slice(&copied);
            } else {
                out.push((state >> 32) as u8);
            }
        }
        out.truncate(len);
        out
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        for data in [&b""[..], b"a", b"ab", b"abc", b"aaaa", b"abcabcabcabc"] {
            let compressed = lz_compress(data);
            assert_eq!(lz_decompress(&compressed).unwrap(), data);
        }
    }

    #[test]
    fn roundtrip_random_and_repetitive() {
        for repetitiveness in [0u8, 64, 200] {
            for len in [100usize, 4096, 100_000] {
                let data = synthetic(len, 0x1234 + len as u64, repetitiveness);
                let compressed = lz_compress(&data);
                let restored = lz_decompress(&compressed).expect("valid stream");
                assert_eq!(restored, data, "len={len} rep={repetitiveness}");
            }
        }
    }

    #[test]
    fn repetitive_data_actually_compresses() {
        let unit: Vec<u8> = (0..64u8).collect();
        let mut data = Vec::new();
        for _ in 0..256 {
            data.extend_from_slice(&unit);
        }
        let compressed = lz_compress(&data);
        assert!(
            compressed.len() * 4 < data.len(),
            "compressed {} of {}",
            compressed.len(),
            data.len()
        );
    }

    #[test]
    fn overlapping_matches_decode_correctly() {
        // "aaaa..." forces matches whose source overlaps the output tail.
        let data = vec![b'a'; 10_000];
        let compressed = lz_compress(&data);
        assert_eq!(lz_decompress(&compressed).unwrap(), data);
        assert!(compressed.len() < 200);
    }

    #[test]
    fn malformed_streams_are_rejected() {
        assert_eq!(lz_decompress(&[0x05, 0x02]), None); // truncated literal
        assert_eq!(lz_decompress(&[0x01, 0xFF]), None); // bad control byte

        // Match before any output exists.
        let mut bad = Vec::new();
        super::write_varint(&mut bad, 10);
        bad.push(0x01);
        super::write_varint(&mut bad, 4);
        super::write_varint(&mut bad, 4);
        assert_eq!(lz_decompress(&bad), None);
    }

    #[test]
    fn varint_roundtrip() {
        for value in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX / 3, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, value);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(value));
            assert_eq!(pos, buf.len());
        }
    }
}
