//! A deflate-like two-phase codec: LZ77 match finding followed by a
//! canonical-Huffman entropy pass, with a CRC-32 integrity trailer.
//!
//! PARSEC's dedup compresses each unseen chunk with gzip, i.e. DEFLATE =
//! LZ77 + Huffman + CRC. This codec reproduces that structure from the
//! pieces in this crate: the [`lz`](crate::lz) token stream is entropy-coded
//! with the [`huffman`](crate::huffman) coder, and the CRC-32 of the original
//! data is appended so decompression can verify integrity end to end (the
//! role gzip's trailer plays).
//!
//! Compared to plain [`lz_compress`](crate::lz_compress) the stage does
//! strictly more CPU work per chunk and achieves better ratios on text-like
//! data — useful when the evaluation wants a heavier parallel stage.

use checksum::crc32;

use crate::huffman::{huffman_compress, huffman_decompress};
use crate::lz::{lz_compress, lz_decompress};

/// Compresses `data`: LZ77, then Huffman over the token bytes, then the
/// CRC-32 of the *original* data appended little-endian.
pub fn deflate_compress(data: &[u8]) -> Vec<u8> {
    let tokens = lz_compress(data);
    let mut out = huffman_compress(&tokens);
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out
}

/// Decompresses data produced by [`deflate_compress`], verifying the CRC-32
/// trailer. Returns `None` on malformed input or a checksum mismatch.
pub fn deflate_decompress(data: &[u8]) -> Option<Vec<u8>> {
    if data.len() < 4 {
        return None;
    }
    let (body, trailer) = data.split_at(data.len() - 4);
    let stored_crc = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let tokens = huffman_decompress(body)?;
    let restored = lz_decompress(&tokens)?;
    if crc32(&restored) != stored_crc {
        return None;
    }
    Some(restored)
}

/// The codecs available to the dedup workload's compress stage.
///
/// The paper's dedup uses gzip; [`Codec::Deflate`] is the closest analogue,
/// [`Codec::Lz`] is a cheaper match-only variant and [`Codec::Rle`] a trivial
/// one, letting benchmarks vary how heavy the parallel stage is without
/// changing the pipeline structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Codec {
    /// Run-length coding only (lightest stage body).
    Rle,
    /// LZ77 with varint tokens (the default, medium-weight stage body).
    #[default]
    Lz,
    /// LZ77 + canonical Huffman + CRC-32 trailer (heaviest, gzip-like).
    Deflate,
}

impl Codec {
    /// Compresses `data` with this codec.
    pub fn compress(self, data: &[u8]) -> Vec<u8> {
        match self {
            Codec::Rle => crate::rle::rle_compress(data),
            Codec::Lz => lz_compress(data),
            Codec::Deflate => deflate_compress(data),
        }
    }

    /// Decompresses `data` previously produced by [`compress`](Self::compress)
    /// with the same codec.
    pub fn decompress(self, data: &[u8]) -> Option<Vec<u8>> {
        match self {
            Codec::Rle => crate::rle::rle_decompress(data),
            Codec::Lz => lz_decompress(data),
            Codec::Deflate => deflate_decompress(data),
        }
    }

    /// Short human-readable name for tables.
    pub fn name(self) -> &'static str {
        match self {
            Codec::Rle => "rle",
            Codec::Lz => "lz",
            Codec::Deflate => "deflate",
        }
    }

    /// All codecs, for sweeps.
    pub const ALL: [Codec; 3] = [Codec::Rle, Codec::Lz, Codec::Deflate];
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textish(len: usize, seed: u64) -> Vec<u8> {
        // Word-like data with plenty of repeats — the case deflate handles
        // much better than raw LZ tokens.
        const WORDS: [&str; 12] = [
            "pipeline",
            "parallel",
            "stage",
            "iteration",
            "steal",
            "worker",
            "throttle",
            "frame",
            "cross",
            "edge",
            "node",
            "dag",
        ];
        let mut state = seed | 1;
        let mut out = Vec::with_capacity(len + 16);
        while out.len() < len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            out.extend_from_slice(WORDS[(state % WORDS.len() as u64) as usize].as_bytes());
            out.push(b' ');
        }
        out.truncate(len);
        out
    }

    #[test]
    fn roundtrip_small_inputs() {
        for data in [&b""[..], b"a", b"deflate", b"aaaaaaaaaaaaaaaaaa"] {
            let compressed = deflate_compress(data);
            assert_eq!(deflate_decompress(&compressed).unwrap(), data);
        }
    }

    #[test]
    fn roundtrip_textish_inputs() {
        for len in [128usize, 4096, 120_000] {
            let data = textish(len, len as u64 + 11);
            let compressed = deflate_compress(&data);
            assert_eq!(deflate_decompress(&compressed).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn deflate_beats_plain_lz_on_textish_data() {
        let data = textish(200_000, 5);
        let lz_size = lz_compress(&data).len();
        let deflate_size = deflate_compress(&data).len();
        assert!(
            deflate_size < lz_size,
            "deflate {deflate_size} should be smaller than lz {lz_size}"
        );
    }

    #[test]
    fn corrupted_body_or_trailer_is_rejected() {
        let data = textish(10_000, 3);
        let compressed = deflate_compress(&data);
        // Flip a bit in the trailer.
        let mut bad = compressed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert_eq!(deflate_decompress(&bad), None);
        // Too short to even carry a trailer.
        assert_eq!(deflate_decompress(&[1, 2, 3]), None);
    }

    #[test]
    fn codec_enum_roundtrips_for_every_variant() {
        let data = textish(20_000, 17);
        for codec in Codec::ALL {
            let compressed = codec.compress(&data);
            assert_eq!(
                codec.decompress(&compressed).unwrap(),
                data,
                "codec {}",
                codec.name()
            );
        }
    }

    #[test]
    fn codec_names_are_distinct() {
        let names: std::collections::HashSet<_> = Codec::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), Codec::ALL.len());
    }
}
