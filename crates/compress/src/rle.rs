//! Byte-wise run-length encoding.
//!
//! Used by benchmarks that want a *cheap* parallel stage (to explore how the
//! pipelines behave when the parallel stage no longer dominates), and as a
//! second, independent codec for differential testing.

/// Compresses `data` as `(count, byte)` pairs with 8-bit counts.
pub fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 8);
    let mut i = 0usize;
    while i < data.len() {
        let byte = data[i];
        let mut run = 1usize;
        while run < 255 && i + run < data.len() && data[i + run] == byte {
            run += 1;
        }
        out.push(run as u8);
        out.push(byte);
        i += run;
    }
    out
}

/// Decompresses an RLE stream. Returns `None` on malformed input.
pub fn rle_decompress(data: &[u8]) -> Option<Vec<u8>> {
    if !data.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::new();
    for pair in data.chunks(2) {
        let count = pair[0] as usize;
        if count == 0 {
            return None;
        }
        out.extend(std::iter::repeat_n(pair[1], count));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        for data in [
            &b""[..],
            b"a",
            b"aaaabbbcc",
            b"abcdefg",
            &[0u8; 1000],
            &[7u8; 300],
        ] {
            assert_eq!(rle_decompress(&rle_compress(data)).unwrap(), data);
        }
    }

    #[test]
    fn runs_longer_than_255_split() {
        let data = vec![9u8; 1000];
        let compressed = rle_compress(&data);
        assert_eq!(compressed.len(), 2 * (1000 / 255 + 1));
        assert_eq!(rle_decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn malformed_input_rejected() {
        assert_eq!(rle_decompress(&[1]), None); // odd length
        assert_eq!(rle_decompress(&[0, 5]), None); // zero count
    }

    #[test]
    fn random_roundtrip() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // Bias towards runs.
                if state & 0x3 == 0 {
                    0xAA
                } else {
                    (state >> 56) as u8
                }
            })
            .collect();
        assert_eq!(rle_decompress(&rle_compress(&data)).unwrap(), data);
    }
}
