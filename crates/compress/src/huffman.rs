//! Canonical Huffman coding over byte symbols, implemented from scratch.
//!
//! The coder builds an optimal prefix code from byte frequencies, limits code
//! lengths to [`MAX_CODE_BITS`] (re-balancing lengths the way DEFLATE does so
//! the Kraft inequality still holds), and stores the code *canonically*: the
//! compressed stream carries only the 256 code lengths (4 bits each), from
//! which the decoder reconstructs the exact same codebook.
//!
//! This is the entropy-coding half of the [`deflate`](crate::deflate)-like
//! codec; it is also usable on its own for already-match-free data.

use crate::bitstream::{BitReader, BitWriter};

/// Maximum code length in bits. 15 matches DEFLATE and keeps the canonical
/// decoding tables small.
pub const MAX_CODE_BITS: u32 = 15;

/// Number of symbols (we always code raw bytes).
const NUM_SYMBOLS: usize = 256;

/// A canonical Huffman codebook: for every byte symbol, its code length and
/// the code value (MSB-first, as canonical codes are conventionally stated;
/// the bit layer stores them LSB-first after reversal).
#[derive(Debug, Clone)]
pub struct Codebook {
    /// Code length in bits for each symbol; 0 means the symbol does not occur.
    pub lengths: [u8; NUM_SYMBOLS],
    /// Canonical code value for each symbol (valid only if length > 0).
    pub codes: [u16; NUM_SYMBOLS],
}

impl Codebook {
    /// Builds the optimal (length-limited) canonical codebook for `freqs`.
    ///
    /// Returns `None` when no symbol has a nonzero frequency (empty input).
    pub fn from_frequencies(freqs: &[u64; NUM_SYMBOLS]) -> Option<Codebook> {
        let used: Vec<usize> = (0..NUM_SYMBOLS).filter(|&s| freqs[s] > 0).collect();
        if used.is_empty() {
            return None;
        }
        let mut lengths = [0u8; NUM_SYMBOLS];
        if used.len() == 1 {
            // A single distinct symbol still needs a 1-bit code so the
            // decoder can count occurrences.
            lengths[used[0]] = 1;
        } else {
            huffman_code_lengths(freqs, &mut lengths);
            limit_code_lengths(&mut lengths, MAX_CODE_BITS as u8);
        }
        Some(Self::from_lengths(lengths))
    }

    /// Builds the canonical codebook from explicit code lengths (as read from
    /// a stream header).
    pub fn from_lengths(lengths: [u8; NUM_SYMBOLS]) -> Codebook {
        let mut codes = [0u16; NUM_SYMBOLS];
        // Count codes of each length.
        let mut count = [0u16; (MAX_CODE_BITS + 1) as usize];
        for &len in lengths.iter() {
            if len > 0 {
                count[len as usize] += 1;
            }
        }
        // First code of each length (canonical construction).
        let mut next_code = [0u16; (MAX_CODE_BITS + 2) as usize];
        let mut code = 0u16;
        for bits in 1..=MAX_CODE_BITS as usize {
            code = (code + count[bits - 1]) << 1;
            next_code[bits] = code;
        }
        // Assign codes in symbol order within each length.
        for symbol in 0..NUM_SYMBOLS {
            let len = lengths[symbol] as usize;
            if len > 0 {
                codes[symbol] = next_code[len];
                next_code[len] += 1;
            }
        }
        Codebook { lengths, codes }
    }

    /// Verifies the Kraft inequality: sum over symbols of 2^-len ≤ 1.
    /// Canonical decoding only requires this (an *incomplete* code is fine).
    pub fn kraft_sum_times_2_pow_max(&self) -> u64 {
        self.lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (MAX_CODE_BITS - l as u32))
            .sum()
    }
}

/// Computes unlimited Huffman code lengths with the classic two-queue /
/// heap construction.
fn huffman_code_lengths(freqs: &[u64; NUM_SYMBOLS], lengths: &mut [u8; NUM_SYMBOLS]) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    // Internal tree nodes. Leaves are 0..256, internal nodes get ids from
    // 256 upward; frequencies live in the heap entries.
    #[derive(Clone, Copy)]
    struct Node {
        left: i32,
        right: i32,
    }
    let mut nodes: Vec<Node> = vec![
        Node {
            left: -1,
            right: -1
        };
        NUM_SYMBOLS
    ];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..NUM_SYMBOLS)
        .filter(|&s| freqs[s] > 0)
        .map(|s| Reverse((freqs[s], s)))
        .collect();
    while heap.len() > 1 {
        let Reverse((fa, a)) = heap.pop().unwrap();
        let Reverse((fb, b)) = heap.pop().unwrap();
        let id = nodes.len();
        nodes.push(Node {
            left: a as i32,
            right: b as i32,
        });
        heap.push(Reverse((fa + fb, id)));
    }
    let root = heap.pop().unwrap().0 .1;
    // Depth-first traversal assigning depths to leaves.
    let mut stack = vec![(root, 0u32)];
    while let Some((node, depth)) = stack.pop() {
        let n = nodes[node];
        if n.left < 0 {
            // Leaf.
            lengths[node] = depth.clamp(1, 255) as u8;
        } else {
            stack.push((n.left as usize, depth + 1));
            stack.push((n.right as usize, depth + 1));
        }
    }
}

/// Limits code lengths to `max_bits`, preserving the Kraft inequality.
///
/// Any length above the limit is clamped; the resulting Kraft overflow is
/// repaid by lengthening the shortest over-provisioned codes, one bit at a
/// time (the same repair DEFLATE implementations perform).
fn limit_code_lengths(lengths: &mut [u8; NUM_SYMBOLS], max_bits: u8) {
    let mut overflowed = false;
    for len in lengths.iter_mut() {
        if *len > max_bits {
            *len = max_bits;
            overflowed = true;
        }
    }
    if !overflowed {
        return;
    }
    let budget = 1u64 << max_bits;
    loop {
        let kraft: u64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (max_bits - l))
            .sum();
        if kraft <= budget {
            break;
        }
        // Lengthen the longest code that is still below the limit; that
        // frees 2^(max-len-1) units of Kraft budget while distorting the
        // code the least.
        let candidate = (0..NUM_SYMBOLS)
            .filter(|&s| lengths[s] > 0 && lengths[s] < max_bits)
            .max_by_key(|&s| lengths[s])
            .expect("kraft overflow implies some code can be lengthened");
        lengths[candidate] += 1;
    }
}

/// Compresses `data` with a canonical Huffman code built from its byte
/// frequencies. The output begins with the uncompressed length (varint) and
/// the 256 4-bit code lengths.
pub fn huffman_compress(data: &[u8]) -> Vec<u8> {
    let mut freqs = [0u64; NUM_SYMBOLS];
    for &b in data {
        freqs[b as usize] += 1;
    }
    let mut writer = BitWriter::new();
    write_varint_bits(&mut writer, data.len() as u64);
    let book = match Codebook::from_frequencies(&freqs) {
        Some(b) => b,
        None => return writer.finish(), // empty input: header only
    };
    // Header: 4-bit code length per symbol.
    for symbol in 0..NUM_SYMBOLS {
        writer.write_bits(book.lengths[symbol] as u64, 4);
    }
    // Body: one code per input byte, emitted LSB-first after bit reversal so
    // the canonical (MSB-first) prefix property maps onto the LSB-first bit
    // layer.
    for &b in data {
        let len = book.lengths[b as usize] as u32;
        let code = book.codes[b as usize];
        let reversed = reverse_bits(code, len);
        writer.write_bits(reversed as u64, len);
    }
    writer.finish()
}

/// Decompresses data produced by [`huffman_compress`]. Returns `None` on a
/// malformed stream.
pub fn huffman_decompress(data: &[u8]) -> Option<Vec<u8>> {
    let mut reader = BitReader::new(data);
    let expected = read_varint_bits(&mut reader)? as usize;
    if expected == 0 {
        return Some(Vec::new());
    }
    let mut lengths = [0u8; NUM_SYMBOLS];
    for length in lengths.iter_mut() {
        *length = reader.read_bits(4)? as u8;
        if *length as u32 > MAX_CODE_BITS {
            return None;
        }
    }
    let book = Codebook::from_lengths(lengths);
    if book.kraft_sum_times_2_pow_max() > (1u64 << MAX_CODE_BITS) {
        return None;
    }
    // Build a decoding map from (length, canonical code) to symbol.
    let mut decode: std::collections::HashMap<(u8, u16), u8> = std::collections::HashMap::new();
    for symbol in 0..NUM_SYMBOLS {
        if book.lengths[symbol] > 0 {
            decode.insert((book.lengths[symbol], book.codes[symbol]), symbol as u8);
        }
    }
    let mut out = Vec::with_capacity(expected);
    while out.len() < expected {
        let mut code = 0u16;
        let mut len = 0u8;
        loop {
            let bit = reader.read_bit()?;
            code = (code << 1) | bit as u16;
            len += 1;
            if len as u32 > MAX_CODE_BITS {
                return None;
            }
            if let Some(&symbol) = decode.get(&(len, code)) {
                out.push(symbol);
                break;
            }
        }
    }
    Some(out)
}

/// Reverses the low `len` bits of `code`.
fn reverse_bits(code: u16, len: u32) -> u16 {
    let mut out = 0u16;
    for i in 0..len {
        if code & (1 << i) != 0 {
            out |= 1 << (len - 1 - i);
        }
    }
    out
}

fn write_varint_bits(writer: &mut BitWriter, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            writer.write_byte(byte);
            break;
        }
        writer.write_byte(byte | 0x80);
    }
}

fn read_varint_bits(reader: &mut BitReader<'_>) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = reader.read_byte()?;
        value |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entropy_skewed(len: usize, seed: u64) -> Vec<u8> {
        // Heavily skewed byte distribution (few symbols dominate), where
        // entropy coding pays off.
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let r = (state >> 24) & 0xFF;
                match r {
                    0..=180 => b'a',
                    181..=230 => b'b',
                    231..=250 => b'c',
                    _ => (state >> 40) as u8,
                }
            })
            .collect()
    }

    #[test]
    fn roundtrip_empty_single_and_small() {
        for data in [&b""[..], b"x", b"xx", b"xyz", b"aaaaabbbbccdd"] {
            let compressed = huffman_compress(data);
            assert_eq!(huffman_decompress(&compressed).unwrap(), data);
        }
    }

    #[test]
    fn roundtrip_all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        let compressed = huffman_compress(&data);
        assert_eq!(huffman_decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn roundtrip_skewed_distributions() {
        for len in [10usize, 1_000, 50_000] {
            let data = entropy_skewed(len, 0xC0FFEE + len as u64);
            let compressed = huffman_compress(&data);
            assert_eq!(huffman_decompress(&compressed).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn skewed_data_actually_compresses() {
        let data = entropy_skewed(100_000, 7);
        let compressed = huffman_compress(&data);
        // 3 dominant symbols: should take well under 4 bits/byte on average,
        // even with the 128-byte header.
        assert!(
            compressed.len() * 2 < data.len(),
            "compressed {} of {}",
            compressed.len(),
            data.len()
        );
    }

    #[test]
    fn single_symbol_runs_cost_about_one_bit_per_byte() {
        let data = vec![b'z'; 64_000];
        let compressed = huffman_compress(&data);
        assert_eq!(huffman_decompress(&compressed).unwrap(), data);
        assert!(compressed.len() < 64_000 / 7, "got {}", compressed.len());
    }

    #[test]
    fn codebook_satisfies_kraft_and_prefix_property() {
        let data = entropy_skewed(10_000, 99);
        let mut freqs = [0u64; 256];
        for &b in &data {
            freqs[b as usize] += 1;
        }
        let book = Codebook::from_frequencies(&freqs).unwrap();
        assert!(book.kraft_sum_times_2_pow_max() <= 1 << MAX_CODE_BITS);
        // No code is a prefix of another (check pairwise over used symbols).
        let used: Vec<usize> = (0..256).filter(|&s| book.lengths[s] > 0).collect();
        for &a in &used {
            for &b in &used {
                if a == b {
                    continue;
                }
                let (la, lb) = (book.lengths[a] as u32, book.lengths[b] as u32);
                if la <= lb {
                    let prefix = book.codes[b] >> (lb - la);
                    assert!(
                        prefix != book.codes[a],
                        "code for {a} is a prefix of code for {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn length_limiting_engages_on_pathological_frequencies() {
        // Fibonacci-like frequencies force an unbalanced tree deeper than
        // MAX_CODE_BITS; the limiter must clamp it while keeping Kraft valid.
        let mut freqs = [0u64; 256];
        let (mut a, mut b) = (1u64, 1u64);
        for freq in freqs.iter_mut().take(40) {
            *freq = a;
            let next = a + b;
            a = b;
            b = next;
        }
        let book = Codebook::from_frequencies(&freqs).unwrap();
        assert!(book.lengths.iter().all(|&l| l as u32 <= MAX_CODE_BITS));
        assert!(book.kraft_sum_times_2_pow_max() <= 1 << MAX_CODE_BITS);
        // And the code must still round-trip real data drawn from it.
        let data: Vec<u8> = (0..40u8)
            .flat_map(|s| std::iter::repeat_n(s, 1 + s as usize))
            .collect();
        let compressed = huffman_compress(&data);
        assert_eq!(huffman_decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn malformed_streams_are_rejected() {
        // Truncated header.
        assert_eq!(huffman_decompress(&[0x10, 0x01]), None);
        // Body shorter than the declared length.
        let compressed = huffman_compress(b"hello hello hello");
        let truncated = &compressed[..compressed.len() - 2];
        assert_eq!(huffman_decompress(truncated), None);
    }

    #[test]
    fn reverse_bits_is_an_involution() {
        for len in 1..=15u32 {
            for code in 0..(1u16 << len.min(10)) {
                assert_eq!(reverse_bits(reverse_bits(code, len), len), code);
            }
        }
    }
}
