//! LSB-first bit packing, the I/O layer under the Huffman coder.
//!
//! Bits are appended least-significant-first into successive bytes, the same
//! convention DEFLATE uses, so a code of length `n` written with
//! [`BitWriter::write_bits`] is read back by [`BitReader::read_bits`] with
//! the same length.

/// Accumulates bits into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    /// Bits not yet flushed to `out`, LSB-aligned.
    accumulator: u64,
    /// Number of valid bits in `accumulator` (always < 8 after `flush_full_bytes`).
    bits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `count` bits of `value` (LSB first). `count` must be
    /// at most 57 so the accumulator cannot overflow.
    pub fn write_bits(&mut self, value: u64, count: u32) {
        debug_assert!(count <= 57, "write_bits count {count} too large");
        debug_assert!(
            count > 0 || value == 0,
            "zero-width write must carry value 0"
        );
        debug_assert!(
            count == 0 || value < (1u64 << count),
            "value wider than count"
        );
        if count == 0 {
            return;
        }
        self.accumulator |= value << self.bits;
        self.bits += count;
        while self.bits >= 8 {
            self.out.push((self.accumulator & 0xFF) as u8);
            self.accumulator >>= 8;
            self.bits -= 8;
        }
    }

    /// Appends a whole byte (convenience for headers).
    pub fn write_byte(&mut self, byte: u8) {
        self.write_bits(byte as u64, 8);
    }

    /// Number of complete bytes written so far (not counting pending bits).
    pub fn byte_len(&self) -> usize {
        self.out.len()
    }

    /// Pads the final partial byte with zero bits and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.bits > 0 {
            self.out.push((self.accumulator & 0xFF) as u8);
        }
        self.out
    }
}

/// Reads bits back in the order [`BitWriter`] wrote them.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Index of the next unread byte.
    pos: usize,
    accumulator: u64,
    bits: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            accumulator: 0,
            bits: 0,
        }
    }

    fn refill(&mut self) {
        while self.bits <= 56 && self.pos < self.data.len() {
            self.accumulator |= (self.data[self.pos] as u64) << self.bits;
            self.pos += 1;
            self.bits += 8;
        }
    }

    /// Reads `count` bits (LSB first). Returns `None` if the stream is
    /// exhausted before `count` bits are available.
    pub fn read_bits(&mut self, count: u32) -> Option<u64> {
        debug_assert!(count <= 57);
        if count == 0 {
            return Some(0);
        }
        if self.bits < count {
            self.refill();
            if self.bits < count {
                return None;
            }
        }
        let value = self.accumulator & ((1u64 << count) - 1);
        self.accumulator >>= count;
        self.bits -= count;
        Some(value)
    }

    /// Reads a single bit.
    pub fn read_bit(&mut self) -> Option<u64> {
        self.read_bits(1)
    }

    /// Reads a whole byte.
    pub fn read_byte(&mut self) -> Option<u8> {
        self.read_bits(8).map(|v| v as u8)
    }

    /// True when every input bit has been consumed (ignoring final padding
    /// bits inside the last byte).
    pub fn is_drained(&self) -> bool {
        self.pos >= self.data.len() && self.bits == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_bits() {
        let mut w = BitWriter::new();
        let pattern = [1u64, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1];
        for &b in &pattern {
            w.write_bits(b, 1);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn roundtrip_mixed_widths() {
        let fields: Vec<(u64, u32)> = vec![
            (0b1, 1),
            (0b1010, 4),
            (0xFF, 8),
            (0x12345, 20),
            (0, 3),
            (0x1FFFFF, 21),
            (42, 13),
            (1, 1),
        ];
        let mut w = BitWriter::new();
        for &(v, n) in &fields {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            assert_eq!(r.read_bits(n), Some(v), "width {n}");
        }
    }

    #[test]
    fn bytes_roundtrip_through_bit_layer() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut w = BitWriter::new();
        for &b in &data {
            w.write_byte(b);
        }
        let bytes = w.finish();
        assert_eq!(bytes, data);
        let mut r = BitReader::new(&bytes);
        for &b in &data {
            assert_eq!(r.read_byte(), Some(b));
        }
        assert!(r.is_drained());
    }

    #[test]
    fn reading_past_the_end_returns_none() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        // The padding bits of the final byte are still readable…
        assert!(r.read_bits(5).is_some());
        // …but the next full byte is not there.
        assert_eq!(r.read_bits(8), None);
    }

    #[test]
    fn zero_width_reads_and_writes_are_noops() {
        let mut w = BitWriter::new();
        w.write_bits(0, 0);
        w.write_bits(0b11, 2);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(0), Some(0));
        assert_eq!(r.read_bits(2), Some(0b11));
    }
}
