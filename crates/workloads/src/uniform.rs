//! A uniform synthetic pipeline (the setting of Theorem 12).
//!
//! Theorem 12 states that for a *uniform* linear pipeline — every node
//! `(i, j)` has the same cost — throttling with a window `K = aP` costs at
//! most a `(1 + c/a)` factor over the unthrottled execution. This workload
//! realises such a pipeline on the real runtime so the claim can be checked
//! with measured times and runtime counters, not just the simulator:
//!
//! * `n` iterations × `s` stages, all serial (every stage has a cross edge),
//! * every node performs the same amount of synthetic work (a fixed number
//!   of rounds of an integer mixing function),
//! * node `(i, j)` combines the value produced by `(i-1, j)` (across the
//!   cross edge) and `(i, j-1)` (down the stage edge), so the dependency
//!   structure is semantically load-bearing: reordering would change the
//!   output, which the tests verify against the serial reference.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pipedag::PipelineSpec;
use piper::{NodeOutcome, PipeOptions, PipeStats, PipelineIteration, Stage0, ThreadPool};

/// Configuration of the uniform pipeline.
#[derive(Debug, Clone, Copy)]
pub struct UniformConfig {
    /// Number of iterations `n`.
    pub iterations: usize,
    /// Number of stages `s` (including Stage 0).
    pub stages: usize,
    /// Rounds of the mixing function per node — the uniform node cost.
    pub work_rounds: u32,
}

impl Default for UniformConfig {
    fn default() -> Self {
        UniformConfig {
            iterations: 2_000,
            stages: 8,
            work_rounds: 2_000,
        }
    }
}

impl UniformConfig {
    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        UniformConfig {
            iterations: 120,
            stages: 5,
            work_rounds: 50,
        }
    }
}

/// One round of a 64-bit mixing function (splitmix64 finalizer); chained
/// `work_rounds` times per node so the node cost is uniform and tunable.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

fn node_value(up: u64, left: u64, iteration: u64, stage: u64, rounds: u32) -> u64 {
    let mut acc = up ^ left.rotate_left(17) ^ (iteration << 32 | stage);
    for _ in 0..rounds {
        acc = mix(acc);
    }
    acc
}

/// Serial reference: returns the value of the last stage of every iteration.
pub fn run_serial(config: &UniformConfig) -> Vec<u64> {
    let n = config.iterations;
    let s = config.stages.max(1);
    // grid[j] holds the value of stage j of the previous iteration.
    let mut prev_row = vec![0u64; s];
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut left = 0u64;
        for (j, prev) in prev_row.iter_mut().enumerate() {
            let v = node_value(*prev, left, i as u64, j as u64, config.work_rounds);
            *prev = v;
            left = v;
        }
        out.push(left);
    }
    out
}

struct Grid {
    values: Vec<AtomicU64>,
    stages: usize,
}

impl Grid {
    fn new(iterations: usize, stages: usize) -> Self {
        Grid {
            values: (0..iterations * stages)
                .map(|_| AtomicU64::new(0))
                .collect(),
            stages,
        }
    }

    fn get(&self, iteration: usize, stage: usize) -> u64 {
        // Acquire pairs with the Release store in `set`. Node (i, j) only
        // reads (i-1, j) after the runtime's cross edge has sequenced the
        // two nodes, so the grid itself needs no full SeqCst barrier — a
        // barrier per node would otherwise dominate the measured per-node
        // overhead on fine-grained configurations.
        self.values[iteration * self.stages + stage].load(Ordering::Acquire)
    }

    fn set(&self, iteration: usize, stage: usize, value: u64) {
        self.values[iteration * self.stages + stage].store(value, Ordering::Release);
    }
}

struct UniformIteration {
    iteration: usize,
    grid: Arc<Grid>,
    config: UniformConfig,
    left: u64,
}

impl PipelineIteration for UniformIteration {
    fn run_node(&mut self, stage: u64) -> NodeOutcome {
        let j = stage as usize;
        if j >= self.config.stages {
            // Degenerate single-stage pipeline: Stage 0 (run by the producer)
            // was the whole iteration.
            return NodeOutcome::Done;
        }
        let up = if self.iteration == 0 {
            0
        } else {
            self.grid.get(self.iteration - 1, j)
        };
        let v = node_value(
            up,
            self.left,
            self.iteration as u64,
            stage,
            self.config.work_rounds,
        );
        self.grid.set(self.iteration, j, v);
        self.left = v;
        if j + 1 >= self.config.stages {
            NodeOutcome::Done
        } else {
            // Every stage is serial: wait on the same stage of the previous
            // iteration (Theorem 12's fully uniform, fully serial pipeline).
            NodeOutcome::WaitFor(stage + 1)
        }
    }
}

/// Runs the uniform pipeline on PIPER; returns the per-iteration outputs and
/// the pipeline statistics.
pub fn run_piper(
    config: &UniformConfig,
    pool: &ThreadPool,
    options: PipeOptions,
) -> (Vec<u64>, PipeStats) {
    let n = config.iterations;
    let s = config.stages.max(1);
    let grid = Arc::new(Grid::new(n.max(1), s));
    let shared = Arc::clone(&grid);
    let cfg = UniformConfig {
        stages: s,
        ..*config
    };
    let stats = pool.pipe_while(options, move |i| {
        if i >= n as u64 {
            return Stage0::Stop;
        }
        let iteration = i as usize;
        let grid = Arc::clone(&shared);
        // Stage 0 is executed here, inside the serial producer contour, so
        // that the loop control and the first node stay serial as the paper
        // requires.
        let up = if iteration == 0 {
            0
        } else {
            grid.get(iteration - 1, 0)
        };
        let v = node_value(up, 0, i, 0, cfg.work_rounds);
        grid.set(iteration, 0, v);
        // For the degenerate single-stage pipeline the iteration object's
        // only node is a no-op (run_node returns Done immediately); the
        // runtime still needs an object to represent the iteration.
        Stage0::into_stage(
            UniformIteration {
                iteration,
                grid,
                config: cfg,
                left: v,
            },
            1,
            s > 1,
        )
    });

    let out = (0..n).map(|i| grid.get(i, s - 1)).collect();
    (out, stats)
}

/// Builds the uniform grid dag for the scheduler simulator, with every node
/// weighted `node_work`.
pub fn build_spec(config: &UniformConfig, node_work: u64) -> PipelineSpec {
    pipedag::generators::uniform(config.iterations, config.stages.max(1), node_work)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_output_is_deterministic_and_length_n() {
        let config = UniformConfig::tiny();
        let a = run_serial(&config);
        let b = run_serial(&config);
        assert_eq!(a, b);
        assert_eq!(a.len(), config.iterations);
        // Different iterations produce different values (the mix is keyed by
        // the iteration index).
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn piper_matches_serial() {
        let config = UniformConfig::tiny();
        let serial = run_serial(&config);
        let pool = ThreadPool::new(4);
        let (out, stats) = run_piper(&config, &pool, PipeOptions::default());
        assert_eq!(out, serial);
        assert_eq!(stats.iterations, config.iterations as u64);
    }

    #[test]
    fn piper_matches_serial_under_tight_throttling() {
        let config = UniformConfig::tiny();
        let serial = run_serial(&config);
        let pool = ThreadPool::new(4);
        for k in [1usize, 2, 8] {
            let (out, _) = run_piper(&config, &pool, PipeOptions::with_throttle(k));
            assert_eq!(out, serial, "K={k}");
        }
    }

    #[test]
    fn work_rounds_change_the_output_but_not_the_shape() {
        let light = UniformConfig {
            work_rounds: 1,
            ..UniformConfig::tiny()
        };
        let heavy = UniformConfig {
            work_rounds: 500,
            ..UniformConfig::tiny()
        };
        let a = run_serial(&light);
        let b = run_serial(&heavy);
        assert_eq!(a.len(), b.len());
        assert_ne!(a, b);
    }

    #[test]
    fn single_stage_pipeline_degenerates_gracefully() {
        let config = UniformConfig {
            iterations: 30,
            stages: 1,
            work_rounds: 10,
        };
        let serial = run_serial(&config);
        let pool = ThreadPool::new(2);
        let (out, _) = run_piper(&config, &pool, PipeOptions::default());
        assert_eq!(out, serial);
    }

    #[test]
    fn spec_matches_closed_form_span() {
        // A uniform n×s grid of unit-work serial stages has span n + s - 1
        // (one staircase) and work n·s.
        let config = UniformConfig {
            iterations: 40,
            stages: 6,
            work_rounds: 1,
        };
        let spec = build_spec(&config, 1);
        let a = pipedag::analyze_unthrottled(&spec);
        assert_eq!(a.work, 40 * 6);
        assert_eq!(a.span, 40 + 6 - 1);
    }
}
