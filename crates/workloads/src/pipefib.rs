//! The pipe-fib synthetic benchmark (paper, Section 10, Figure 9).
//!
//! pipe-fib computes the `n`-th Fibonacci number in binary with a pipelined
//! ripple-carry addition: iteration `i` computes `F_{i+2} = F_i + F_{i+1}`,
//! and stage `j` of the iteration computes bit block `j` of the sum. Stage
//! `j` has a cross edge on stage `j` of the previous iteration (which
//! produces block `j` of `F_{i+1}`), so the pipeline is fully serial per
//! stage but deeply pipelined across iterations — `Θ(n²)` work, `Θ(n)`
//! span. The per-stage work is tiny (one bit, or `block_bits` bits for the
//! coarsened `pipe-fib-256` variant), which is exactly the regime where the
//! dependency-folding optimization matters.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use pipedag::PipelineSpec;
use piper::{NodeOutcome, PipeOptions, PipeStats, PipelineIteration, Stage0, ThreadPool};

/// Configuration of pipe-fib.
#[derive(Debug, Clone, Copy)]
pub struct PipeFibConfig {
    /// Which Fibonacci number to compute (`F_n`, with `F_1 = F_2 = 1`).
    pub n: usize,
    /// Bits computed per stage: 1 for plain pipe-fib, 256 for pipe-fib-256.
    pub block_bits: usize,
}

impl Default for PipeFibConfig {
    fn default() -> Self {
        PipeFibConfig {
            n: 2_000,
            block_bits: 1,
        }
    }
}

impl PipeFibConfig {
    /// The coarsened variant the paper calls pipe-fib-256.
    pub fn coarsened(n: usize) -> Self {
        PipeFibConfig { n, block_bits: 256 }
    }

    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        PipeFibConfig {
            n: 200,
            block_bits: 1,
        }
    }

    /// Safe upper bound on the number of bits of `F_n` (since `F_n < 2^n`).
    fn max_bits(&self) -> usize {
        self.n + 2
    }

    fn blocks_for(&self, k: usize) -> usize {
        // Upper bound on the bits of F_k, rounded up to whole blocks.
        k.div_ceil(self.block_bits).max(1)
    }
}

/// Serial reference: binary Fibonacci by repeated ripple-carry addition,
/// returning the bits of `F_n` (least significant first, no trailing zeros).
pub fn run_serial(config: &PipeFibConfig) -> Vec<u8> {
    let n = config.n.max(2);
    let mut a = vec![1u8]; // F_1
    let mut b = vec![1u8]; // F_2
    if n == 1 {
        return a;
    }
    for _ in 3..=n {
        let mut sum = Vec::with_capacity(b.len() + 1);
        let mut carry = 0u8;
        for i in 0..b.len().max(a.len()) {
            let x = *a.get(i).unwrap_or(&0) + *b.get(i).unwrap_or(&0) + carry;
            sum.push(x & 1);
            carry = x >> 1;
        }
        if carry > 0 {
            sum.push(carry);
        }
        a = b;
        b = sum;
    }
    b
}

/// Shared bit storage: `numbers[k]` holds the bits of `F_{k+1}` (flat, one
/// atomic byte per bit, written once by the owning stage and read by later
/// iterations only after the cross edge guarantees publication).
struct BitTable {
    numbers: Vec<Vec<AtomicU8>>,
}

impl BitTable {
    fn new(count: usize, max_bits: usize) -> Self {
        BitTable {
            numbers: (0..count)
                .map(|_| (0..max_bits).map(|_| AtomicU8::new(0)).collect())
                .collect(),
        }
    }

    fn get(&self, number: usize, bit: usize) -> u8 {
        // Acquire pairs with the Release store in `set`; the cross edge the
        // runtime enforces is what sequences the two nodes, so no stronger
        // ordering (and no full barrier on the per-node hot path) is needed.
        self.numbers[number]
            .get(bit)
            .map(|a| a.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    fn set(&self, number: usize, bit: usize, value: u8) {
        self.numbers[number][bit].store(value, Ordering::Release);
    }
}

/// One pipe-fib iteration: computes `F_{i+3}` (iteration index `i` starts
/// at 0) block of bits by block of bits.
struct FibIteration {
    /// Index of the number this iteration computes into the table.
    target: usize,
    table: Arc<BitTable>,
    config: PipeFibConfig,
    carry: u8,
    blocks: usize,
    /// Byte-job output: set only on the final iteration (the one computing
    /// `F_n`), whose last node owns every bit of the answer and emits it
    /// in-pipeline (so the bytes happen-before pipeline completion).
    sink: Option<crate::bytes::ByteSink>,
}

impl PipelineIteration for FibIteration {
    fn run_node(&mut self, stage: u64) -> NodeOutcome {
        let block = (stage - 1) as usize;
        let lo = block * self.config.block_bits;
        let hi = ((block + 1) * self.config.block_bits).min(self.config.max_bits());
        for bit in lo..hi {
            let x = self.table.get(self.target - 2, bit)
                + self.table.get(self.target - 1, bit)
                + self.carry;
            self.table.set(self.target, bit, x & 1);
            self.carry = x >> 1;
        }
        if block + 1 >= self.blocks {
            debug_assert_eq!(self.carry, 0, "upper bound on bits must absorb the carry");
            if let Some(sink) = self.sink.as_mut() {
                sink(checksum::buf::Chunk::from_vec(extract_bits(
                    &self.config,
                    &self.table,
                )));
            }
            NodeOutcome::Done
        } else {
            // Stage j+1 reads block j+1 of F_{target-1}, produced by stage
            // j+1 of the previous iteration: a cross edge (pipe_wait).
            NodeOutcome::WaitFor(stage + 1)
        }
    }
}

/// Allocates the shared bit table, seeded with `F_1 = F_2 = 1`.
fn make_table(config: &PipeFibConfig) -> Arc<BitTable> {
    let n = config.n.max(2);
    let table = Arc::new(BitTable::new(n, config.max_bits()));
    table.set(0, 0, 1);
    table.set(1, 0, 1);
    table
}

/// Builds the Stage-0 producer over a seeded table (shared between the
/// blocking [`run_piper`] and the deferred [`piper_launch`]).
fn make_pipe_producer(
    config: PipeFibConfig,
    table: Arc<BitTable>,
    mut sink: Option<crate::bytes::ByteSink>,
) -> impl FnMut(u64) -> Stage0<FibIteration> + Send + 'static {
    let iterations = config.n.max(2).saturating_sub(2) as u64;
    move |i| {
        if i >= iterations {
            return Stage0::Stop;
        }
        let target = (i + 2) as usize;
        Stage0::Proceed {
            state: FibIteration {
                target,
                table: Arc::clone(&table),
                config,
                carry: 0,
                blocks: config.blocks_for(target + 1),
                sink: if i + 1 == iterations {
                    sink.take()
                } else {
                    None
                },
            },
            first_stage: 1,
            wait: true,
        }
    }
}

/// Extracts the bits of `F_n` (number index `n-1`), trimming trailing
/// zeros.
fn extract_bits(config: &PipeFibConfig, table: &BitTable) -> Vec<u8> {
    let n = config.n.max(2);
    let mut bits: Vec<u8> = (0..config.max_bits())
        .map(|b| table.get(n - 1, b))
        .collect();
    while bits.len() > 1 && *bits.last().unwrap() == 0 {
        bits.pop();
    }
    bits
}

/// Runs pipe-fib on PIPER and returns the bits of `F_n` plus the pipeline
/// statistics (used by the Figure 9 table for overhead/check counts).
pub fn run_piper(
    config: &PipeFibConfig,
    pool: &ThreadPool,
    options: PipeOptions,
) -> (Vec<u8>, PipeStats) {
    let table = make_table(config);
    let stats = pool.pipe_while(
        options,
        make_pipe_producer(*config, Arc::clone(&table), None),
    );
    (extract_bits(config, &table), stats)
}

/// Deferred detached launch of the PIPER pipe-fib pipeline, in the shape
/// the `pipeserve` executor accepts as a job. The second return value
/// extracts the bits of `F_n`; call it only after the job completed.
#[allow(clippy::type_complexity)]
pub fn piper_launch(
    config: &PipeFibConfig,
) -> (crate::PipeLaunch, Box<dyn FnOnce() -> Vec<u8> + Send>) {
    let config = *config;
    let table = make_table(&config);
    let shared = Arc::clone(&table);
    let launch: crate::PipeLaunch = Box::new(move |pool, options| {
        piper::spawn_pipe(pool, options, make_pipe_producer(config, shared, None))
    });
    let extract = Box::new(move || extract_bits(&config, &table));
    (launch, extract)
}

/// Deferred launch of pipe-fib in bytes-in/bytes-out shape. The output
/// (the bits of `F_n`, one byte per bit, least significant first) is
/// written entirely by the *final* iteration, whose last node therefore
/// emits the whole answer into `sink` in-pipeline — no completion-hook
/// race with joiners. Requires `n ≥ 3` (below that the pipeline has no
/// iterations and nothing is emitted); a cancelled run that never reaches
/// the final node emits nothing.
pub fn piper_launch_bytes(
    config: &PipeFibConfig,
    sink: crate::bytes::ByteSink,
) -> crate::PipeLaunch {
    let config = *config;
    let table = make_table(&config);
    Box::new(move |pool, options| {
        piper::spawn_pipe(pool, options, make_pipe_producer(config, table, Some(sink)))
    })
}

/// Serial reference of the byte job: the bits of `F_n`, least significant
/// first, one byte (0/1) per bit.
pub fn serial_bytes(config: &PipeFibConfig) -> Vec<u8> {
    run_serial(config)
}

/// Builds the triangular pipeline dag of pipe-fib for the scheduler
/// simulator (unit work per stage, scaled by `stage_work`).
pub fn build_spec(config: &PipeFibConfig, stage_work: u64) -> PipelineSpec {
    pipedag::generators::pipe_fib(config.n.saturating_sub(2), config.block_bits, stage_work)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_to_string(bits: &[u8]) -> String {
        bits.iter().rev().map(|b| char::from(b'0' + b)).collect()
    }

    #[test]
    fn serial_small_values_are_correct() {
        // F_10 = 55 = 0b110111, F_12 = 144 = 0b10010000.
        assert_eq!(
            bits_to_string(&run_serial(&PipeFibConfig {
                n: 10,
                block_bits: 1
            })),
            "110111"
        );
        assert_eq!(
            bits_to_string(&run_serial(&PipeFibConfig {
                n: 12,
                block_bits: 1
            })),
            "10010000"
        );
    }

    #[test]
    fn piper_matches_serial_fine_grained() {
        let config = PipeFibConfig::tiny();
        let serial = run_serial(&config);
        let pool = ThreadPool::new(4);
        let (bits, stats) = run_piper(&config, &pool, PipeOptions::default());
        assert_eq!(bits, serial);
        assert_eq!(stats.iterations, (config.n - 2) as u64);
    }

    #[test]
    fn piper_matches_serial_coarsened() {
        let config = PipeFibConfig::coarsened(400);
        let serial = run_serial(&config);
        let pool = ThreadPool::new(4);
        let (bits, _stats) = run_piper(&config, &pool, PipeOptions::default());
        assert_eq!(bits, serial);
    }

    #[test]
    fn coarsening_reduces_node_count() {
        let pool = ThreadPool::new(2);
        let fine = PipeFibConfig {
            n: 300,
            block_bits: 1,
        };
        let coarse = PipeFibConfig::coarsened(300);
        let (_, fine_stats) = run_piper(&fine, &pool, PipeOptions::default());
        let (_, coarse_stats) = run_piper(&coarse, &pool, PipeOptions::default());
        assert!(fine_stats.nodes > 10 * coarse_stats.nodes);
    }

    #[test]
    fn dependency_folding_cuts_cross_checks_on_pipe_fib() {
        // The Figure 9 effect: with fine-grained stages, dependency folding
        // avoids most of the per-node stage-counter reads.
        let pool = ThreadPool::new(1);
        let config = PipeFibConfig {
            n: 300,
            block_bits: 1,
        };
        let (_, with_fold) = run_piper(&config, &pool, PipeOptions::default());
        let (_, without_fold) = run_piper(
            &config,
            &pool,
            PipeOptions::default().dependency_folding(false),
        );
        assert!(with_fold.folded_checks > 0);
        assert!(with_fold.cross_checks < without_fold.cross_checks);
    }

    #[test]
    fn triangular_spec_matches_iteration_count() {
        let config = PipeFibConfig::tiny();
        let spec = build_spec(&config, 1);
        assert_eq!(spec.num_iterations(), config.n - 2);
        let analysis = pipedag::analyze_unthrottled(&spec);
        assert!(analysis.parallelism() > 1.0);
    }
}
