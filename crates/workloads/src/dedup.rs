//! The dedup workload: deduplicating compression as an SSPS pipeline
//! (paper, Figure 4).
//!
//! Stage 0 (serial) chunks the input stream; Stage 1 (serial) computes the
//! chunk's SHA-1 and queries the duplicate table; Stage 2 (parallel)
//! compresses chunks not seen before; Stage 3 (serial) appends either the
//! compressed chunk or a back-reference to the output archive.
//!
//! The archive format is self-contained, so tests verify every executor by
//! decoding its archive back to the original input.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use baselines::{
    BindToStageConfig, BindToStagePipeline, ConstructAndRunConfig, ConstructAndRunPipeline,
    StageSet,
};
use checksum::{sha1, split_chunks, ChunkerConfig};
use compress::{lz_compress, lz_decompress};
use pipedag::{NodeSpec, PipelineSpec};
use piper::{PipeOptions, StagedPipeline, ThreadPool};

/// Configuration of the dedup workload.
#[derive(Debug, Clone)]
pub struct DedupConfig {
    /// Size of the synthetic input in bytes.
    pub input_size: usize,
    /// How many times the base block is repeated (more repeats = more
    /// duplicate chunks).
    pub repeats: usize,
    /// Chunker parameters.
    pub chunker: ChunkerConfig,
    /// Seed of the synthetic input.
    pub seed: u64,
}

impl Default for DedupConfig {
    fn default() -> Self {
        DedupConfig {
            input_size: 1 << 20,
            repeats: 4,
            chunker: ChunkerConfig::small(),
            seed: 0xDED0_D00D,
        }
    }
}

impl DedupConfig {
    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        DedupConfig {
            input_size: 96 * 1024,
            repeats: 3,
            chunker: ChunkerConfig::small(),
            seed: 0xDED0_D00D,
        }
    }

    /// Generates the synthetic input stream: a pseudo-random block repeated
    /// `repeats` times with small edits, so content-defined chunking finds
    /// many duplicates (as real backup streams do).
    pub fn generate_input(&self) -> Vec<u8> {
        let block = self.input_size / self.repeats.max(1);
        let mut state = self.seed | 1;
        let base: Vec<u8> = (0..block)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 24) as u8
            })
            .collect();
        let mut input = Vec::with_capacity(self.input_size);
        for r in 0..self.repeats.max(1) {
            input.extend_from_slice(&base);
            // A small edit per repeat so repeats are not bit-identical.
            let pos = (r * 37) % input.len().max(1);
            if let Some(byte) = input.get_mut(pos) {
                *byte = byte.wrapping_add(r as u8);
            }
        }
        input.truncate(self.input_size);
        input
    }
}

/// Archive records, in chunk order.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Record {
    /// A chunk seen for the first time: its compressed payload.
    Unique { compressed: Vec<u8> },
    /// A repeat of an earlier unique chunk (index into the unique list).
    Duplicate { reference: u64 },
}

/// The dedup output archive.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Archive {
    records: Vec<Record>,
}

impl Archive {
    /// Serialised size in bytes (roughly what would be written to disk).
    pub fn compressed_size(&self) -> usize {
        self.records
            .iter()
            .map(|r| match r {
                Record::Unique { compressed } => compressed.len() + 5,
                Record::Duplicate { .. } => 9,
            })
            .sum()
    }

    /// Number of chunk records.
    pub fn num_chunks(&self) -> usize {
        self.records.len()
    }

    /// Number of duplicate records.
    pub fn num_duplicates(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r, Record::Duplicate { .. }))
            .count()
    }

    /// Decodes the archive back to the original input.
    pub fn decode(&self) -> Option<Vec<u8>> {
        let mut uniques: Vec<Vec<u8>> = Vec::new();
        let mut out = Vec::new();
        for record in &self.records {
            match record {
                Record::Unique { compressed } => {
                    let data = lz_decompress(compressed)?;
                    out.extend_from_slice(&data);
                    uniques.push(data);
                }
                Record::Duplicate { reference } => {
                    let data = uniques.get(*reference as usize)?;
                    out.extend_from_slice(data);
                }
            }
        }
        Some(out)
    }
}

/// One chunk flowing through the pipeline.
struct ChunkItem {
    /// Position of the chunk in the stream.
    seq: u64,
    /// Raw chunk bytes.
    data: Vec<u8>,
    /// Filled by the dedup stage: `Some(reference)` if duplicate.
    duplicate_of: Option<u64>,
    /// Filled by the compress stage for unique chunks.
    compressed: Option<Vec<u8>>,
}

/// Shared dedup state used by the serial deduplication stage.
#[derive(Default)]
struct DedupTable {
    /// SHA-1 digest → index among unique chunks.
    seen: HashMap<[u8; 20], u64>,
    next_unique: u64,
}

impl DedupTable {
    /// Returns `Some(reference)` for a duplicate, or `None` for a chunk seen
    /// for the first time (which is assigned the next unique index).
    fn classify(&mut self, data: &[u8]) -> Option<u64> {
        let digest = sha1(data);
        match self.seen.get(&digest) {
            Some(&idx) => Some(idx),
            None => {
                self.seen.insert(digest, self.next_unique);
                self.next_unique += 1;
                None
            }
        }
    }
}

/// Serial reference implementation.
pub fn run_serial(config: &DedupConfig, input: &[u8]) -> Archive {
    let mut table = DedupTable::default();
    let mut archive = Archive::default();
    for chunk in split_chunks(input, &config.chunker) {
        match table.classify(chunk) {
            Some(reference) => archive.records.push(Record::Duplicate { reference }),
            None => archive.records.push(Record::Unique {
                compressed: lz_compress(chunk),
            }),
        }
    }
    archive
}

/// The SSPS stage set with a pluggable output stage: the final serial
/// stage hands each finished record (with its sequence number) to `emit`.
/// [`make_stages`] materialises an [`Archive`]; the byte-job adapter
/// ([`piper_launch_bytes`]) encodes and streams each record instead.
fn make_stages_emitting(
    table: Arc<Mutex<DedupTable>>,
    emit: impl Fn(u64, Record) + Send + Sync + 'static,
) -> StageSet<ChunkItem> {
    StageSet::new()
        // Serial deduplication stage (the paper's Stage 1): SHA-1 + table.
        .serial(move |item: &mut ChunkItem| {
            item.duplicate_of = table.lock().unwrap().classify(&item.data);
        })
        // Parallel compression stage (Stage 2).
        .parallel(|item: &mut ChunkItem| {
            if item.duplicate_of.is_none() {
                item.compressed = Some(lz_compress(&item.data));
            }
        })
        // Serial output stage (Stage 3).
        .serial(move |item: &mut ChunkItem| {
            let record = match item.duplicate_of {
                Some(reference) => Record::Duplicate { reference },
                None => Record::Unique {
                    compressed: item.compressed.take().expect("unique chunk was compressed"),
                },
            };
            emit(item.seq, record);
        })
}

fn make_stages(table: Arc<Mutex<DedupTable>>, sink: Arc<Mutex<Archive>>) -> StageSet<ChunkItem> {
    make_stages_emitting(table, move |seq, record| {
        let mut archive = sink.lock().unwrap();
        debug_assert_eq!(archive.records.len() as u64, seq);
        archive.records.push(record);
    })
}

fn make_producer(config: &DedupConfig, input: &[u8]) -> impl FnMut() -> Option<ChunkItem> + Send {
    let chunks: Vec<Vec<u8>> = split_chunks(input, &config.chunker)
        .into_iter()
        .map(|c| c.to_vec())
        .collect();
    let mut iter = chunks.into_iter().enumerate();
    move || {
        iter.next().map(|(seq, data)| ChunkItem {
            seq: seq as u64,
            data,
            duplicate_of: None,
            compressed: None,
        })
    }
}

/// Adapts a baseline StageSet onto the piper StagedPipeline (stage kinds
/// map one to one), so one stage definition serves every executor.
fn adapt_stages(stages: StageSet<ChunkItem>) -> StagedPipeline<ChunkItem> {
    let mut pipeline = StagedPipeline::<ChunkItem>::new();
    for stage in stages.stages() {
        let body = Arc::clone(&stage.body);
        pipeline = match stage.kind {
            baselines::StageKind::Serial => pipeline.serial(move |item| body(item)),
            baselines::StageKind::Parallel => pipeline.parallel(move |item| body(item)),
        };
    }
    pipeline
}

/// Builds the SSPS pipeline and its output sink (shared between the
/// blocking [`run_piper`] and the deferred [`piper_launch`]).
fn make_piper_pipeline() -> (StagedPipeline<ChunkItem>, Arc<Mutex<Archive>>) {
    let table = Arc::new(Mutex::new(DedupTable::default()));
    let sink = Arc::new(Mutex::new(Archive::default()));
    let stages = make_stages(table, Arc::clone(&sink));
    (adapt_stages(stages), sink)
}

/// PIPER (`pipe_while`) implementation of the SSPS pipeline.
pub fn run_piper(
    config: &DedupConfig,
    input: &[u8],
    pool: &ThreadPool,
    options: PipeOptions,
) -> Archive {
    let (pipeline, sink) = make_piper_pipeline();
    pipeline.run(pool, options, make_producer(config, input));
    let result = std::mem::take(&mut *sink.lock().unwrap());
    result
}

/// Deferred detached launch of the PIPER dedup pipeline, in the shape the
/// `pipeserve` executor accepts as a job. The returned sink holds the
/// archive once the job's pipeline has completed.
pub fn piper_launch(
    config: &DedupConfig,
    input: &[u8],
) -> (crate::PipeLaunch, Arc<Mutex<Archive>>) {
    let (pipeline, sink) = make_piper_pipeline();
    let producer = make_producer(config, input);
    let launch: crate::PipeLaunch =
        Box::new(move |pool, options| pipeline.spawn(pool, options, producer));
    (launch, sink)
}

/// Record tags of the byte-level archive encoding (see [`encode_archive`]).
const RECORD_UNIQUE: u8 = 0x01;
const RECORD_DUPLICATE: u8 = 0x02;

fn encode_record_into(record: &Record, out: &mut Vec<u8>) {
    match record {
        Record::Unique { compressed } => {
            out.push(RECORD_UNIQUE);
            out.extend_from_slice(&(compressed.len() as u32).to_le_bytes());
            out.extend_from_slice(compressed);
        }
        Record::Duplicate { reference } => {
            out.push(RECORD_DUPLICATE);
            out.extend_from_slice(&reference.to_le_bytes());
        }
    }
}

/// Serialises an archive to the self-delimiting byte format streamed by
/// the byte-job adapter: per record, a tag byte (`0x01` unique / `0x02`
/// duplicate) followed by `u32-LE length + compressed payload` or a
/// `u64-LE` back-reference. Concatenating the per-record encodings in
/// order yields exactly this function's output, which is what makes the
/// streamed network output byte-comparable to the serial reference.
pub fn encode_archive(archive: &Archive) -> Vec<u8> {
    let mut out = Vec::with_capacity(archive.compressed_size());
    for record in &archive.records {
        encode_record_into(record, &mut out);
    }
    out
}

/// The configuration the byte-job adapter pairs with a raw input stream
/// (only the chunker matters for chunk-identical output).
fn byte_job_config(input_len: usize) -> DedupConfig {
    DedupConfig {
        input_size: input_len,
        repeats: 1,
        chunker: ChunkerConfig::small(),
        seed: 0,
    }
}

/// Serial reference of the byte job: raw stream in, encoded archive out.
pub fn serial_bytes(input: &[u8]) -> Vec<u8> {
    let config = byte_job_config(input.len());
    encode_archive(&run_serial(&config, input))
}

/// Deferred launch of the dedup pipeline in bytes-in/bytes-out shape: the
/// final serial stage encodes each archive record and hands it to `sink`
/// in chunk order (so the concatenated sink writes equal
/// [`serial_bytes`]` of the same input`).
pub fn piper_launch_bytes(input: &[u8], sink: crate::bytes::ByteSink) -> crate::PipeLaunch {
    let config = byte_job_config(input.len());
    let table = Arc::new(Mutex::new(DedupTable::default()));
    let sink = Mutex::new(sink);
    let stages = make_stages_emitting(table, move |_seq, record| {
        let mut buf = Vec::new();
        encode_record_into(&record, &mut buf);
        (sink.lock().unwrap())(checksum::buf::Chunk::from_vec(buf));
    });
    let pipeline = adapt_stages(stages);
    let producer = make_producer(&config, input);
    Box::new(move |pool, options| pipeline.spawn(pool, options, producer))
}

/// Bind-to-stage (Pthreads-style) implementation.
pub fn run_bind_to_stage(config: &DedupConfig, input: &[u8], bts: BindToStageConfig) -> Archive {
    let table = Arc::new(Mutex::new(DedupTable::default()));
    let sink = Arc::new(Mutex::new(Archive::default()));
    let stages = make_stages(Arc::clone(&table), Arc::clone(&sink));
    let pipeline = BindToStagePipeline::new(stages, bts);
    pipeline.run(make_producer(config, input));
    let result = std::mem::take(&mut *sink.lock().unwrap());
    result
}

/// Construct-and-run (TBB-style) implementation.
pub fn run_construct_and_run(
    config: &DedupConfig,
    input: &[u8],
    car: ConstructAndRunConfig,
) -> Archive {
    let table = Arc::new(Mutex::new(DedupTable::default()));
    let sink = Arc::new(Mutex::new(Archive::default()));
    let stages = make_stages(Arc::clone(&table), Arc::clone(&sink));
    let pipeline = ConstructAndRunPipeline::new(stages, car);
    pipeline.run(make_producer(config, input));
    let result = std::mem::take(&mut *sink.lock().unwrap());
    result
}

/// Records the weighted pipeline dag of a serial run (node weights in
/// nanoseconds) for the scheduler simulator; also used to measure dedup's
/// parallelism as the paper does with Cilkview (it reports 7.4).
pub fn record_spec(config: &DedupConfig, input: &[u8]) -> PipelineSpec {
    let mut table = DedupTable::default();
    let mut spec = PipelineSpec::new();
    let chunks = split_chunks(input, &config.chunker);
    for chunk in chunks {
        let t0 = Instant::now();
        std::hint::black_box(chunk.len());
        let w0 = t0.elapsed().as_nanos() as u64;

        let t1 = Instant::now();
        let duplicate = table.classify(chunk);
        let w1 = t1.elapsed().as_nanos() as u64;

        let t2 = Instant::now();
        let compressed = if duplicate.is_none() {
            Some(lz_compress(chunk))
        } else {
            None
        };
        let w2 = t2.elapsed().as_nanos() as u64;

        let t3 = Instant::now();
        std::hint::black_box(&compressed);
        let w3 = t3.elapsed().as_nanos() as u64;

        spec.push_iteration(vec![
            NodeSpec::wait(0, w0.max(1)),
            NodeSpec::wait(1, w1.max(1)),
            NodeSpec::cont(2, w2.max(1)),
            NodeSpec::wait(3, w3.max(1)),
        ]);
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_archive_roundtrips_and_finds_duplicates() {
        let config = DedupConfig::tiny();
        let input = config.generate_input();
        let archive = run_serial(&config, &input);
        assert_eq!(archive.decode().unwrap(), input);
        assert!(
            archive.num_duplicates() * 3 > archive.num_chunks(),
            "expected plenty of duplicate chunks, got {}/{}",
            archive.num_duplicates(),
            archive.num_chunks()
        );
        assert!(archive.compressed_size() < input.len());
    }

    #[test]
    fn piper_matches_serial() {
        let config = DedupConfig::tiny();
        let input = config.generate_input();
        let serial = run_serial(&config, &input);
        let pool = ThreadPool::new(4);
        let parallel = run_piper(&config, &input, &pool, PipeOptions::with_throttle(16));
        assert_eq!(serial, parallel);
        assert_eq!(parallel.decode().unwrap(), input);
    }

    #[test]
    fn bind_to_stage_matches_serial() {
        let config = DedupConfig::tiny();
        let input = config.generate_input();
        let serial = run_serial(&config, &input);
        let parallel = run_bind_to_stage(
            &config,
            &input,
            BindToStageConfig {
                threads_per_parallel_stage: 3,
                queue_capacity: 16,
            },
        );
        assert_eq!(serial, parallel);
    }

    #[test]
    fn construct_and_run_matches_serial() {
        let config = DedupConfig::tiny();
        let input = config.generate_input();
        let serial = run_serial(&config, &input);
        let parallel = run_construct_and_run(
            &config,
            &input,
            ConstructAndRunConfig {
                threads: 3,
                max_tokens: 8,
            },
        );
        assert_eq!(serial, parallel);
    }

    #[test]
    fn recorded_spec_has_bounded_parallelism() {
        // dedup's parallelism is modest (the paper measures 7.4 on its
        // input); the synthetic input should land in the same regime:
        // clearly more than 1, clearly less than ferret-like hundreds.
        let config = DedupConfig::tiny();
        let input = config.generate_input();
        let spec = record_spec(&config, &input);
        let analysis = pipedag::analyze_unthrottled(&spec);
        assert!(analysis.parallelism() > 1.5);
        assert!(analysis.parallelism() < 100.0);
    }

    #[test]
    fn generate_input_is_deterministic() {
        let config = DedupConfig::tiny();
        assert_eq!(config.generate_input(), config.generate_input());
    }
}
