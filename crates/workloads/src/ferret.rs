//! The ferret workload: content-based image similarity search as an SPS
//! pipeline (paper, Figure 1).
//!
//! Stage 0 (serial) loads the next query image; Stage 1 (parallel) extracts
//! features and queries the index — the heavy `r ≫ 1` stage of the paper's
//! work/span analysis; Stage 2 (serial) appends the ranked results to the
//! output in query order.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use baselines::{
    BindToStageConfig, BindToStagePipeline, ConstructAndRunConfig, ConstructAndRunPipeline,
    StageSet,
};
use imagesim::{features, Image};

pub use imagesim::Index;
use pipedag::{NodeSpec, PipelineSpec};
use piper::{PipeOptions, StagedPipeline, ThreadPool};

/// Configuration of the ferret workload.
#[derive(Debug, Clone)]
pub struct FerretConfig {
    /// Number of query images (pipeline iterations).
    pub queries: usize,
    /// Number of images in the database.
    pub database_size: usize,
    /// Number of latent image classes in the synthetic data.
    pub classes: u64,
    /// Image side length in pixels.
    pub image_size: usize,
    /// How many index buckets each query probes (weight of the parallel
    /// stage).
    pub probe_factor: usize,
    /// Top-k results kept per query.
    pub topk: usize,
}

impl Default for FerretConfig {
    fn default() -> Self {
        FerretConfig {
            queries: 128,
            database_size: 256,
            classes: 16,
            image_size: 32,
            probe_factor: 64,
            topk: 10,
        }
    }
}

impl FerretConfig {
    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        FerretConfig {
            queries: 24,
            database_size: 60,
            classes: 6,
            image_size: 16,
            probe_factor: 8,
            topk: 5,
        }
    }
}

/// The output: for each query (in order), the ranked `(image id, distance)`
/// list. Distances are compared bit-exactly across executors because every
/// executor performs the identical float computations per query.
pub type FerretOutput = Vec<Vec<(u64, f32)>>;

/// One in-flight query.
struct QueryItem {
    query_id: u64,
    image: Image,
    results: Vec<(u64, f32)>,
}

/// Builds the shared database index (not part of the timed pipeline, as in
/// PARSEC, where the database is loaded before the region of interest).
pub fn build_index(config: &FerretConfig) -> Arc<Index> {
    Arc::new(Index::build_synthetic(
        config.database_size,
        config.classes,
        config.image_size,
        config.image_size,
    ))
}

fn load_query(config: &FerretConfig, i: u64) -> Image {
    // Query images are drawn from the same class distribution but are not
    // database members.
    Image::synthetic(
        i + 1_000_000,
        config.classes,
        config.image_size,
        config.image_size,
    )
}

fn rank(index: &Index, config: &FerretConfig, image: &Image) -> Vec<(u64, f32)> {
    let f = features(image);
    index.query(&f, config.topk, config.probe_factor)
}

/// Serial reference implementation.
pub fn run_serial(config: &FerretConfig, index: &Index) -> FerretOutput {
    let mut out = Vec::with_capacity(config.queries);
    for i in 0..config.queries as u64 {
        let image = load_query(config, i);
        out.push(rank(index, config, &image));
    }
    out
}

/// Builds the SPS pipeline with a pluggable output stage (the final serial
/// stage hands each query's id and ranking to `emit`, in query order) and
/// its Stage-0 feeder. Shared between the in-memory sinks below and the
/// streaming byte-job adapter ([`piper_launch_bytes`]).
fn make_piper_pipeline_emitting(
    config: &FerretConfig,
    index: &Arc<Index>,
    emit: impl Fn(u64, Vec<(u64, f32)>) + Send + Sync + 'static,
) -> (
    StagedPipeline<QueryItem>,
    impl FnMut() -> Option<QueryItem> + Send + 'static,
) {
    let index = Arc::clone(index);
    let config_cl = config.clone();
    let mut next = 0u64;
    let total = config.queries as u64;

    let pipeline = StagedPipeline::<QueryItem>::new()
        .parallel({
            let index = Arc::clone(&index);
            let config = config_cl.clone();
            move |item: &mut QueryItem| {
                item.results = rank(&index, &config, &item.image);
            }
        })
        .serial(move |item| {
            emit(item.query_id, std::mem::take(&mut item.results));
        });
    let producer = move || {
        if next == total {
            return None;
        }
        let item = QueryItem {
            query_id: next,
            image: load_query(&config_cl, next),
            results: Vec::new(),
        };
        next += 1;
        Some(item)
    };
    (pipeline, producer)
}

/// Builds the SPS pipeline, its Stage-0 feeder, and the output sink
/// (shared between the blocking [`run_piper`] and the deferred
/// [`piper_launch`]).
#[allow(clippy::type_complexity)]
fn make_piper_pipeline(
    config: &FerretConfig,
    index: &Arc<Index>,
) -> (
    StagedPipeline<QueryItem>,
    impl FnMut() -> Option<QueryItem> + Send + 'static,
    Arc<Mutex<FerretOutput>>,
) {
    let output: Arc<Mutex<FerretOutput>> = Arc::new(Mutex::new(Vec::with_capacity(config.queries)));
    let sink = Arc::clone(&output);
    let (pipeline, producer) =
        make_piper_pipeline_emitting(config, index, move |query_id, results| {
            let mut out = sink.lock().unwrap();
            debug_assert_eq!(out.len() as u64, query_id);
            out.push(results);
        });
    (pipeline, producer, output)
}

/// PIPER (`pipe_while`) implementation of the SPS pipeline.
pub fn run_piper(
    config: &FerretConfig,
    index: &Arc<Index>,
    pool: &ThreadPool,
    options: PipeOptions,
) -> FerretOutput {
    let (pipeline, producer, output) = make_piper_pipeline(config, index);
    pipeline.run(pool, options, producer);
    let result = std::mem::take(&mut *output.lock().unwrap());
    result
}

/// Deferred detached launch of the PIPER ferret pipeline, in the shape the
/// `pipeserve` executor accepts as a job. The returned sink holds the
/// ranked results once the job's pipeline has completed.
pub fn piper_launch(
    config: &FerretConfig,
    index: &Arc<Index>,
) -> (crate::PipeLaunch, Arc<Mutex<FerretOutput>>) {
    let (pipeline, producer, output) = make_piper_pipeline(config, index);
    let launch: crate::PipeLaunch =
        Box::new(move |pool, options| pipeline.spawn(pool, options, producer));
    (launch, output)
}

/// Encodes one query's ranked results for the byte-job output stream:
/// `u32-LE` hit count, then per hit `u64-LE` image id + `u32-LE`
/// `f32::to_bits` distance (bit-exact, like the in-memory comparison).
pub fn encode_ranking_into(results: &[(u64, f32)], out: &mut Vec<u8>) {
    out.extend_from_slice(&(results.len() as u32).to_le_bytes());
    for (id, distance) in results {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&distance.to_bits().to_le_bytes());
    }
}

/// Serial reference of the byte job: the concatenated
/// [`encode_ranking_into`] of every query's ranking, in query order.
pub fn serial_bytes(config: &FerretConfig) -> Vec<u8> {
    let index = build_index(config);
    let mut out = Vec::new();
    for results in run_serial(config, &index) {
        encode_ranking_into(&results, &mut out);
    }
    out
}

/// Deferred launch of the ferret pipeline in bytes-in/bytes-out shape: the
/// final serial stage encodes each query's ranking and hands it to `sink`
/// in query order. Builds its own index from `config` (the database is
/// derived, not part of the byte input) inside the deferred launch, i.e.
/// post-admission on the executor.
pub fn piper_launch_bytes(
    config: &FerretConfig,
    sink: crate::bytes::ByteSink,
) -> crate::PipeLaunch {
    let config = config.clone();
    Box::new(move |pool, options| {
        // Build the index inside the deferred launch: the expensive
        // construction runs post-admission on the executor, not on a
        // server's frame-reader thread, and never for a rejected job.
        let index = build_index(&config);
        let sink = Mutex::new(sink);
        let (pipeline, producer) =
            make_piper_pipeline_emitting(&config, &index, move |_id, results| {
                let mut buf = Vec::new();
                encode_ranking_into(&results, &mut buf);
                (sink.lock().unwrap())(checksum::buf::Chunk::from_vec(buf));
            });
        pipeline.spawn(pool, options, producer)
    })
}

/// Bind-to-stage (Pthreads-style) implementation.
pub fn run_bind_to_stage(
    config: &FerretConfig,
    index: &Arc<Index>,
    bts: BindToStageConfig,
) -> FerretOutput {
    let output: Arc<Mutex<FerretOutput>> = Arc::new(Mutex::new(Vec::with_capacity(config.queries)));
    let sink = Arc::clone(&output);
    let index = Arc::clone(index);
    let config_cl = config.clone();
    let stages: StageSet<QueryItem> = StageSet::new()
        .parallel({
            let index = Arc::clone(&index);
            let config = config_cl.clone();
            move |item: &mut QueryItem| {
                item.results = rank(&index, &config, &item.image);
            }
        })
        .serial(move |item| {
            sink.lock().unwrap().push(std::mem::take(&mut item.results));
        });
    let pipeline = BindToStagePipeline::new(stages, bts);
    let mut next = 0u64;
    let total = config.queries as u64;
    let config_prod = config.clone();
    pipeline.run(move || {
        if next == total {
            return None;
        }
        let item = QueryItem {
            query_id: next,
            image: load_query(&config_prod, next),
            results: Vec::new(),
        };
        next += 1;
        Some(item)
    });
    let result = std::mem::take(&mut *output.lock().unwrap());
    result
}

/// Construct-and-run (TBB-style) implementation.
pub fn run_construct_and_run(
    config: &FerretConfig,
    index: &Arc<Index>,
    car: ConstructAndRunConfig,
) -> FerretOutput {
    let output: Arc<Mutex<FerretOutput>> = Arc::new(Mutex::new(Vec::with_capacity(config.queries)));
    let sink = Arc::clone(&output);
    let index = Arc::clone(index);
    let config_cl = config.clone();
    let stages: StageSet<QueryItem> = StageSet::new()
        .parallel({
            let index = Arc::clone(&index);
            let config = config_cl.clone();
            move |item: &mut QueryItem| {
                item.results = rank(&index, &config, &item.image);
            }
        })
        .serial(move |item| {
            sink.lock().unwrap().push(std::mem::take(&mut item.results));
        });
    let pipeline = ConstructAndRunPipeline::new(stages, car);
    let mut next = 0u64;
    let total = config.queries as u64;
    let config_prod = config.clone();
    pipeline.run(move || {
        if next == total {
            return None;
        }
        let item = QueryItem {
            query_id: next,
            image: load_query(&config_prod, next),
            results: Vec::new(),
        };
        next += 1;
        Some(item)
    });
    let result = std::mem::take(&mut *output.lock().unwrap());
    result
}

/// Records the weighted pipeline dag of a serial run (node weights in
/// nanoseconds), for replay through the `pipedag` scheduler simulator.
pub fn record_spec(config: &FerretConfig, index: &Index) -> PipelineSpec {
    let mut spec = PipelineSpec::new();
    for i in 0..config.queries as u64 {
        let t0 = Instant::now();
        let image = load_query(config, i);
        let w0 = t0.elapsed().as_nanos() as u64;

        let t1 = Instant::now();
        let results = rank(index, config, &image);
        let w1 = t1.elapsed().as_nanos() as u64;

        let t2 = Instant::now();
        std::hint::black_box(&results);
        let w2 = t2.elapsed().as_nanos() as u64;

        spec.push_iteration(vec![
            NodeSpec::wait(0, w0.max(1)),
            NodeSpec::cont(1, w1.max(1)),
            NodeSpec::wait(2, w2.max(1)),
        ]);
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_same_output(a: &FerretOutput, b: &FerretOutput) {
        assert_eq!(a.len(), b.len());
        for (qa, qb) in a.iter().zip(b.iter()) {
            assert_eq!(qa.len(), qb.len());
            for ((ida, da), (idb, db)) in qa.iter().zip(qb.iter()) {
                assert_eq!(ida, idb);
                assert_eq!(da.to_bits(), db.to_bits());
            }
        }
    }

    #[test]
    fn piper_matches_serial() {
        let config = FerretConfig::tiny();
        let index = build_index(&config);
        let serial = run_serial(&config, &index);
        let pool = ThreadPool::new(4);
        let parallel = run_piper(&config, &index, &pool, PipeOptions::default());
        assert_same_output(&serial, &parallel);
    }

    #[test]
    fn bind_to_stage_matches_serial() {
        let config = FerretConfig::tiny();
        let index = build_index(&config);
        let serial = run_serial(&config, &index);
        let parallel = run_bind_to_stage(
            &config,
            &index,
            BindToStageConfig {
                threads_per_parallel_stage: 3,
                queue_capacity: 8,
            },
        );
        assert_same_output(&serial, &parallel);
    }

    #[test]
    fn construct_and_run_matches_serial() {
        let config = FerretConfig::tiny();
        let index = build_index(&config);
        let serial = run_serial(&config, &index);
        let parallel = run_construct_and_run(
            &config,
            &index,
            ConstructAndRunConfig {
                threads: 3,
                max_tokens: 8,
            },
        );
        assert_same_output(&serial, &parallel);
    }

    #[test]
    fn recorded_spec_is_an_sps_pipeline_dominated_by_stage_one() {
        // A configuration whose ranking stage does substantially more work
        // than loading a query (a larger database with wide probing), so the
        // recorded timings reflect the paper's `r >> 1` regime even on a
        // noisy, time-shared host.
        let config = FerretConfig {
            queries: 10,
            database_size: 256,
            classes: 8,
            image_size: 16,
            probe_factor: 64,
            topk: 5,
        };
        let index = build_index(&config);
        let spec = record_spec(&config, &index);
        assert_eq!(spec.num_iterations(), config.queries);
        // Stage 1 (ranking) is the heaviest stage of the recorded dag.
        let stage_total =
            |idx: usize| -> u64 { spec.iterations.iter().map(|it| it[idx].work).sum() };
        let (stage0, stage1, stage2) = (stage_total(0), stage_total(1), stage_total(2));
        assert!(
            stage1 > stage0 && stage1 > stage2,
            "stage 1 ({stage1}) should dominate stages 0 ({stage0}) and 2 ({stage2})"
        );
        // The dag has substantial parallelism (the point of ferret).
        let analysis = pipedag::analyze_unthrottled(&spec);
        assert!(analysis.parallelism() > 2.0);
    }

    #[test]
    fn queries_find_their_own_class() {
        let config = FerretConfig::tiny();
        let index = build_index(&config);
        let out = run_serial(&config, &index);
        let mut hits = 0usize;
        for (i, results) in out.iter().enumerate() {
            let class = (i as u64 + 1_000_000) % config.classes;
            if results
                .iter()
                .take(3)
                .any(|(id, _)| id % config.classes == class)
            {
                hits += 1;
            }
        }
        assert!(
            hits * 3 >= out.len() * 2,
            "only {hits}/{} queries matched their class",
            out.len()
        );
    }
}
