//! Bytes-in/bytes-out adapters: the serving boundary of the workloads.
//!
//! A network daemon (`crates/piped`) cannot know the concrete input,
//! output and iteration types of each workload — on the wire a job is a
//! workload *name*, an opaque input buffer, and a stream of output bytes.
//! This module is the adapter layer that closes that gap:
//!
//! * [`ByteJob`] — one registry entry per servable workload, pairing a
//!   **serial reference** (`bytes in → bytes out`, the ground truth every
//!   served execution must match byte-for-byte) with a **streaming
//!   launch** (`bytes in + sink → deferred pipeline`) in the
//!   [`crate::PipeLaunch`] shape the `pipeserve` executor admits.
//! * [`ByteSink`] — the output channel handed to the launch constructor.
//!   The pipeline's final serial stage writes each encoded item into it in
//!   iteration order, so output *streams* while the pipeline runs; a sink
//!   that blocks (a bounded per-connection queue) back-pressures the
//!   pipeline through its ordinary serial-stage semantics.
//! * Input codecs — each workload defines how its parameters are read
//!   from the input buffer, with bounds checks so a malicious or confused
//!   client cannot request an absurdly sized job
//!   ([`ByteJobError::InvalidInput`]).
//!
//! The per-workload byte formats live next to their workloads
//! ([`crate::dedup::encode_archive`], [`crate::ferret::encode_ranking_into`],
//! [`crate::x264::encode_frame_record_into`], pipe-fib's raw bit bytes);
//! this module only parses inputs and dispatches.

use crate::{dedup, ferret, pipefib, x264};
use checksum::buf::Chunk;

/// The output channel of a byte job: the pipeline's final serial stage
/// calls it once per finished item, in iteration order, handing over an
/// owned reference-counted [`Chunk`] (so downstream consumers — a
/// per-connection output queue, a response cache — can retain or slice the
/// bytes without copying them). Implementations may block to apply
/// backpressure; the call happens on a pool worker inside a serial stage,
/// so blocking throttles exactly that pipeline.
pub type ByteSink = Box<dyn FnMut(Chunk) + Send>;

/// Why a byte job could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ByteJobError {
    /// No registry entry with the requested name; the payload is the name.
    UnknownWorkload(String),
    /// The input buffer failed the workload's codec or bounds checks.
    InvalidInput(String),
}

impl std::fmt::Display for ByteJobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ByteJobError::UnknownWorkload(name) => write!(f, "unknown workload {name:?}"),
            ByteJobError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for ByteJobError {}

/// One servable workload: a name, a serial reference and a streaming
/// pipeline constructor over the same byte formats.
pub struct ByteJob {
    /// Registry key (the workload name carried in a SUBMIT frame).
    pub name: &'static str,
    /// One-line description of the input and output byte formats.
    pub summary: &'static str,
    /// The serial reference: `bytes in → bytes out`. Every parallel
    /// execution of the same input must produce exactly these bytes.
    pub serial: fn(&[u8]) -> Result<Vec<u8>, ByteJobError>,
    /// Checks the input against the workload's codec and bounds without
    /// building anything. After `validate` passes, `launch` and `serial`
    /// on the same bytes cannot fail — which lets a server validate once
    /// at admission and defer the launch (e.g. into a content-keyed
    /// factory) infallibly.
    pub validate: fn(&[u8]) -> Result<(), ByteJobError>,
    /// The streaming launch: validates the input and returns a deferred
    /// pipeline whose output items are written into `sink` in order.
    pub launch: fn(&[u8], ByteSink) -> Result<crate::PipeLaunch, ByteJobError>,
}

/// Reads a `u32-LE` at `offset` from a fixed-size params buffer.
fn param_u32(input: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes(
        input[offset..offset + 4]
            .try_into()
            .expect("bounds checked"),
    )
}

/// Checks `value` against an inclusive range, naming the field on failure.
fn check_range(field: &str, value: u32, lo: u32, hi: u32) -> Result<usize, ByteJobError> {
    if value < lo || value > hi {
        return Err(ByteJobError::InvalidInput(format!(
            "{field}={value} out of range [{lo}, {hi}]"
        )));
    }
    Ok(value as usize)
}

fn expect_len(name: &str, input: &[u8], len: usize) -> Result<(), ByteJobError> {
    if input.len() != len {
        return Err(ByteJobError::InvalidInput(format!(
            "{name} expects exactly {len} input bytes, got {}",
            input.len()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------- dedup --

/// dedup input: the raw byte stream to deduplicate (any non-empty buffer).
fn dedup_check(input: &[u8]) -> Result<(), ByteJobError> {
    if input.is_empty() {
        return Err(ByteJobError::InvalidInput(
            "dedup input stream must be non-empty".to_string(),
        ));
    }
    Ok(())
}

fn dedup_serial(input: &[u8]) -> Result<Vec<u8>, ByteJobError> {
    dedup_check(input)?;
    Ok(dedup::serial_bytes(input))
}

fn dedup_launch(input: &[u8], sink: ByteSink) -> Result<crate::PipeLaunch, ByteJobError> {
    dedup_check(input)?;
    Ok(dedup::piper_launch_bytes(input, sink))
}

// --------------------------------------------------------------- ferret --

/// ferret input: six `u32-LE` params — queries, database_size, classes,
/// image_size, probe_factor, topk.
fn ferret_config(input: &[u8]) -> Result<ferret::FerretConfig, ByteJobError> {
    expect_len("ferret", input, 24)?;
    Ok(ferret::FerretConfig {
        queries: check_range("queries", param_u32(input, 0), 1, 512)?,
        database_size: check_range("database_size", param_u32(input, 4), 1, 4096)?,
        classes: check_range("classes", param_u32(input, 8), 1, 64)? as u64,
        image_size: check_range("image_size", param_u32(input, 12), 4, 64)?,
        probe_factor: check_range("probe_factor", param_u32(input, 16), 1, 256)?,
        topk: check_range("topk", param_u32(input, 20), 1, 64)?,
    })
}

/// Encodes ferret byte-job params (the inverse of the input codec; used by
/// clients and the load generator).
pub fn ferret_input(config: &ferret::FerretConfig) -> Vec<u8> {
    let mut out = Vec::with_capacity(24);
    for v in [
        config.queries as u32,
        config.database_size as u32,
        config.classes as u32,
        config.image_size as u32,
        config.probe_factor as u32,
        config.topk as u32,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn ferret_check(input: &[u8]) -> Result<(), ByteJobError> {
    ferret_config(input).map(|_| ())
}

fn ferret_serial(input: &[u8]) -> Result<Vec<u8>, ByteJobError> {
    Ok(ferret::serial_bytes(&ferret_config(input)?))
}

fn ferret_launch(input: &[u8], sink: ByteSink) -> Result<crate::PipeLaunch, ByteJobError> {
    Ok(ferret::piper_launch_bytes(&ferret_config(input)?, sink))
}

// ----------------------------------------------------------------- x264 --

/// x264 input: five `u32-LE` params — frames, width, height, gop, bframes.
fn x264_config(input: &[u8]) -> Result<x264::X264Config, ByteJobError> {
    expect_len("x264", input, 20)?;
    Ok(x264::X264Config {
        frames: check_range("frames", param_u32(input, 0), 1, 256)? as u64,
        width: check_range("width", param_u32(input, 4), 16, 256)?,
        height: check_range("height", param_u32(input, 8), 16, 256)?,
        gop: check_range("gop", param_u32(input, 12), 1, 64)? as u64,
        bframes: check_range("bframes", param_u32(input, 16), 0, 8)? as u64,
        encode: videosim::EncodeConfig::default(),
    })
}

/// Encodes x264 byte-job params (the inverse of the input codec).
pub fn x264_input(config: &x264::X264Config) -> Vec<u8> {
    let mut out = Vec::with_capacity(20);
    for v in [
        config.frames as u32,
        config.width as u32,
        config.height as u32,
        config.gop as u32,
        config.bframes as u32,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn x264_check(input: &[u8]) -> Result<(), ByteJobError> {
    x264_config(input).map(|_| ())
}

fn x264_serial(input: &[u8]) -> Result<Vec<u8>, ByteJobError> {
    Ok(x264::serial_bytes(&x264_config(input)?))
}

fn x264_launch(input: &[u8], sink: ByteSink) -> Result<crate::PipeLaunch, ByteJobError> {
    Ok(x264::piper_launch_bytes(&x264_config(input)?, sink))
}

// -------------------------------------------------------------- pipefib --

/// pipe-fib input: two `u32-LE` params — `n` and `block_bits`.
fn pipefib_config(input: &[u8]) -> Result<pipefib::PipeFibConfig, ByteJobError> {
    expect_len("pipefib", input, 8)?;
    Ok(pipefib::PipeFibConfig {
        n: check_range("n", param_u32(input, 0), 3, 5_000)?,
        block_bits: check_range("block_bits", param_u32(input, 4), 1, 512)?,
    })
}

/// Encodes pipe-fib byte-job params (the inverse of the input codec).
pub fn pipefib_input(config: &pipefib::PipeFibConfig) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    out.extend_from_slice(&(config.n as u32).to_le_bytes());
    out.extend_from_slice(&(config.block_bits as u32).to_le_bytes());
    out
}

fn pipefib_check(input: &[u8]) -> Result<(), ByteJobError> {
    pipefib_config(input).map(|_| ())
}

fn pipefib_serial(input: &[u8]) -> Result<Vec<u8>, ByteJobError> {
    Ok(pipefib::serial_bytes(&pipefib_config(input)?))
}

fn pipefib_launch(input: &[u8], sink: ByteSink) -> Result<crate::PipeLaunch, ByteJobError> {
    Ok(pipefib::piper_launch_bytes(&pipefib_config(input)?, sink))
}

// ------------------------------------------------------------- registry --

/// Every servable workload, in the order the paper's tables list them.
pub const REGISTRY: [ByteJob; 4] = [
    ByteJob {
        name: "dedup",
        summary: "raw stream in; tagged archive records (unique/duplicate) out",
        serial: dedup_serial,
        validate: dedup_check,
        launch: dedup_launch,
    },
    ByteJob {
        name: "ferret",
        summary: "6×u32 params in; per-query ranked (id, distance-bits) lists out",
        serial: ferret_serial,
        validate: ferret_check,
        launch: ferret_launch,
    },
    ByteJob {
        name: "x264",
        summary: "5×u32 params in; per-frame encode records out",
        serial: x264_serial,
        validate: x264_check,
        launch: x264_launch,
    },
    ByteJob {
        name: "pipefib",
        summary: "u32 n + u32 block_bits in; bits of F_n (LSB first) out",
        serial: pipefib_serial,
        validate: pipefib_check,
        launch: pipefib_launch,
    },
];

/// Looks a workload up by name.
pub fn lookup(name: &str) -> Result<&'static ByteJob, ByteJobError> {
    REGISTRY
        .iter()
        .find(|job| job.name == name)
        .ok_or_else(|| ByteJobError::UnknownWorkload(name.to_string()))
}

/// The registered workload names, in registry order.
pub fn names() -> Vec<&'static str> {
    REGISTRY.iter().map(|job| job.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A sink that appends into a shared buffer.
    fn collecting_sink() -> (ByteSink, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink_buf = Arc::clone(&buf);
        (
            Box::new(move |chunk: Chunk| sink_buf.lock().unwrap().extend_from_slice(&chunk)),
            buf,
        )
    }

    /// Canonical small inputs per workload, shared with the piped tests via
    /// re-derivation (the codecs are the public contract).
    fn small_input(name: &str) -> Vec<u8> {
        match name {
            "dedup" => crate::dedup::DedupConfig::tiny().generate_input(),
            "ferret" => ferret_input(&crate::ferret::FerretConfig::tiny()),
            "x264" => x264_input(&crate::x264::X264Config::tiny()),
            "pipefib" => pipefib_input(&crate::pipefib::PipeFibConfig::tiny()),
            other => panic!("no small input for {other}"),
        }
    }

    #[test]
    fn every_registered_workload_streams_bytes_identical_to_its_serial_reference() {
        let pool = piper::ThreadPool::new(4);
        for job in &REGISTRY {
            let input = small_input(job.name);
            (job.validate)(&input).expect("canonical input validates");
            let expected = (job.serial)(&input).expect("serial reference");
            assert!(!expected.is_empty(), "{}: empty reference", job.name);
            let (sink, buf) = collecting_sink();
            let launch = (job.launch)(&input, sink).expect("launch constructor");
            let handle = launch(&pool, piper::PipeOptions::with_throttle(4));
            handle.join().expect("pipeline completes");
            assert_eq!(
                *buf.lock().unwrap(),
                expected,
                "{}: streamed bytes differ from serial reference",
                job.name
            );
        }
    }

    #[test]
    fn unknown_workload_and_invalid_inputs_are_rejected() {
        assert!(matches!(
            lookup("no-such-workload"),
            Err(ByteJobError::UnknownWorkload(_))
        ));
        let ferret = lookup("ferret").unwrap();
        assert!(matches!(
            (ferret.serial)(&[0u8; 3]),
            Err(ByteJobError::InvalidInput(_))
        ));
        // validate agrees with the codecs: what serial rejects, it rejects.
        assert!(matches!(
            (ferret.validate)(&[0u8; 3]),
            Err(ByteJobError::InvalidInput(_))
        ));
        // Out-of-range param: 0 queries.
        let mut params = ferret_input(&crate::ferret::FerretConfig::tiny());
        params[0..4].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            (ferret.serial)(&params),
            Err(ByteJobError::InvalidInput(_))
        ));
        let dedup = lookup("dedup").unwrap();
        assert!(matches!(
            (dedup.serial)(&[]),
            Err(ByteJobError::InvalidInput(_))
        ));
        let (sink, _buf) = collecting_sink();
        let pipefib = lookup("pipefib").unwrap();
        assert!(matches!(
            (pipefib.launch)(&[1, 2, 3], sink),
            Err(ByteJobError::InvalidInput(_))
        ));
    }

    #[test]
    fn input_codecs_roundtrip_through_their_configs() {
        let config = crate::ferret::FerretConfig::tiny();
        let parsed = super::ferret_config(&ferret_input(&config)).unwrap();
        assert_eq!(parsed.queries, config.queries);
        assert_eq!(parsed.topk, config.topk);
        let config = crate::pipefib::PipeFibConfig::coarsened(300);
        let parsed = super::pipefib_config(&pipefib_input(&config)).unwrap();
        assert_eq!(parsed.n, config.n);
        assert_eq!(parsed.block_bits, config.block_bits);
    }
}
