//! A six-stage ferret pipeline matching PARSEC's real stage structure.
//!
//! The paper models ferret as the three-stage SPS pipeline of Figure 1, but
//! the actual PARSEC benchmark runs each query through six stages:
//! *load → segment → extract → vector (index probe) → rank → out*, with the
//! four middle stages parallel. This module implements that deeper
//! "SPPPPS" pipeline on top of the `imagesim` substrate (segmentation and
//! Earth-Mover's-Distance ranking included), both as a serial reference and
//! as an on-the-fly `pipe_while` program whose iterations walk through the
//! stages with `pipe_continue` and finish with a `pipe_wait` output stage.
//!
//! Besides being a more faithful ferret, the deeper pipeline exercises a
//! part of the design space the three-stage version does not: several
//! consecutive parallel stages inside one iteration, which PIPER executes
//! back-to-back on the same worker unless a steal intervenes.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use imagesim::emd::{emd, Signature};
use imagesim::segment::{segment, Segmentation};
use imagesim::{features, Features, Image, Index};
use pipedag::{NodeSpec, PipelineSpec};
use piper::{NodeOutcome, PipeOptions, PipeStats, PipelineIteration, Stage0, ThreadPool};

/// Configuration of the deep ferret pipeline.
#[derive(Debug, Clone)]
pub struct DeepFerretConfig {
    /// Number of query images (pipeline iterations).
    pub queries: usize,
    /// Number of images in the database.
    pub database_size: usize,
    /// Number of latent image classes in the synthetic data.
    pub classes: u64,
    /// Image side length in pixels.
    pub image_size: usize,
    /// Maximum number of regions produced by segmentation.
    pub regions: usize,
    /// Number of candidates retrieved by the index probe (stage "vector").
    pub candidates: usize,
    /// Index probe width (extra buckets probed).
    pub probe_factor: usize,
    /// Top-k results kept after EMD re-ranking.
    pub topk: usize,
}

impl Default for DeepFerretConfig {
    fn default() -> Self {
        DeepFerretConfig {
            queries: 96,
            database_size: 192,
            classes: 12,
            image_size: 32,
            regions: 4,
            candidates: 24,
            probe_factor: 32,
            topk: 8,
        }
    }
}

impl DeepFerretConfig {
    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        DeepFerretConfig {
            queries: 16,
            database_size: 48,
            classes: 6,
            image_size: 16,
            regions: 3,
            candidates: 10,
            probe_factor: 8,
            topk: 4,
        }
    }
}

/// The pre-built database: the bucketed feature index plus the per-image
/// region signatures used for EMD re-ranking.
pub struct DeepIndex {
    /// Coarse feature index used by the "vector" stage.
    pub index: Index,
    /// EMD signatures of every database image, indexed by image id.
    pub signatures: Vec<Signature>,
}

/// Builds the database (outside the timed pipeline, as in PARSEC).
pub fn build_index(config: &DeepFerretConfig) -> Arc<DeepIndex> {
    let index = Index::build_synthetic(
        config.database_size,
        config.classes,
        config.image_size,
        config.image_size,
    );
    let signatures = (0..config.database_size as u64)
        .map(|id| {
            let image = Image::synthetic(id, config.classes, config.image_size, config.image_size);
            Signature::from_regions(&segment(&image, config.regions).regions)
        })
        .collect();
    Arc::new(DeepIndex { index, signatures })
}

/// The output: for each query (in order), the EMD-ranked `(image id,
/// distance)` list.
pub type DeepFerretOutput = Vec<Vec<(u64, f32)>>;

fn load_query(config: &DeepFerretConfig, i: u64) -> Image {
    Image::synthetic(
        i + 2_000_000,
        config.classes,
        config.image_size,
        config.image_size,
    )
}

fn probe(index: &DeepIndex, config: &DeepFerretConfig, feats: &Features) -> Vec<u64> {
    index
        .index
        .query(feats, config.candidates, config.probe_factor)
        .into_iter()
        .map(|(id, _)| id)
        .collect()
}

fn rerank(
    index: &DeepIndex,
    config: &DeepFerretConfig,
    signature: &Signature,
    candidates: &[u64],
) -> Vec<(u64, f32)> {
    let mut scored: Vec<(u64, f32)> = candidates
        .iter()
        .map(|&id| (id, emd(signature, &index.signatures[id as usize])))
        .collect();
    scored.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    scored.truncate(config.topk);
    scored
}

/// Serial reference implementation (the stage functions are shared with the
/// pipelined version, so outputs are bit-identical).
pub fn run_serial(config: &DeepFerretConfig, index: &DeepIndex) -> DeepFerretOutput {
    let mut out = Vec::with_capacity(config.queries);
    for i in 0..config.queries as u64 {
        let image = load_query(config, i);
        let segmentation = segment(&image, config.regions);
        let feats = features(&image);
        let signature = Signature::from_regions(&segmentation.regions);
        let candidates = probe(index, config, &feats);
        out.push(rerank(index, config, &signature, &candidates));
    }
    out
}

/// Stage numbers of the deep pipeline (Stage 0 = load, in the producer).
const SEGMENT: u64 = 1;
const EXTRACT: u64 = 2;
const VECTOR: u64 = 3;
const RANK: u64 = 4;
const OUT: u64 = 5;

struct DeepQuery {
    query_id: u64,
    image: Image,
    segmentation: Option<Segmentation>,
    feats: Features,
    signature: Signature,
    candidates: Vec<u64>,
    results: Vec<(u64, f32)>,
    config: DeepFerretConfig,
    index: Arc<DeepIndex>,
    output: Arc<Mutex<DeepFerretOutput>>,
}

impl PipelineIteration for DeepQuery {
    fn run_node(&mut self, stage: u64) -> NodeOutcome {
        match stage {
            SEGMENT => {
                self.segmentation = Some(segment(&self.image, self.config.regions));
                NodeOutcome::ContinueTo(EXTRACT)
            }
            EXTRACT => {
                self.feats = features(&self.image);
                let segmentation = self.segmentation.as_ref().expect("segment stage ran");
                self.signature = Signature::from_regions(&segmentation.regions);
                NodeOutcome::ContinueTo(VECTOR)
            }
            VECTOR => {
                self.candidates = probe(&self.index, &self.config, &self.feats);
                NodeOutcome::ContinueTo(RANK)
            }
            RANK => {
                self.results = rerank(&self.index, &self.config, &self.signature, &self.candidates);
                NodeOutcome::WaitFor(OUT)
            }
            OUT => {
                let mut out = self.output.lock().unwrap();
                debug_assert_eq!(out.len() as u64, self.query_id);
                out.push(std::mem::take(&mut self.results));
                NodeOutcome::Done
            }
            other => unreachable!("unexpected stage {other}"),
        }
    }
}

/// PIPER (`pipe_while`) implementation of the six-stage pipeline. Returns
/// the ranked output plus the pipeline statistics.
pub fn run_piper(
    config: &DeepFerretConfig,
    index: &Arc<DeepIndex>,
    pool: &ThreadPool,
    options: PipeOptions,
) -> (DeepFerretOutput, PipeStats) {
    let output: Arc<Mutex<DeepFerretOutput>> =
        Arc::new(Mutex::new(Vec::with_capacity(config.queries)));
    let sink = Arc::clone(&output);
    let index = Arc::clone(index);
    let config_cl = config.clone();
    let total = config.queries as u64;

    let stats = pool.pipe_while(options, move |i| {
        if i >= total {
            return Stage0::Stop;
        }
        let image = load_query(&config_cl, i);
        Stage0::proceed(DeepQuery {
            query_id: i,
            image,
            segmentation: None,
            feats: Vec::new(),
            signature: Signature::default(),
            candidates: Vec::new(),
            results: Vec::new(),
            config: config_cl.clone(),
            index: Arc::clone(&index),
            output: Arc::clone(&sink),
        })
    });

    let out = std::mem::take(&mut *output.lock().unwrap());
    (out, stats)
}

/// Records the weighted six-stage dag of a serial run (node weights in
/// nanoseconds) for the scheduler simulator.
pub fn record_spec(config: &DeepFerretConfig, index: &DeepIndex) -> PipelineSpec {
    let mut spec = PipelineSpec::new();
    for i in 0..config.queries as u64 {
        let t = Instant::now();
        let image = load_query(config, i);
        let w_load = t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        let segmentation = segment(&image, config.regions);
        let w_segment = t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        let feats = features(&image);
        let signature = Signature::from_regions(&segmentation.regions);
        let w_extract = t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        let candidates = probe(index, config, &feats);
        let w_vector = t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        let results = rerank(index, config, &signature, &candidates);
        let w_rank = t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        std::hint::black_box(&results);
        let w_out = t.elapsed().as_nanos() as u64;

        spec.push_iteration(vec![
            NodeSpec::wait(0, w_load.max(1)),
            NodeSpec::cont(SEGMENT, w_segment.max(1)),
            NodeSpec::cont(EXTRACT, w_extract.max(1)),
            NodeSpec::cont(VECTOR, w_vector.max(1)),
            NodeSpec::cont(RANK, w_rank.max(1)),
            NodeSpec::wait(OUT, w_out.max(1)),
        ]);
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_same_output(a: &DeepFerretOutput, b: &DeepFerretOutput) {
        assert_eq!(a.len(), b.len());
        for (qa, qb) in a.iter().zip(b.iter()) {
            assert_eq!(qa.len(), qb.len());
            for ((ida, da), (idb, db)) in qa.iter().zip(qb.iter()) {
                assert_eq!(ida, idb);
                assert_eq!(da.to_bits(), db.to_bits());
            }
        }
    }

    #[test]
    fn piper_matches_serial_across_pool_sizes() {
        let config = DeepFerretConfig::tiny();
        let index = build_index(&config);
        let serial = run_serial(&config, &index);
        for workers in [1usize, 3] {
            let pool = ThreadPool::new(workers);
            let (out, stats) = run_piper(&config, &index, &pool, PipeOptions::default());
            assert_same_output(&serial, &out);
            assert_eq!(stats.iterations, config.queries as u64);
            // Five nodes per iteration beyond Stage 0.
            assert_eq!(stats.nodes, 5 * config.queries as u64);
        }
    }

    #[test]
    fn piper_matches_serial_under_tight_throttle() {
        let config = DeepFerretConfig::tiny();
        let index = build_index(&config);
        let serial = run_serial(&config, &index);
        let pool = ThreadPool::new(4);
        let (out, stats) = run_piper(&config, &index, &pool, PipeOptions::with_throttle(2));
        assert_same_output(&serial, &out);
        assert!(stats.peak_active_iterations <= 2);
    }

    #[test]
    fn output_is_sorted_by_distance_and_bounded_by_topk() {
        let config = DeepFerretConfig::tiny();
        let index = build_index(&config);
        let out = run_serial(&config, &index);
        assert_eq!(out.len(), config.queries);
        for results in &out {
            assert!(results.len() <= config.topk);
            for pair in results.windows(2) {
                assert!(pair[0].1 <= pair[1].1);
            }
            for &(id, _) in results {
                assert!((id as usize) < config.database_size);
            }
        }
    }

    #[test]
    fn recorded_spec_has_six_stages_and_parallel_middle() {
        let config = DeepFerretConfig::tiny();
        let index = build_index(&config);
        let spec = record_spec(&config, &index);
        assert_eq!(spec.num_iterations(), config.queries);
        assert_eq!(spec.num_nodes(), 6 * config.queries);
        assert_eq!(pipedag::signature(&spec), "SPPPPS");
        let analysis = pipedag::analyze_unthrottled(&spec);
        assert!(analysis.parallelism() > 1.5);
    }
}
