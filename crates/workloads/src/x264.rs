//! The x264 workload: an on-the-fly pipeline that construct-and-run models
//! cannot express (paper, Section 3 and Figure 2).
//!
//! Each pipeline iteration encodes one I- or P-frame (plus the B-frames
//! buffered before it):
//!
//! * Stage 0 (serial producer) reads frames, decides their type, buffers
//!   B-frames until the next I/P frame.
//! * Iteration `i` enters its first row stage with
//!   `pipe_wait(1 + w·i)` — the stage-skipping offset that encodes the
//!   motion-vector window `w` (Figure 2, line 17).
//! * Each macroblock row is a node; after encoding row `x`, a P-frame
//!   iteration issues `pipe_wait` (cross edge on the previous frame's row
//!   `x + w`), an I-frame iteration issues `pipe_continue` — the
//!   data-dependent dependency of lines 20–24.
//! * The `PROCESS_BFRAMES` stage encodes the buffered B-frames with nested
//!   fork-join parallelism (the `cilk_for` of line 27).
//! * The serial `END` stage appends the frame records to the output stream
//!   in order.
//!
//! The reconstructed rows of each reference frame are published row by row
//! through a shared [`RowStore`]; a P-frame row *reads* its predecessor's
//! rows, so any violation of the cross-edge discipline would be caught
//! immediately (the row would be missing), making this workload a built-in
//! stress test of the PIPER cross-edge protocol.

use std::sync::{Arc, Mutex};

use pipedag::PipelineSpec;
use piper::{NodeOutcome, PipeOptions, PipelineIteration, Stage0, ThreadPool};
use videosim::{
    encode_bframe, encode_row, EncodeConfig, Frame, FrameType, RowContext, VideoSource,
};

/// Symbolic stage numbers, as in Figure 2 of the paper.
const PROCESS_IPFRAME: u64 = 1;
const PROCESS_BFRAMES: u64 = 1 << 40;
const END: u64 = PROCESS_BFRAMES + 1;

/// Configuration of the x264 workload.
#[derive(Debug, Clone)]
pub struct X264Config {
    /// Total number of frames in the synthetic video.
    pub frames: u64,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// GOP length: every `gop`-th I/P slot is an I-frame.
    pub gop: u64,
    /// Number of B-frames between I/P frames.
    pub bframes: u64,
    /// Encoder settings (`mv_row_window` is the paper's `w`).
    pub encode: EncodeConfig,
}

impl Default for X264Config {
    fn default() -> Self {
        X264Config {
            frames: 64,
            width: 128,
            height: 96,
            gop: 4,
            bframes: 1,
            encode: EncodeConfig::default(),
        }
    }
}

impl X264Config {
    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        X264Config {
            frames: 14,
            width: 48,
            height: 48,
            gop: 3,
            bframes: 1,
            encode: EncodeConfig::default(),
        }
    }

    fn source(&self) -> VideoSource {
        VideoSource::new(self.frames, self.width, self.height, self.gop, self.bframes)
    }
}

/// Encoded output for one pipeline iteration (one I/P frame and its
/// buffered B-frames).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameRecord {
    /// Display index of the I/P frame.
    pub frame_index: u64,
    /// Whether the reference frame was an I- or P-frame.
    pub is_iframe: bool,
    /// Total encoded payload bytes of the reference frame's rows.
    pub payload_bytes: usize,
    /// Total quantisation distortion of the reference frame's rows.
    pub distortion: u64,
    /// `(display index, payload bytes, distortion)` per buffered B-frame.
    pub bframes: Vec<(u64, usize, u64)>,
}

/// The output stream: one record per I/P frame, in encode order.
pub type X264Output = Vec<FrameRecord>;

/// Published reconstructed rows of a reference frame.
type RowStore = Vec<Mutex<Option<Vec<u8>>>>;

fn new_row_store(rows: usize) -> Arc<RowStore> {
    Arc::new((0..rows).map(|_| Mutex::new(None)).collect())
}

fn encode_reference_row(
    frame: &Frame,
    row: usize,
    prev_rows: Option<&RowStore>,
    config: &EncodeConfig,
) -> (usize, u64) {
    let context = match (frame.frame_type, prev_rows) {
        (FrameType::P, Some(prev)) => {
            let lo = row.saturating_sub(config.mv_row_window);
            let hi = (row + config.mv_row_window).min(prev.len() - 1);
            let mut ctx = RowContext::default();
            for (r, slot) in prev.iter().enumerate().take(hi + 1).skip(lo) {
                let pixels = slot
                    .lock()
                    .unwrap()
                    .clone()
                    .expect("cross edge guarantees the reference row was published");
                ctx.reference_rows.push((r, pixels));
            }
            ctx
        }
        _ => RowContext::default(),
    };
    let encoded = encode_row(frame, row, &context, config);
    (encoded.payload.len(), encoded.distortion)
}

/// Serial reference implementation: the same traversal the pipeline
/// performs, executed iteration by iteration.
pub fn run_serial(config: &X264Config) -> X264Output {
    let mut source = config.source();
    let mut output = Vec::new();
    let mut prev_reference: Option<Frame> = None;

    loop {
        // Stage 0: gather B-frames until the next I/P frame.
        let mut bframes = Vec::new();
        let reference = loop {
            match source.next_frame() {
                None => break None,
                Some(f) if f.frame_type == FrameType::B => bframes.push(f),
                Some(f) => break Some(f),
            }
        };
        let Some(reference) = reference else { break };

        // Row stages.
        let prev_store = prev_reference.as_ref().map(|f: &Frame| {
            let store = new_row_store(f.rows());
            for r in 0..f.rows() {
                *store[r].lock().unwrap() = Some(f.row_pixels(r).to_vec());
            }
            store
        });
        let mut payload_bytes = 0usize;
        let mut distortion = 0u64;
        for row in 0..reference.rows() {
            let (bytes, dist) =
                encode_reference_row(&reference, row, prev_store.as_deref(), &config.encode);
            payload_bytes += bytes;
            distortion += dist;
        }

        // B-frame stage.
        let bframe_records: Vec<(u64, usize, u64)> = bframes
            .iter()
            .map(|b| {
                let (bytes, dist) = encode_bframe(b, &reference, &config.encode);
                (b.index, bytes, dist)
            })
            .collect();

        // Output stage.
        output.push(FrameRecord {
            frame_index: reference.index,
            is_iframe: reference.frame_type == FrameType::I,
            payload_bytes,
            distortion,
            bframes: bframe_records,
        });
        prev_reference = Some(reference);
    }
    output
}

/// The per-iteration state of the PIPER implementation.
struct X264Iteration {
    reference: Frame,
    bframes: Vec<Frame>,
    prev_rows: Option<Arc<RowStore>>,
    my_rows: Arc<RowStore>,
    encode: EncodeConfig,
    /// Stage offset of this iteration (`w · i`).
    skip: u64,
    payload_bytes: usize,
    distortion: u64,
    bframe_records: Vec<(u64, usize, u64)>,
    emit: Arc<EmitFn>,
}

/// The pluggable serial output stage: receives each [`FrameRecord`] in
/// encode order. In-memory runs push into a shared `Vec`; the byte-job
/// adapter encodes and streams into a network sink.
type EmitFn = dyn Fn(FrameRecord) + Send + Sync;

impl PipelineIteration for X264Iteration {
    fn run_node(&mut self, stage: u64) -> NodeOutcome {
        if stage >= END {
            // Final serial stage: emit the frame record in order.
            (self.emit)(FrameRecord {
                frame_index: self.reference.index,
                is_iframe: self.reference.frame_type == FrameType::I,
                payload_bytes: self.payload_bytes,
                distortion: self.distortion,
                bframes: std::mem::take(&mut self.bframe_records),
            });
            return NodeOutcome::Done;
        }
        if stage >= PROCESS_BFRAMES {
            // Encode buffered B-frames with nested fork-join parallelism
            // (the cilk_for of Figure 2, line 27).
            let reference = &self.reference;
            let encode = &self.encode;
            let records: Mutex<Vec<(u64, usize, u64)>> = Mutex::new(Vec::new());
            piper::scope(|s| {
                for b in &self.bframes {
                    let records = &records;
                    s.spawn(move |_| {
                        let (bytes, dist) = encode_bframe(b, reference, encode);
                        records.lock().unwrap().push((b.index, bytes, dist));
                    });
                }
            });
            let mut recs = records.into_inner().unwrap();
            recs.sort_unstable_by_key(|(idx, _, _)| *idx);
            self.bframe_records = recs;
            return NodeOutcome::WaitFor(END);
        }

        // A row stage: stage = PROCESS_IPFRAME + skip + row.
        let row = (stage - PROCESS_IPFRAME - self.skip) as usize;
        let (bytes, dist) = encode_reference_row(
            &self.reference,
            row,
            self.prev_rows.as_deref(),
            &self.encode,
        );
        self.payload_bytes += bytes;
        self.distortion += dist;
        // Publish the reconstructed row for the next iteration.
        *self.my_rows[row].lock().unwrap() = Some(self.reference.row_pixels(row).to_vec());

        if row + 1 == self.reference.rows() {
            NodeOutcome::ContinueTo(PROCESS_BFRAMES)
        } else if self.reference.frame_type == FrameType::I {
            // I-frame rows depend only on their own frame: pipe_continue.
            NodeOutcome::ContinueTo(stage + 1)
        } else {
            // P-frame rows wait for the previous frame's row x + w.
            NodeOutcome::WaitFor(stage + 1)
        }
    }
}

/// Builds the Stage-0 producer of the on-the-fly x264 pipeline (shared
/// between the blocking [`run_piper`] and the deferred [`piper_launch`]).
fn make_pipe_producer(
    config: &X264Config,
    emit: Arc<EmitFn>,
) -> impl FnMut(u64) -> Stage0<X264Iteration> + Send + 'static {
    let mut source = config.source();
    let encode = config.encode;
    let w = config.encode.mv_row_window as u64;
    let mut prev_rows: Option<Arc<RowStore>> = None;

    move |i| {
        // Stage 0: read frames, buffer B-frames, find the next I/P frame.
        let mut bframes = Vec::new();
        let reference = loop {
            match source.next_frame() {
                None => break None,
                Some(f) if f.frame_type == FrameType::B => bframes.push(f),
                Some(f) => break Some(f),
            }
        };
        let Some(reference) = reference else {
            return Stage0::Stop;
        };
        let my_rows = new_row_store(reference.rows());
        let state = X264Iteration {
            prev_rows: prev_rows.take(),
            my_rows: Arc::clone(&my_rows),
            reference,
            bframes,
            encode,
            skip: w * i,
            payload_bytes: 0,
            distortion: 0,
            bframe_records: Vec::new(),
            emit: Arc::clone(&emit),
        };
        prev_rows = Some(my_rows);
        // pipe_wait(PROCESS_IPFRAME + w·i): enter the first row stage with a
        // cross edge, skipping w·i stages (Figure 2, line 17).
        Stage0::into_stage(state, PROCESS_IPFRAME + w * i, true)
    }
}

/// Wraps a shared output vector as the pipeline's emit stage.
fn vec_emit(output: &Arc<Mutex<X264Output>>) -> Arc<EmitFn> {
    let sink = Arc::clone(output);
    Arc::new(move |record| sink.lock().unwrap().push(record))
}

/// PIPER (`pipe_while`) implementation of the on-the-fly x264 pipeline.
pub fn run_piper(config: &X264Config, pool: &ThreadPool, options: PipeOptions) -> X264Output {
    let output: Arc<Mutex<X264Output>> = Arc::new(Mutex::new(Vec::new()));
    pool.pipe_while(options, make_pipe_producer(config, vec_emit(&output)));
    let result = std::mem::take(&mut *output.lock().unwrap());
    result
}

/// Deferred detached launch of the PIPER x264 pipeline, in the shape the
/// `pipeserve` executor accepts as a job. The returned sink holds the
/// encoded output once the job's pipeline has completed.
pub fn piper_launch(config: &X264Config) -> (crate::PipeLaunch, Arc<Mutex<X264Output>>) {
    let output: Arc<Mutex<X264Output>> = Arc::new(Mutex::new(Vec::new()));
    let emit = vec_emit(&output);
    let config = config.clone();
    let launch: crate::PipeLaunch = Box::new(move |pool, options| {
        piper::spawn_pipe(pool, options, make_pipe_producer(&config, emit))
    });
    (launch, output)
}

/// Encodes one [`FrameRecord`] for the byte-job output stream: `u64-LE`
/// frame index, an I/P tag byte, `u32-LE` payload bytes, `u64-LE`
/// distortion, then `u32-LE` B-frame count and per B-frame
/// `u64-LE index + u32-LE bytes + u64-LE distortion`.
pub fn encode_frame_record_into(record: &FrameRecord, out: &mut Vec<u8>) {
    out.extend_from_slice(&record.frame_index.to_le_bytes());
    out.push(record.is_iframe as u8);
    out.extend_from_slice(&(record.payload_bytes as u32).to_le_bytes());
    out.extend_from_slice(&record.distortion.to_le_bytes());
    out.extend_from_slice(&(record.bframes.len() as u32).to_le_bytes());
    for (index, bytes, distortion) in &record.bframes {
        out.extend_from_slice(&index.to_le_bytes());
        out.extend_from_slice(&(*bytes as u32).to_le_bytes());
        out.extend_from_slice(&distortion.to_le_bytes());
    }
}

/// Serial reference of the byte job: the concatenated
/// [`encode_frame_record_into`] of every frame record, in encode order.
pub fn serial_bytes(config: &X264Config) -> Vec<u8> {
    let mut out = Vec::new();
    for record in run_serial(config) {
        encode_frame_record_into(&record, &mut out);
    }
    out
}

/// Deferred launch of the x264 pipeline in bytes-in/bytes-out shape: the
/// final serial stage encodes each frame record and hands it to `sink` in
/// encode order.
pub fn piper_launch_bytes(config: &X264Config, sink: crate::bytes::ByteSink) -> crate::PipeLaunch {
    let sink = Mutex::new(sink);
    let emit: Arc<EmitFn> = Arc::new(move |record| {
        let mut buf = Vec::new();
        encode_frame_record_into(&record, &mut buf);
        (sink.lock().unwrap())(checksum::buf::Chunk::from_vec(buf));
    });
    let config = config.clone();
    Box::new(move |pool, options| {
        piper::spawn_pipe(pool, options, make_pipe_producer(&config, emit))
    })
}

/// Builds the weighted pipeline dag of this configuration (per-row encode
/// cost measured from a serial run is approximated by a constant here; the
/// dag's *structure* — stage skipping, I/P-dependent cross edges — is what
/// drives the Figure 8 simulation).
pub fn build_spec(
    config: &X264Config,
    row_work: u64,
    bframe_work: u64,
    out_work: u64,
) -> PipelineSpec {
    let rows = (config.height - config.height % 16) / 16;
    let ip_iterations = {
        // Count I/P frames the source will produce.
        let mut source = config.source();
        let mut count = 0usize;
        while let Some(f) = source.next_frame() {
            if f.frame_type != FrameType::B {
                count += 1;
            }
        }
        count
    };
    pipedag::generators::x264_dag(
        ip_iterations,
        rows,
        row_work,
        config.encode.mv_row_window as u64,
        config.gop as usize,
        config.bframes as usize,
        bframe_work,
        out_work,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_produces_one_record_per_reference_frame() {
        let config = X264Config::tiny();
        let out = run_serial(&config);
        // With bframes=1, half the frames (rounded up) are I/P frames.
        assert_eq!(out.len() as u64, config.frames.div_ceil(2));
        assert!(out.iter().all(|r| r.payload_bytes > 0));
        assert!(out[0].is_iframe, "stream starts with an I-frame");
        // Each non-final record buffers one B-frame.
        assert!(out.iter().skip(1).any(|r| !r.bframes.is_empty()));
    }

    #[test]
    fn piper_matches_serial_exactly() {
        let config = X264Config::tiny();
        let serial = run_serial(&config);
        let pool = ThreadPool::new(4);
        let parallel = run_piper(&config, &pool, PipeOptions::with_throttle(8));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn piper_matches_serial_with_wider_motion_window() {
        let mut config = X264Config::tiny();
        config.encode.mv_row_window = 2;
        let serial = run_serial(&config);
        let pool = ThreadPool::new(3);
        let parallel = run_piper(&config, &pool, PipeOptions::default());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn piper_matches_serial_single_worker() {
        let config = X264Config::tiny();
        let serial = run_serial(&config);
        let pool = ThreadPool::new(1);
        let parallel = run_piper(&config, &pool, PipeOptions::with_throttle(4));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn coarser_quantisation_trades_bits_for_distortion() {
        // The encoder substrate must expose a real rate/distortion trade-off:
        // a coarser quantiser yields a smaller payload and a larger
        // distortion across the whole stream. (Whether synthetic I-frames
        // cost more bits than P-frames depends on the content's intra
        // predictability, so the rate/distortion law is the robust check.)
        let mut fine_cfg = X264Config::tiny();
        fine_cfg.encode.quant = 2;
        let mut coarse_cfg = X264Config::tiny();
        coarse_cfg.encode.quant = 32;
        let fine = run_serial(&fine_cfg);
        let coarse = run_serial(&coarse_cfg);
        let bytes = |out: &X264Output| out.iter().map(|r| r.payload_bytes).sum::<usize>();
        let distortion = |out: &X264Output| out.iter().map(|r| r.distortion).sum::<u64>();
        assert!(
            bytes(&coarse) < bytes(&fine),
            "coarse quantisation ({}) should use fewer bytes than fine ({})",
            bytes(&coarse),
            bytes(&fine)
        );
        assert!(
            distortion(&coarse) > distortion(&fine),
            "coarse quantisation ({}) should distort more than fine ({})",
            distortion(&coarse),
            distortion(&fine)
        );
    }

    #[test]
    fn spec_has_parallelism_and_stage_skipping() {
        let config = X264Config::tiny();
        let spec = build_spec(&config, 10, 30, 1);
        let analysis = pipedag::analyze_unthrottled(&spec);
        assert!(analysis.parallelism() > 1.5);
    }
}
