//! The paper's evaluation workloads, each runnable on every executor.
//!
//! Section 10 of the paper evaluates Cilk-P on the three PARSEC benchmarks
//! that exhibit pipeline parallelism — **ferret**, **dedup** and **x264** —
//! plus a synthetic fine-grained pipeline, **pipe-fib**, used to study the
//! dependency-folding optimization. This crate reimplements all four on top
//! of the substrate crates, with:
//!
//! * a serial reference implementation (the `T_S` baseline of the tables),
//! * a PIPER / `pipe_while` implementation (the "Cilk-P" column),
//! * bind-to-stage and construct-and-run implementations where the model
//!   can express the workload (x264's on-the-fly structure cannot be
//!   expressed as a construct-and-run pipeline — that is the paper's
//!   motivating point),
//! * output verification: every parallel execution must produce exactly the
//!   serial output,
//! * a [`pipedag::PipelineSpec`] recorder that measures per-node work
//!   during a serial run, so the evaluation harness can replay the dag
//!   through the scheduler simulator for arbitrary processor counts.

pub mod bytes;
pub mod dedup;
pub mod ferret;
pub mod ferret_deep;
pub mod pipefib;
pub mod uniform;
pub mod x264;

/// A deferred detached-pipeline launch: given a pool and pipeline options,
/// start the workload's PIPER pipeline without blocking and return its
/// [`piper::PipeHandle`].
///
/// This is the currency between the workload constructors (`piper_launch`
/// in [`dedup`], [`ferret`], [`x264`], [`pipefib`]) and the `pipeserve`
/// executor service, which accepts exactly this shape as a job
/// (`JobSpec::from_launch`) — the workload keeps its concrete iteration
/// types private, the service stays fully type-erased.
pub type PipeLaunch =
    Box<dyn FnOnce(&piper::ThreadPool, piper::PipeOptions) -> piper::PipeHandle + Send>;

/// Which executor to run a workload on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// Plain serial execution (the `T_S` reference).
    Serial,
    /// The PIPER on-the-fly pipeline runtime (`pipe_while`).
    Piper,
    /// The Pthreads-style bind-to-stage baseline.
    BindToStage,
    /// The TBB-style construct-and-run baseline.
    ConstructAndRun,
}

impl Executor {
    /// All executors, in the order the paper's tables list them.
    pub const ALL: [Executor; 4] = [
        Executor::Serial,
        Executor::Piper,
        Executor::BindToStage,
        Executor::ConstructAndRun,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Executor::Serial => "serial",
            Executor::Piper => "cilk-p",
            Executor::BindToStage => "pthreads",
            Executor::ConstructAndRun => "tbb",
        }
    }
}
