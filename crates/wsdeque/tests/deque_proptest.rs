//! Property-based tests for the Chase–Lev deque.
//!
//! The central invariant: for any interleaving of owner pushes/pops and
//! thief steals, every pushed element is received exactly once (no loss, no
//! duplication), and the owner observes LIFO order among the elements it
//! pops between steals.

use proptest::prelude::*;
use std::collections::HashSet;
use std::thread;
use wsdeque::{deque, Steal};

/// A single-threaded operation sequence model-checked against a `VecDeque`.
#[derive(Debug, Clone)]
enum Op {
    Push(u32),
    Pop,
    Steal,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<u32>().prop_map(Op::Push),
        2 => Just(Op::Pop),
        2 => Just(Op::Steal),
    ]
}

proptest! {
    /// Sequential model check: the deque behaves like a double-ended queue
    /// where the owner pops from the back and the thief steals from the
    /// front.
    #[test]
    fn sequential_model_check(ops in proptest::collection::vec(op_strategy(), 0..400)) {
        let (w, s) = deque::<u32>();
        let mut model: std::collections::VecDeque<u32> = Default::default();
        for op in ops {
            match op {
                Op::Push(v) => {
                    w.push(v);
                    model.push_back(v);
                }
                Op::Pop => {
                    prop_assert_eq!(w.pop(), model.pop_back());
                }
                Op::Steal => {
                    let expected = model.pop_front();
                    match s.steal() {
                        Steal::Success(v) => prop_assert_eq!(Some(v), expected),
                        Steal::Empty => prop_assert_eq!(None, expected),
                        Steal::Retry => {
                            // No concurrency here, so Retry must not occur.
                            prop_assert!(false, "retry in sequential execution");
                        }
                    }
                }
            }
        }
        // Drain and compare the remainder.
        let mut rest = Vec::new();
        while let Some(v) = w.pop() {
            rest.push(v);
        }
        rest.reverse();
        prop_assert_eq!(rest, model.into_iter().collect::<Vec<_>>());
    }

    /// Concurrent no-loss/no-duplication check with a small random schedule.
    #[test]
    fn concurrent_exactly_once(n in 1usize..2_000, pop_every in 1usize..7) {
        let (w, s) = deque::<usize>();
        let thief = {
            let s = s.clone();
            thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match s.steal() {
                        Steal::Success(v) => {
                            if v == usize::MAX { break; }
                            got.push(v);
                        }
                        Steal::Empty => thread::yield_now(),
                        Steal::Retry => {}
                    }
                }
                got
            })
        };
        let mut local = Vec::new();
        for i in 0..n {
            w.push(i);
            if i % pop_every == 0 {
                if let Some(v) = w.pop() {
                    local.push(v);
                }
            }
        }
        while let Some(v) = w.pop() {
            local.push(v);
        }
        w.push(usize::MAX);
        let stolen = thief.join().unwrap();

        let mut all: Vec<usize> = local;
        all.extend(stolen);
        prop_assert_eq!(all.len(), n);
        let set: HashSet<usize> = all.into_iter().collect();
        prop_assert_eq!(set.len(), n);
    }
}
