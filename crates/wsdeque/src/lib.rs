//! Work-stealing substrate used by the PIPER runtime.
//!
//! The paper's Cilk-P prototype builds on the Cilk-M runtime, whose workers
//! keep ready work in per-worker deques manipulated with the THE protocol.
//! This crate provides the equivalent substrate, written from scratch:
//!
//! * [`deque`] — a lock-free Chase–Lev work-stealing deque
//!   ([`Worker`]/[`Stealer`]), following the memory-ordering recipe of
//!   Lê, Pop, Cohen and Nardelli (PPoPP 2013). The owner pushes and pops at
//!   the *bottom* (tail); thieves steal from the *top* (head).
//! * [`injector`] — a global FIFO queue used to submit work into a pool from
//!   external (non-worker) threads.
//! * [`parker`] — a condvar-based one-shot parker so that idle workers can
//!   sleep instead of spinning when the pool has no work.
//! * [`rng`] — a tiny xorshift PRNG for random victim selection, so the hot
//!   stealing path does not need an external dependency.
//!
//! The deque is generic over any `T: Send`; the PIPER scheduler stores its
//! task descriptors in it directly.

pub mod deque;
pub mod injector;
pub mod parker;
pub mod rng;

pub use deque::{deque, Steal, Stealer, Worker};
pub use injector::Injector;
pub use parker::{Backoff, Parker};
pub use rng::XorShift64;
