//! A Chase–Lev work-stealing deque.
//!
//! The owner thread operates on the bottom end with [`Worker::push`] and
//! [`Worker::pop`]; any number of other threads may hold [`Stealer`] handles
//! and take elements from the top end with [`Stealer::steal`]. The
//! implementation follows the C11 formulation of Lê, Pop, Cohen and
//! Nardelli, *Correct and Efficient Work-Stealing for Weakly Ordered Memory
//! Models* (PPoPP 2013), which is also the basis of `crossbeam-deque`.
//!
//! Memory reclamation is deliberately simple: buffers that are outgrown are
//! *retired* into a list owned by the shared state and only freed when the
//! last handle (worker or stealer) is dropped. Retired buffers are never
//! written to again, so a racing stealer can always safely read a slot from
//! a stale buffer; the compare-and-swap on `top` decides ownership of the
//! element itself.

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{fence, AtomicI64, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// Minimum buffer capacity (must be a power of two).
const MIN_CAP: usize = 64;

/// A fixed-capacity ring buffer of `MaybeUninit<T>` slots.
struct Buffer<T> {
    /// Capacity, always a power of two.
    cap: usize,
    /// Heap storage for `cap` slots.
    storage: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

unsafe impl<T: Send> Send for Buffer<T> {}
unsafe impl<T: Send> Sync for Buffer<T> {}

impl<T> Buffer<T> {
    fn new(cap: usize) -> Buffer<T> {
        debug_assert!(cap.is_power_of_two());
        let mut v = Vec::with_capacity(cap);
        for _ in 0..cap {
            v.push(UnsafeCell::new(MaybeUninit::uninit()));
        }
        Buffer {
            cap,
            storage: v.into_boxed_slice(),
        }
    }

    /// Writes `value` into the slot for index `index`.
    ///
    /// # Safety
    /// Only the owner may call this, and only for an index it is allowed to
    /// write (i.e. the current bottom).
    unsafe fn write(&self, index: i64, value: T) {
        let slot = &self.storage[(index as usize) & (self.cap - 1)];
        (*slot.get()).write(value);
    }

    /// Reads the value stored at `index` without marking the slot empty.
    ///
    /// # Safety
    /// The caller must ensure the slot was initialized and must take care
    /// not to produce two owned copies (the CAS on `top` arbitrates this).
    unsafe fn read(&self, index: i64) -> T {
        let slot = &self.storage[(index as usize) & (self.cap - 1)];
        ptr::read((*slot.get()).as_ptr())
    }
}

/// State shared between the worker and its stealers.
struct Inner<T> {
    /// Index one past the last element (owner end).
    bottom: AtomicI64,
    /// Index of the first element (thief end).
    top: AtomicI64,
    /// Current buffer.
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers that were replaced by larger ones; freed on drop.
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        let top = self.top.load(Ordering::Relaxed);
        let bottom = self.bottom.load(Ordering::Relaxed);
        let buf = self.buffer.load(Ordering::Relaxed);
        unsafe {
            // Drop any elements still resident in the live buffer.
            let mut i = top;
            while i < bottom {
                drop((*buf).read(i));
                i += 1;
            }
            drop(Box::from_raw(buf));
            // Free retired buffers (their elements were moved or copied into
            // the live buffer, so only the allocations are reclaimed here).
            let retired = self.retired.lock().unwrap();
            for &old in retired.iter() {
                drop(Box::from_raw(old));
            }
        }
    }
}

/// The owner end of a work-stealing deque.
///
/// `Worker` is `Send` but not `Sync`: exactly one thread may own it at a
/// time, which is what makes the single-owner fast path of the Chase–Lev
/// algorithm sound.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
    /// Cached capacity of the current buffer (owner-only).
    _marker: std::marker::PhantomData<*mut ()>,
}

unsafe impl<T: Send> Send for Worker<T> {}

/// A handle from which elements can be stolen.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

unsafe impl<T: Send> Send for Stealer<T> {}
unsafe impl<T: Send> Sync for Stealer<T> {}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Outcome of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// The steal lost a race and may be retried.
    Retry,
    /// An element was successfully stolen.
    Success(T),
}

impl<T> Steal<T> {
    /// Returns the stolen value, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }

    /// True if the deque was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// True if the attempt should be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }
}

/// Creates a new work-stealing deque, returning the owner handle and one
/// stealer handle (which can be cloned freely).
pub fn deque<T: Send>() -> (Worker<T>, Stealer<T>) {
    let buffer = Box::into_raw(Box::new(Buffer::<T>::new(MIN_CAP)));
    let inner = Arc::new(Inner {
        bottom: AtomicI64::new(0),
        top: AtomicI64::new(0),
        buffer: AtomicPtr::new(buffer),
        retired: Mutex::new(Vec::new()),
    });
    (
        Worker {
            inner: Arc::clone(&inner),
            _marker: std::marker::PhantomData,
        },
        Stealer { inner },
    )
}

impl<T: Send> Worker<T> {
    /// Returns a new stealer handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Number of elements currently in the deque (approximate under
    /// concurrency, exact when quiescent).
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// True if the deque appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes an element onto the bottom (owner) end.
    pub fn push(&self, value: T) {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Acquire);
        let mut buf = self.inner.buffer.load(Ordering::Relaxed);

        let len = b - t;
        unsafe {
            if len >= (*buf).cap as i64 {
                // Grow: allocate a buffer of twice the capacity and copy the
                // live range. The old buffer is retired, not freed, because a
                // stealer may still read from it.
                buf = self.grow(buf, t, b);
            }
            (*buf).write(b, value);
        }
        // The release fence/store makes the element visible before the new
        // bottom is observed by stealers.
        fence(Ordering::Release);
        self.inner.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Pops an element from the bottom (owner) end.
    pub fn pop(&self) -> Option<T> {
        let b = self.inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.inner.buffer.load(Ordering::Relaxed);
        self.inner.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.inner.top.load(Ordering::Relaxed);

        if t <= b {
            // Non-empty (at least when we started).
            let value = unsafe { (*buf).read(b) };
            if t == b {
                // Last element: race against stealers via CAS on top.
                if self
                    .inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_err()
                {
                    // Lost the race; the stealer got it.
                    std::mem::forget(value);
                    self.inner.bottom.store(b + 1, Ordering::Relaxed);
                    return None;
                }
                self.inner.bottom.store(b + 1, Ordering::Relaxed);
            }
            Some(value)
        } else {
            // Deque was empty; restore bottom.
            self.inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Swaps the element at the bottom (tail) of the deque with `value`,
    /// returning the previous tail. If the deque is empty, returns `value`
    /// back unchanged as an `Err`.
    ///
    /// This supports PIPER's *tail-swap* operation (Section 5 of the paper):
    /// when completing an iteration enables the control frame through a
    /// throttling edge and the worker's deque is non-empty, the enabled
    /// vertex is exchanged with the deque tail so the worker resumes the
    /// next consecutive iteration and the control vertex becomes stealable.
    ///
    /// The implementation is pop-then-push, which is linearizable with
    /// respect to concurrent steals (they only touch the top end, and by
    /// Lemma 4 the interesting case has a single element, where the pop CAS
    /// arbitrates).
    pub fn swap_tail(&self, value: T) -> Result<T, T> {
        match self.pop() {
            Some(prev) => {
                self.push(value);
                Ok(prev)
            }
            None => Err(value),
        }
    }

    /// Grows the buffer to twice its capacity, copying the live elements.
    unsafe fn grow(&self, old: *mut Buffer<T>, t: i64, b: i64) -> *mut Buffer<T> {
        let new = Box::into_raw(Box::new(Buffer::<T>::new(((*old).cap * 2).max(MIN_CAP))));
        let mut i = t;
        while i < b {
            // Bitwise copy; ownership of each element is still arbitrated by
            // the indices + CAS on `top`.
            let slot = (*old).read(i);
            (*new).write(i, slot);
            i += 1;
        }
        self.inner.buffer.store(new, Ordering::Release);
        self.inner.retired.lock().unwrap().push(old);
        new
    }
}

impl<T: Send> Stealer<T> {
    /// Number of elements currently in the deque (approximate).
    pub fn len(&self) -> usize {
        let t = self.inner.top.load(Ordering::Acquire);
        let b = self.inner.bottom.load(Ordering::Acquire);
        (b - t).max(0) as usize
    }

    /// True if the deque appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to steal an element from the top (thief) end.
    pub fn steal(&self) -> Steal<T> {
        let t = self.inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.inner.bottom.load(Ordering::Acquire);

        if t >= b {
            return Steal::Empty;
        }
        // Read the element first, then try to claim it. On CAS failure the
        // read value is forgotten, never dropped, so no double-drop occurs.
        let buf = self.inner.buffer.load(Ordering::Acquire);
        let value = unsafe { (*buf).read(t) };
        if self
            .inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            std::mem::forget(value);
            return Steal::Retry;
        }
        Steal::Success(value)
    }

    /// Steals, retrying internally while the deque reports `Retry`.
    pub fn steal_with_retries(&self, max_retries: usize) -> Option<T> {
        for _ in 0..=max_retries {
            match self.steal() {
                Steal::Success(v) => return Some(v),
                Steal::Empty => return None,
                Steal::Retry => continue,
            }
        }
        None
    }
}

impl<T> fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Worker")
            .field("bottom", &self.inner.bottom.load(Ordering::Relaxed))
            .field("top", &self.inner.top.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T> fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stealer")
            .field("bottom", &self.inner.bottom.load(Ordering::Relaxed))
            .field("top", &self.inner.top.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn push_pop_lifo() {
        let (w, _s) = deque::<u32>();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn steal_fifo() {
        let (w, s) = deque::<u32>();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(s.steal(), Steal::Success(2));
        assert_eq!(s.steal(), Steal::Success(3));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn interleaved_push_pop_steal() {
        let (w, s) = deque::<u32>();
        w.push(10);
        w.push(20);
        assert_eq!(s.steal(), Steal::Success(10));
        w.push(30);
        assert_eq!(w.pop(), Some(30));
        assert_eq!(w.pop(), Some(20));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn len_tracks_contents() {
        let (w, s) = deque::<usize>();
        assert!(w.is_empty());
        for i in 0..100 {
            w.push(i);
        }
        assert_eq!(w.len(), 100);
        assert_eq!(s.len(), 100);
        for _ in 0..40 {
            w.pop();
        }
        assert_eq!(w.len(), 60);
    }

    #[test]
    fn growth_preserves_elements() {
        let (w, _s) = deque::<usize>();
        let n = 10 * MIN_CAP;
        for i in 0..n {
            w.push(i);
        }
        let mut popped = Vec::new();
        while let Some(v) = w.pop() {
            popped.push(v);
        }
        popped.reverse();
        assert_eq!(popped, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn growth_with_offset_top() {
        let (w, s) = deque::<usize>();
        // Leave a nonzero top so growth copies a shifted window.
        for i in 0..MIN_CAP {
            w.push(i);
        }
        for i in 0..MIN_CAP / 2 {
            assert_eq!(s.steal(), Steal::Success(i));
        }
        for i in MIN_CAP..4 * MIN_CAP {
            w.push(i);
        }
        let mut seen = Vec::new();
        while let Some(v) = w.pop() {
            seen.push(v);
        }
        seen.reverse();
        assert_eq!(seen, (MIN_CAP / 2..4 * MIN_CAP).collect::<Vec<_>>());
    }

    #[test]
    fn swap_tail_on_empty_returns_err() {
        let (w, _s) = deque::<u32>();
        assert_eq!(w.swap_tail(7), Err(7));
    }

    #[test]
    fn swap_tail_exchanges_last_element() {
        let (w, _s) = deque::<u32>();
        w.push(1);
        w.push(2);
        assert_eq!(w.swap_tail(99), Ok(2));
        assert_eq!(w.pop(), Some(99));
        assert_eq!(w.pop(), Some(1));
    }

    #[test]
    fn drop_frees_remaining_elements() {
        // Use Arc counting to ensure elements left in the deque are dropped.
        let live = Arc::new(AtomicUsize::new(0));
        struct Tracked(Arc<AtomicUsize>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        {
            let (w, _s) = deque::<Tracked>();
            for _ in 0..10 {
                live.fetch_add(1, Ordering::SeqCst);
                w.push(Tracked(Arc::clone(&live)));
            }
            // Pop a few to exercise both paths.
            drop(w.pop());
            drop(w.pop());
        }
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn concurrent_steals_no_loss_no_duplication() {
        const N: usize = 20_000;
        const THIEVES: usize = 4;
        let (w, s) = deque::<usize>();
        let collected: Vec<_> = (0..THIEVES)
            .map(|_| {
                let s = s.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match s.steal() {
                            Steal::Success(v) => {
                                if v == usize::MAX {
                                    break;
                                }
                                got.push(v);
                            }
                            Steal::Empty => std::thread::yield_now(),
                            Steal::Retry => {}
                        }
                    }
                    got
                })
            })
            .collect();

        let mut kept = Vec::new();
        for i in 0..N {
            w.push(i);
            if i % 3 == 0 {
                if let Some(v) = w.pop() {
                    kept.push(v);
                }
            }
        }
        // Drain what's left locally.
        while let Some(v) = w.pop() {
            kept.push(v);
        }
        // Send sentinels to stop thieves.
        for _ in 0..THIEVES {
            w.push(usize::MAX);
        }

        let mut all: Vec<usize> = kept;
        for h in collected {
            all.extend(h.join().unwrap());
        }
        assert_eq!(all.len(), N, "every pushed element seen exactly once");
        let set: HashSet<usize> = all.iter().copied().collect();
        assert_eq!(set.len(), N, "no duplicates");
        assert_eq!(set.iter().copied().max(), Some(N - 1));
    }

    #[test]
    fn concurrent_growth_under_stealing() {
        const N: usize = 50_000;
        let (w, s) = deque::<usize>();
        let thief = {
            let s = s.clone();
            thread::spawn(move || {
                let mut got = 0usize;
                let mut sum = 0usize;
                loop {
                    match s.steal() {
                        Steal::Success(v) => {
                            if v == usize::MAX {
                                break;
                            }
                            got += 1;
                            sum += v;
                        }
                        Steal::Empty => std::thread::yield_now(),
                        Steal::Retry => {}
                    }
                }
                (got, sum)
            })
        };
        let mut local = 0usize;
        let mut local_sum = 0usize;
        for i in 0..N {
            w.push(i);
        }
        while let Some(v) = w.pop() {
            local += 1;
            local_sum += v;
        }
        w.push(usize::MAX);
        let (stolen, stolen_sum) = thief.join().unwrap();
        assert_eq!(local + stolen, N);
        assert_eq!(local_sum + stolen_sum, N * (N - 1) / 2);
    }
}
