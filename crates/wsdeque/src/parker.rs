//! A simple condvar-based parker for idle workers.
//!
//! When a PIPER worker finds no work (its deque is empty, the injector is
//! empty, and a round of random steal attempts failed), it parks on its
//! `Parker`. Any thread that makes new work available unparks sleepers.
//! Unpark "permits" are sticky: an unpark delivered before the park call is
//! not lost, which prevents missed-wakeup deadlocks in the scheduler's
//! sleep/wake protocol.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A one-permit parker.
#[derive(Debug, Default)]
pub struct Parker {
    state: Mutex<bool>,
    condvar: Condvar,
}

impl Parker {
    /// Creates a parker with no pending permit.
    pub fn new() -> Self {
        Parker {
            state: Mutex::new(false),
            condvar: Condvar::new(),
        }
    }

    /// Blocks until a permit is available (consuming it).
    pub fn park(&self) {
        let mut permit = self.state.lock().unwrap();
        while !*permit {
            permit = self.condvar.wait(permit).unwrap();
        }
        *permit = false;
    }

    /// Blocks until a permit is available or `timeout` elapses. Returns true
    /// if a permit was consumed.
    pub fn park_timeout(&self, timeout: Duration) -> bool {
        let mut permit = self.state.lock().unwrap();
        if !*permit {
            let (guard, result) = self.condvar.wait_timeout(permit, timeout).unwrap();
            permit = guard;
            if result.timed_out() && !*permit {
                return false;
            }
        }
        let had = *permit;
        *permit = false;
        had
    }

    /// Makes a permit available, waking a parked thread if any.
    pub fn unpark(&self) {
        let mut permit = self.state.lock().unwrap();
        *permit = true;
        drop(permit);
        self.condvar.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Instant;

    #[test]
    fn unpark_before_park_is_not_lost() {
        let p = Parker::new();
        p.unpark();
        // Must return immediately.
        let start = Instant::now();
        p.park();
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn park_timeout_expires_without_permit() {
        let p = Parker::new();
        let got = p.park_timeout(Duration::from_millis(20));
        assert!(!got);
    }

    #[test]
    fn park_wakes_on_unpark_from_other_thread() {
        let p = Arc::new(Parker::new());
        let p2 = Arc::clone(&p);
        let h = thread::spawn(move || {
            p2.park();
            42
        });
        thread::sleep(Duration::from_millis(10));
        p.unpark();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn repeated_park_unpark_cycles() {
        let p = Arc::new(Parker::new());
        let p2 = Arc::clone(&p);
        let h = thread::spawn(move || {
            for _ in 0..100 {
                p2.park();
            }
        });
        for _ in 0..100 {
            p.unpark();
            // Give the other side a chance to consume the permit so that
            // permits are not merged (the parker holds at most one).
            thread::yield_now();
            thread::sleep(Duration::from_micros(50));
        }
        h.join().unwrap();
    }
}
