//! A simple condvar-based parker for idle workers, plus the bounded
//! spin-then-park [`Backoff`] that decides *when* to use it.
//!
//! When a PIPER worker finds no work (its deque is empty, the injector is
//! empty, and a round of random steal attempts failed), it parks on its
//! `Parker`. Any thread that makes new work available unparks sleepers.
//! Unpark "permits" are sticky: an unpark delivered before the park call is
//! not lost, which prevents missed-wakeup deadlocks in the scheduler's
//! sleep/wake protocol.
//!
//! Parking is a syscall-heavy operation (mutex + condvar + scheduler), so a
//! worker that parks the instant its steal round fails will thrash
//! park/unpark on fine-grained pipelines, where new nodes are enabled every
//! few hundred nanoseconds. [`Backoff`] bounds that: a short exponential
//! spin, then a few sched-yields, and only then does the idle loop fall
//! back to the condvar.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Bounded exponential backoff for idle loops: spin (with exponentially
/// more `spin_loop` hints), then yield to the OS scheduler, then report
/// that the caller should park for real.
///
/// The limits mirror crossbeam's utils: spinning is capped at `2^6` hints
/// per step so a completed backoff has burned on the order of a
/// microsecond — comparable to the cost of one park/unpark cycle, which is
/// the break-even point for falling back to the condvar.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Steps `0..=SPIN_LIMIT` busy-spin; beyond that, yield.
    const SPIN_LIMIT: u32 = 6;
    /// Steps `SPIN_LIMIT+1..=YIELD_LIMIT` yield; beyond that, the backoff
    /// is completed and the caller should park.
    const YIELD_LIMIT: u32 = 10;

    /// A fresh backoff (next snooze is the cheapest spin).
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Resets the backoff; call after finding work.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Burns a short, exponentially growing amount of time. Once
    /// [`is_completed`](Self::is_completed) is true, every further snooze
    /// is a plain yield, so callers that cannot park (e.g. a worker
    /// waiting on an external latch) may keep snoozing indefinitely.
    pub fn snooze(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step <= Self::YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// True once spinning and yielding are exhausted and the caller should
    /// fall back to its parker.
    pub fn is_completed(&self) -> bool {
        self.step > Self::YIELD_LIMIT
    }
}

/// A one-permit parker.
#[derive(Debug, Default)]
pub struct Parker {
    state: Mutex<bool>,
    condvar: Condvar,
}

impl Parker {
    /// Creates a parker with no pending permit.
    pub fn new() -> Self {
        Parker {
            state: Mutex::new(false),
            condvar: Condvar::new(),
        }
    }

    /// Blocks until a permit is available (consuming it).
    pub fn park(&self) {
        let mut permit = self.state.lock().unwrap();
        while !*permit {
            permit = self.condvar.wait(permit).unwrap();
        }
        *permit = false;
    }

    /// Blocks until a permit is available or `timeout` elapses. Returns true
    /// if a permit was consumed.
    pub fn park_timeout(&self, timeout: Duration) -> bool {
        let mut permit = self.state.lock().unwrap();
        if !*permit {
            let (guard, result) = self.condvar.wait_timeout(permit, timeout).unwrap();
            permit = guard;
            if result.timed_out() && !*permit {
                return false;
            }
        }
        let had = *permit;
        *permit = false;
        had
    }

    /// Makes a permit available, waking a parked thread if any.
    pub fn unpark(&self) {
        let mut permit = self.state.lock().unwrap();
        *permit = true;
        drop(permit);
        self.condvar.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Instant;

    #[test]
    fn unpark_before_park_is_not_lost() {
        let p = Parker::new();
        p.unpark();
        // Must return immediately.
        let start = Instant::now();
        p.park();
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn park_timeout_expires_without_permit() {
        let p = Parker::new();
        let got = p.park_timeout(Duration::from_millis(20));
        assert!(!got);
    }

    #[test]
    fn park_wakes_on_unpark_from_other_thread() {
        let p = Arc::new(Parker::new());
        let p2 = Arc::clone(&p);
        let h = thread::spawn(move || {
            p2.park();
            42
        });
        thread::sleep(Duration::from_millis(10));
        p.unpark();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn backoff_escalates_and_resets() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=Backoff::YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
        // Completed backoffs may keep snoozing (they just yield).
        b.snooze();
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn repeated_park_unpark_cycles() {
        let p = Arc::new(Parker::new());
        let p2 = Arc::clone(&p);
        let h = thread::spawn(move || {
            for _ in 0..100 {
                p2.park();
            }
        });
        for _ in 0..100 {
            p.unpark();
            // Give the other side a chance to consume the permit so that
            // permits are not merged (the parker holds at most one).
            thread::yield_now();
            thread::sleep(Duration::from_micros(50));
        }
        h.join().unwrap();
    }
}
