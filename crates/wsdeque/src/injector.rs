//! A global FIFO injection queue.
//!
//! External (non-worker) threads submit work to a pool through an
//! `Injector`; idle workers poll it before attempting random steals. The
//! implementation is a mutex-protected ring buffer: injection is a cold path
//! compared to deque operations, so simplicity and correctness win over
//! lock-freedom here (the same choice `rayon` makes for its injector-style
//! "global" queue fallback paths).

use std::collections::VecDeque;
use std::sync::Mutex;

/// A multi-producer multi-consumer FIFO queue for submitting work into a
/// scheduler from arbitrary threads.
#[derive(Debug)]
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes a value onto the back of the queue.
    pub fn push(&self, value: T) {
        self.queue.lock().unwrap().push_back(value);
    }

    /// Pops a value from the front of the queue.
    pub fn pop(&self) -> Option<T> {
        self.queue.lock().unwrap().pop_front()
    }

    /// Number of queued values.
    pub fn len(&self) -> usize {
        self.queue.lock().unwrap().len()
    }

    /// True if no values are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order() {
        let inj = Injector::new();
        inj.push(1);
        inj.push(2);
        inj.push(3);
        assert_eq!(inj.pop(), Some(1));
        assert_eq!(inj.pop(), Some(2));
        assert_eq!(inj.pop(), Some(3));
        assert_eq!(inj.pop(), None);
    }

    #[test]
    fn len_and_empty() {
        let inj = Injector::new();
        assert!(inj.is_empty());
        inj.push(());
        inj.push(());
        assert_eq!(inj.len(), 2);
        inj.pop();
        inj.pop();
        assert!(inj.is_empty());
    }

    #[test]
    fn concurrent_producers_consumers() {
        const PER_PRODUCER: usize = 5_000;
        const PRODUCERS: usize = 3;
        const CONSUMERS: usize = 3;
        let inj = Arc::new(Injector::new());

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let inj = Arc::clone(&inj);
                thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        inj.push(p * PER_PRODUCER + i);
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }

        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let inj = Arc::clone(&inj);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = inj.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<usize> = Vec::new();
        for h in consumers {
            all.extend(h.join().unwrap());
        }
        all.sort_unstable();
        assert_eq!(all, (0..PRODUCERS * PER_PRODUCER).collect::<Vec<_>>());
    }
}
