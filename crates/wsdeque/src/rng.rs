//! A tiny xorshift* PRNG used for random victim selection.
//!
//! PIPER's thieves pick victims uniformly at random (Section 5). The
//! stealing path is hot, so the generator must be cheap and allocation-free;
//! statistical quality requirements are mild. xorshift64* is more than
//! adequate and keeps the substrate dependency-free.

/// A xorshift64* pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a nonzero seed (zero is mapped to a fixed
    /// constant, since the all-zero state is an absorbing state).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// Uses the widening-multiply trick; the slight modulo bias is irrelevant
    /// for victim selection.
    pub fn next_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let mut rng = XorShift64::new(0);
        // Must not get stuck at zero.
        assert_ne!(rng.next_u64(), 0);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = XorShift64::new(12345);
        for bound in [1usize, 2, 3, 7, 16, 1000] {
            for _ in 0..1000 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn distribution_roughly_uniform() {
        let mut rng = XorShift64::new(98765);
        let bound = 8;
        let mut counts = vec![0usize; bound];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.next_below(bound)] += 1;
        }
        let expected = n / bound;
        for &c in &counts {
            assert!(
                c > expected * 8 / 10 && c < expected * 12 / 10,
                "bucket count {c} too far from expected {expected}"
            );
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
