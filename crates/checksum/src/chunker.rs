//! Content-defined chunking with a polynomial rolling hash.
//!
//! dedup's first pipeline stage breaks the input stream into chunks whose
//! boundaries are chosen by content (a Rabin fingerprint over a sliding
//! window), so that inserting bytes near the beginning of a file does not
//! shift every later chunk boundary. This module implements the same idea
//! with a simple multiplicative rolling hash.

/// Parameters of the content-defined chunker.
#[derive(Debug, Clone, Copy)]
pub struct ChunkerConfig {
    /// Minimum chunk size in bytes (boundaries are not considered earlier).
    pub min_size: usize,
    /// Maximum chunk size in bytes (a boundary is forced at this size).
    pub max_size: usize,
    /// Average chunk size target; must be a power of two. A boundary is
    /// declared when the low `log2(avg_size)` bits of the rolling hash are
    /// all ones.
    pub avg_size: usize,
    /// Sliding-window width in bytes.
    pub window: usize,
}

impl Default for ChunkerConfig {
    fn default() -> Self {
        ChunkerConfig {
            min_size: 1 << 10,
            max_size: 1 << 15,
            avg_size: 1 << 12,
            window: 48,
        }
    }
}

impl ChunkerConfig {
    /// A configuration scaled for small synthetic inputs (tests and the
    /// example programs), keeping the same structure at 1/16 the sizes.
    pub fn small() -> Self {
        ChunkerConfig {
            min_size: 64,
            max_size: 2048,
            avg_size: 256,
            window: 16,
        }
    }

    fn mask(&self) -> u64 {
        debug_assert!(self.avg_size.is_power_of_two());
        (self.avg_size as u64) - 1
    }
}

/// Multiplier for the polynomial rolling hash (a large odd constant).
const PRIME: u64 = 0x3B9A_CA07;

/// Returns the chunk boundaries (exclusive end offsets) of `data` under the
/// given configuration. The final boundary is always `data.len()`.
pub fn chunk_boundaries(data: &[u8], config: &ChunkerConfig) -> Vec<usize> {
    let mut boundaries = Vec::new();
    if data.is_empty() {
        return boundaries;
    }
    let mask = config.mask();
    // Precompute PRIME^(window-1) for removing the outgoing byte.
    let mut out_factor: u64 = 1;
    for _ in 0..config.window.saturating_sub(1) {
        out_factor = out_factor.wrapping_mul(PRIME);
    }

    let mut start = 0usize;
    let mut hash: u64 = 0;
    let mut filled = 0usize;

    let mut i = 0usize;
    while i < data.len() {
        let byte = data[i] as u64 + 1;
        if filled < config.window {
            hash = hash.wrapping_mul(PRIME).wrapping_add(byte);
            filled += 1;
        } else {
            let out = data[i - config.window] as u64 + 1;
            hash = hash
                .wrapping_sub(out.wrapping_mul(out_factor))
                .wrapping_mul(PRIME)
                .wrapping_add(byte);
        }
        let size = i - start + 1;
        let is_cut = (hash & mask) == mask && size >= config.min_size;
        if is_cut || size >= config.max_size {
            boundaries.push(i + 1);
            start = i + 1;
            hash = 0;
            filled = 0;
        }
        i += 1;
    }
    if start < data.len() {
        boundaries.push(data.len());
    }
    boundaries
}

/// Splits `data` into content-defined chunks.
pub fn split_chunks<'a>(data: &'a [u8], config: &ChunkerConfig) -> Vec<&'a [u8]> {
    let mut chunks = Vec::new();
    let mut start = 0usize;
    for end in chunk_boundaries(data, config) {
        chunks.push(&data[start..end]);
        start = end;
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(len: usize, seed: u64) -> Vec<u8> {
        // Simple xorshift byte stream.
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 0xFF) as u8
            })
            .collect()
    }

    #[test]
    fn chunks_reassemble_to_input() {
        let data = synthetic(200_000, 42);
        let config = ChunkerConfig::small();
        let chunks = split_chunks(&data, &config);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, data.len());
        let mut rebuilt = Vec::with_capacity(data.len());
        for c in &chunks {
            rebuilt.extend_from_slice(c);
        }
        assert_eq!(rebuilt, data);
    }

    #[test]
    fn chunk_sizes_respect_bounds() {
        let data = synthetic(300_000, 7);
        let config = ChunkerConfig::small();
        let chunks = split_chunks(&data, &config);
        for (i, c) in chunks.iter().enumerate() {
            assert!(c.len() <= config.max_size);
            if i + 1 != chunks.len() {
                assert!(c.len() >= config.min_size, "chunk {i} is {}", c.len());
            }
        }
        // Average size should be in the right ballpark (between min and max).
        let avg = data.len() / chunks.len();
        assert!(avg >= config.min_size && avg <= config.max_size);
    }

    #[test]
    fn boundaries_are_content_defined() {
        // Repeating the same content yields repeating chunk patterns:
        // duplicate detection across repeats is what dedup exploits.
        let unit = synthetic(50_000, 99);
        let mut data = Vec::new();
        for _ in 0..4 {
            data.extend_from_slice(&unit);
        }
        let config = ChunkerConfig::small();
        let chunks = split_chunks(&data, &config);
        let mut seen = std::collections::HashMap::new();
        let mut duplicates = 0usize;
        for c in &chunks {
            let d = crate::sha1(c);
            *seen.entry(d).or_insert(0usize) += 1;
            if seen[&d] > 1 {
                duplicates += 1;
            }
        }
        assert!(
            duplicates * 2 >= chunks.len() / 2,
            "expected many duplicate chunks, got {duplicates} of {}",
            chunks.len()
        );
    }

    #[test]
    fn insertion_only_shifts_local_boundaries() {
        let data = synthetic(100_000, 3);
        let config = ChunkerConfig::small();
        let before: std::collections::HashSet<[u8; 20]> = split_chunks(&data, &config)
            .iter()
            .map(|c| crate::sha1(c))
            .collect();
        // Insert a few bytes near the start.
        let mut edited = data.clone();
        for (k, b) in [1u8, 2, 3, 4, 5].iter().enumerate() {
            edited.insert(1000 + k, *b);
        }
        let after = split_chunks(&edited, &config);
        let unchanged = after
            .iter()
            .filter(|c| before.contains(&crate::sha1(c)))
            .count();
        // Most chunks away from the edit are unchanged.
        assert!(
            unchanged * 3 >= after.len() * 2,
            "only {unchanged} of {} chunks unchanged",
            after.len()
        );
    }

    #[test]
    fn empty_input_has_no_chunks() {
        assert!(chunk_boundaries(&[], &ChunkerConfig::default()).is_empty());
    }

    #[test]
    fn tiny_input_is_a_single_chunk() {
        let data = vec![1u8, 2, 3];
        let chunks = split_chunks(&data, &ChunkerConfig::default());
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0], &data[..]);
    }
}
