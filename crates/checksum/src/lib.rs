//! Hashing and content-defined chunking, the substrate of the dedup
//! workload.
//!
//! PARSEC's dedup pipeline (paper, Figure 4) breaks its input into chunks,
//! computes each chunk's SHA-1 signature, and uses a hash table keyed by the
//! signature to detect duplicates. This crate provides those pieces from
//! scratch:
//!
//! * [`sha1`] — the SHA-1 message digest (FIPS 180-1), used as the chunk
//!   fingerprint exactly as dedup does.
//! * [`sha256`] — SHA-256 (FIPS 180-4), the fingerprint modern deduplicators
//!   use; selectable in the dedup workload in place of SHA-1.
//! * [`adler32`] — a cheap rolling-friendly checksum used for quick
//!   comparisons and test oracles.
//! * [`crc32`] — the gzip/zlib CRC-32 used as an archive integrity checksum.
//! * [`chunker`] — content-defined chunking with a polynomial rolling hash
//!   (Rabin-style), so chunk boundaries depend on content rather than
//!   offsets, matching dedup's behaviour.
//! * [`buf`] — reference-counted [`buf::Chunk`] views and the size-classed
//!   [`buf::BufPool`], the buffer substrate of the zero-copy serving path.

pub mod adler32;
pub mod buf;
pub mod chunker;
pub mod crc32;
pub mod sha1;
pub mod sha256;

pub use adler32::adler32;
pub use buf::{BufMut, BufPool, Chunk};
pub use chunker::{chunk_boundaries, split_chunks, ChunkerConfig};
pub use crc32::{crc32, crc32_append, crc32_scalar, Crc32};
pub use sha1::{sha1, sha1_hex, Sha1, DIGEST_LEN};
pub use sha256::{sha256, sha256_hex, sha256_scalar, Sha256, SHA256_DIGEST_LEN};

/// Which cryptographic digest fingerprints a chunk (dedup's Stage 1).
///
/// The paper's dedup uses SHA-1; production systems moved to SHA-256. Both
/// are 160/256-bit digests stored here in a fixed 32-byte buffer so the
/// pipeline code is independent of the choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Digest {
    /// SHA-1, as in PARSEC's dedup (the paper-faithful configuration).
    #[default]
    Sha1,
    /// SHA-256, the modern fingerprint choice.
    Sha256,
}

impl Digest {
    /// Fingerprints `data`, returning the digest left-aligned in a 32-byte
    /// array (SHA-1 pads the tail with zeros) plus its true length.
    pub fn fingerprint(self, data: &[u8]) -> ([u8; 32], usize) {
        match self {
            Digest::Sha1 => {
                let d = sha1(data);
                let mut out = [0u8; 32];
                out[..DIGEST_LEN].copy_from_slice(&d);
                (out, DIGEST_LEN)
            }
            Digest::Sha256 => (sha256(data), SHA256_DIGEST_LEN),
        }
    }
}

#[cfg(test)]
mod digest_tests {
    use super::*;

    #[test]
    fn fingerprint_lengths_match_algorithm() {
        let (_, n1) = Digest::Sha1.fingerprint(b"abc");
        let (_, n2) = Digest::Sha256.fingerprint(b"abc");
        assert_eq!(n1, DIGEST_LEN);
        assert_eq!(n2, SHA256_DIGEST_LEN);
    }

    #[test]
    fn fingerprint_agrees_with_oneshot_functions() {
        let data = b"the same chunk seen twice";
        let (f1, n1) = Digest::Sha1.fingerprint(data);
        assert_eq!(&f1[..n1], &sha1(data));
        let (f2, n2) = Digest::Sha256.fingerprint(data);
        assert_eq!(&f2[..n2], &sha256(data));
    }

    #[test]
    fn different_algorithms_give_different_fingerprints() {
        let data = b"fingerprint me";
        assert_ne!(
            Digest::Sha1.fingerprint(data).0,
            Digest::Sha256.fingerprint(data).0
        );
    }
}
