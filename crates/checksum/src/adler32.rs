//! Adler-32 checksum (RFC 1950), used as a cheap integrity check in the
//! dedup workload's output verification and by tests.

const MOD_ADLER: u32 = 65_521;

/// Computes the Adler-32 checksum of `data`.
pub fn adler32(data: &[u8]) -> u32 {
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    // Process in runs small enough that the u32 accumulators cannot
    // overflow before reduction (5552 is the standard bound).
    for chunk in data.chunks(5552) {
        for &byte in chunk {
            a += byte as u32;
            b += a;
        }
        a %= MOD_ADLER;
        b %= MOD_ADLER;
    }
    (b << 16) | a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"a"), 0x0062_0062);
        assert_eq!(adler32(b"abc"), 0x024d_0127);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn long_input_does_not_overflow() {
        let data = vec![0xFFu8; 1_000_000];
        // Value computed with the reference algorithm (zlib).
        let value = adler32(&data);
        // a = (1 + 255*1e6) mod 65521, recompute independently:
        let a = (1u64 + 255u64 * 1_000_000) % 65_521;
        assert_eq!(value & 0xFFFF, a as u32);
    }

    #[test]
    fn sensitive_to_byte_order() {
        assert_ne!(adler32(b"ab"), adler32(b"ba"));
    }
}
