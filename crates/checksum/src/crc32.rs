//! CRC-32 (IEEE 802.3 polynomial, the gzip/zlib variant), implemented from
//! scratch with a lazily built lookup table.
//!
//! dedup-style archives commonly carry a cheap integrity checksum next to the
//! cryptographic fingerprint; CRC-32 fills that role here and is also used by
//! the deflate-like codec in the `compress` crate to validate round trips.
//!
//! The hot loop is a slice-by-16 kernel: sixteen interleaved 256-entry
//! tables consume 16 input bytes per iteration as four independent 32-bit
//! lane loads, so the table lookups overlap instead of serialising on a
//! byte-at-a-time dependency chain. The classic one-table byte loop is kept
//! as [`crc32_scalar`] — it is the reference the kernel is differentially
//! tested against and the baseline the `checksum_kernels` bench reports
//! speedups over.

use std::sync::OnceLock;

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// The sixteen interleaved tables for the slice-by-16 kernel. `t[0]` is the
/// classic table; `t[k][i]` advances `t[k-1][i]` by one more zero byte, so a
/// lookup in `t[k]` accounts for a byte that sits `k` positions ahead of the
/// end of the 16-byte block.
fn tables16() -> &'static [[u32; 256]; 16] {
    static TABLES: OnceLock<[[u32; 256]; 16]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let base = table();
        let mut t = [[0u32; 256]; 16];
        t[0] = *base;
        for k in 1..16 {
            let (done, rest) = t.split_at_mut(k);
            let prev_row = &done[k - 1];
            for (entry, &prev) in rest[0].iter_mut().zip(prev_row.iter()) {
                *entry = (prev >> 8) ^ base[(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// Incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorbs `data` into the checksum state (slice-by-16 kernel).
    pub fn update(&mut self, data: &[u8]) {
        let t = tables16();
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(16);
        for block in &mut chunks {
            let w0 = u32::from_le_bytes([block[0], block[1], block[2], block[3]]) ^ crc;
            let w1 = u32::from_le_bytes([block[4], block[5], block[6], block[7]]);
            let w2 = u32::from_le_bytes([block[8], block[9], block[10], block[11]]);
            let w3 = u32::from_le_bytes([block[12], block[13], block[14], block[15]]);
            crc = t[15][(w0 & 0xFF) as usize]
                ^ t[14][((w0 >> 8) & 0xFF) as usize]
                ^ t[13][((w0 >> 16) & 0xFF) as usize]
                ^ t[12][(w0 >> 24) as usize]
                ^ t[11][(w1 & 0xFF) as usize]
                ^ t[10][((w1 >> 8) & 0xFF) as usize]
                ^ t[9][((w1 >> 16) & 0xFF) as usize]
                ^ t[8][(w1 >> 24) as usize]
                ^ t[7][(w2 & 0xFF) as usize]
                ^ t[6][((w2 >> 8) & 0xFF) as usize]
                ^ t[5][((w2 >> 16) & 0xFF) as usize]
                ^ t[4][(w2 >> 24) as usize]
                ^ t[3][(w3 & 0xFF) as usize]
                ^ t[2][((w3 >> 8) & 0xFF) as usize]
                ^ t[1][((w3 >> 16) & 0xFF) as usize]
                ^ t[0][(w3 >> 24) as usize];
        }
        let base = &t[0];
        for &byte in chunks.remainder() {
            crc = base[((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// Finalises and returns the checksum.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `data` (slice-by-16 kernel).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

/// One-shot CRC-32 via the classic one-table byte-at-a-time loop. This is
/// the reference implementation the slice-by-16 kernel is verified against
/// and the baseline for the `checksum_kernels` bench; production callers
/// should use [`crc32`].
pub fn crc32_scalar(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = t[((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Combines a running CRC with more data: `crc32_append(crc32(a), b) ==
/// crc32(a ++ b)` only holds when resuming from the raw (non-finalised)
/// state, so this helper re-opens a finalised checksum and continues it.
pub fn crc32_append(previous: u32, data: &[u8]) -> u32 {
    let mut c = Crc32 {
        state: previous ^ 0xFFFF_FFFF,
    };
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/ISO-HDLC ("check" value) vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
    }

    #[test]
    fn scalar_reference_matches_known_vectors() {
        assert_eq!(crc32_scalar(b""), 0x0000_0000);
        assert_eq!(crc32_scalar(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_scalar(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn kernel_matches_scalar_on_all_lengths_and_alignments() {
        let data: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 11) as u8)
            .collect();
        for start in 0..16 {
            for len in [0usize, 1, 7, 8, 9, 15, 16, 63, 64, 65, 255, 512] {
                let slice = &data[start..start + len];
                assert_eq!(crc32(slice), crc32_scalar(slice), "start {start} len {len}");
            }
        }
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..8192u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let oneshot = crc32(&data);
        for chunk_size in [1usize, 7, 256, 1000] {
            let mut c = Crc32::new();
            for chunk in data.chunks(chunk_size) {
                c.update(chunk);
            }
            assert_eq!(c.finalize(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn append_continues_a_finalised_checksum() {
        // Stream both halves through the kernel incrementally — the
        // expected whole-input checksum is derived without ever
        // materialising the concatenated buffer.
        let a = b"hello, ";
        let b = b"world";
        let whole = {
            let mut c = Crc32::new();
            c.update(a);
            c.update(b);
            c.finalize()
        };
        assert_eq!(crc32_append(crc32(a), b), whole);
        assert_eq!(whole, crc32_scalar(b"hello, world"));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = vec![0x42u8; 128];
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
