//! CRC-32 (IEEE 802.3 polynomial, the gzip/zlib variant), implemented from
//! scratch with a lazily built lookup table.
//!
//! dedup-style archives commonly carry a cheap integrity checksum next to the
//! cryptographic fingerprint; CRC-32 fills that role here and is also used by
//! the deflate-like codec in the `compress` crate to validate round trips.

use std::sync::OnceLock;

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// Incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorbs `data` into the checksum state.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        let mut crc = self.state;
        for &byte in data {
            crc = t[((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// Finalises and returns the checksum.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

/// Combines a running CRC with more data: `crc32_append(crc32(a), b) ==
/// crc32(a ++ b)` only holds when resuming from the raw (non-finalised)
/// state, so this helper re-opens a finalised checksum and continues it.
pub fn crc32_append(previous: u32, data: &[u8]) -> u32 {
    let mut c = Crc32 {
        state: previous ^ 0xFFFF_FFFF,
    };
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/ISO-HDLC ("check" value) vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..8192u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let oneshot = crc32(&data);
        for chunk_size in [1usize, 7, 256, 1000] {
            let mut c = Crc32::new();
            for chunk in data.chunks(chunk_size) {
                c.update(chunk);
            }
            assert_eq!(c.finalize(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn append_continues_a_finalised_checksum() {
        let a = b"hello, ";
        let b = b"world";
        let whole = {
            let mut all = a.to_vec();
            all.extend_from_slice(b);
            crc32(&all)
        };
        assert_eq!(crc32_append(crc32(a), b), whole);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = vec![0x42u8; 128];
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
