//! Reference-counted, pool-backed byte buffers for the zero-copy serving
//! data path.
//!
//! [`Chunk`] is a `Bytes`-style view: a cheaply cloneable, sliceable window
//! over an immutable `Arc`'d allocation. Cloning or slicing a `Chunk` never
//! copies payload bytes — it bumps a refcount and adjusts offsets. The
//! allocation behind a `Chunk` can come from a [`BufPool`]: a size-classed
//! free list that recycles buffers across jobs, so a steady-state server
//! stops asking the allocator for payload memory altogether. When the last
//! `Chunk` over a pooled allocation drops, the backing `Vec` returns to its
//! pool's free list (from whichever thread the drop happens on).
//!
//! [`BufMut`] is the single-owner writable stage of the same lifecycle:
//! checked out of a pool (or created standalone), filled through its
//! `Vec<u8>` deref, then [`BufMut::freeze`]n into a `Chunk` without copying.
//!
//! The module also keeps process-wide counters (`chunks created`, `payload
//! bytes explicitly copied`) that the bench harnesses report as
//! copies-per-chunk; call [`note_copy`] wherever a data-path memcpy is
//! deliberate so the gauge stays honest.

use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// Smallest pooled size class (4 KiB).
const MIN_CLASS_SHIFT: u32 = 12;
/// Largest pooled size class (1 MiB — matches `MAX_FRAME_BODY`).
const MAX_CLASS_SHIFT: u32 = 20;
const NUM_CLASSES: usize = (MAX_CLASS_SHIFT - MIN_CLASS_SHIFT + 1) as usize;
/// Per-class cap on idle buffers kept for reuse; beyond this, returned
/// buffers are simply freed (bounds idle pool memory at ~sum of
/// 32 × class sizes ≈ 65 MiB for a fully hot pool, far less in practice).
const MAX_FREE_PER_CLASS: usize = 32;

/// Process-wide gauge: number of `Chunk`s materialised (freeze/from_vec/
/// copies — not clones or slices, which are the zero-copy operations).
static CHUNKS_CREATED: AtomicU64 = AtomicU64::new(0);
/// Process-wide gauge: payload bytes copied by explicit data-path memcpys.
static BYTES_COPIED: AtomicU64 = AtomicU64::new(0);

/// Records `n` payload bytes deliberately copied on the data path.
pub fn note_copy(n: usize) {
    BYTES_COPIED.fetch_add(n as u64, Ordering::Relaxed);
}

/// Snapshot of the process-wide chunk/copy gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalBufStats {
    /// `Chunk`s materialised since process start.
    pub chunks_created: u64,
    /// Payload bytes explicitly copied on the data path.
    pub bytes_copied: u64,
}

/// Reads the process-wide chunk/copy gauges.
pub fn global_stats() -> GlobalBufStats {
    GlobalBufStats {
        chunks_created: CHUNKS_CREATED.load(Ordering::Relaxed),
        bytes_copied: BYTES_COPIED.load(Ordering::Relaxed),
    }
}

/// The shared state behind a [`BufPool`]: one free list per power-of-two
/// size class plus hit/miss/recycle gauges.
struct PoolShared {
    classes: [Mutex<Vec<Vec<u8>>>; NUM_CLASSES],
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    discarded: AtomicU64,
}

impl PoolShared {
    fn new() -> Self {
        PoolShared {
            classes: std::array::from_fn(|_| Mutex::new(Vec::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
        }
    }

    /// Class index for a request of `capacity` bytes, or `None` when the
    /// request is larger than the biggest pooled class.
    fn class_for(capacity: usize) -> Option<usize> {
        let shift = usize::BITS - capacity.max(1).next_power_of_two().leading_zeros() - 1;
        let shift = shift.max(MIN_CLASS_SHIFT);
        if shift > MAX_CLASS_SHIFT {
            None
        } else {
            Some((shift - MIN_CLASS_SHIFT) as usize)
        }
    }

    fn class_bytes(class: usize) -> usize {
        1usize << (MIN_CLASS_SHIFT + class as u32)
    }

    fn checkout(&self, capacity: usize) -> Vec<u8> {
        match Self::class_for(capacity) {
            Some(class) => {
                if let Some(buf) = self.classes[class].lock().unwrap().pop() {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    buf
                } else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    Vec::with_capacity(Self::class_bytes(class))
                }
            }
            None => {
                // Oversized request: allocate exactly, never recycled.
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(capacity)
            }
        }
    }

    fn recycle(&self, mut buf: Vec<u8>) {
        // Only buffers whose capacity is exactly a pooled class size go
        // back on a free list; anything else (oversized, or grown past its
        // class by a mid-write realloc) is freed.
        let cap = buf.capacity();
        let back = Self::class_for(cap)
            .filter(|&class| Self::class_bytes(class) == cap)
            .and_then(|class| {
                let mut free = self.classes[class].lock().unwrap();
                if free.len() < MAX_FREE_PER_CLASS {
                    buf.clear();
                    free.push(std::mem::take(&mut buf));
                    Some(())
                } else {
                    None
                }
            });
        match back {
            Some(()) => {
                self.recycled.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.discarded.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Gauges for one [`BufPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served from a free list.
    pub hits: u64,
    /// Checkouts that had to allocate.
    pub misses: u64,
    /// Buffers returned to a free list after their last `Chunk` dropped.
    pub recycled: u64,
    /// Buffers freed instead of recycled (full free list or odd capacity).
    pub discarded: u64,
}

/// A size-classed buffer pool. Cloning a `BufPool` shares the underlying
/// free lists; the pool is fully thread-safe and buffers may be returned
/// from any thread.
#[derive(Clone)]
pub struct BufPool {
    shared: Arc<PoolShared>,
}

impl Default for BufPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BufPool {
            shared: Arc::new(PoolShared::new()),
        }
    }

    /// Checks out a writable buffer with at least `capacity` bytes of
    /// room. The buffer returns to this pool when it (or the last `Chunk`
    /// frozen from it) drops.
    pub fn get(&self, capacity: usize) -> BufMut {
        BufMut {
            vec: Some(self.shared.checkout(capacity)),
            pool: Some(Arc::downgrade(&self.shared)),
        }
    }

    /// Reads the pool gauges.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.shared.hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            recycled: self.shared.recycled.load(Ordering::Relaxed),
            discarded: self.shared.discarded.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for BufPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufPool")
            .field("stats", &self.stats())
            .finish()
    }
}

/// The immutable allocation behind one or more [`Chunk`]s. Dropping the
/// last reference hands the backing `Vec` back to its origin pool (if the
/// pool is still alive).
struct PoolAlloc {
    buf: Vec<u8>,
    pool: Option<Weak<PoolShared>>,
}

impl Drop for PoolAlloc {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take().and_then(|weak| weak.upgrade()) {
            pool.recycle(std::mem::take(&mut self.buf));
        }
    }
}

fn empty_alloc() -> &'static Arc<PoolAlloc> {
    static EMPTY: OnceLock<Arc<PoolAlloc>> = OnceLock::new();
    EMPTY.get_or_init(|| {
        Arc::new(PoolAlloc {
            buf: Vec::new(),
            pool: None,
        })
    })
}

/// A cheaply cloneable, sliceable, immutable view over a (possibly pooled)
/// byte allocation. Clone and [`Chunk::slice`] are O(1) and never copy
/// payload bytes.
#[derive(Clone)]
pub struct Chunk {
    alloc: Arc<PoolAlloc>,
    start: usize,
    len: usize,
}

impl Chunk {
    /// The empty chunk (no allocation).
    pub fn empty() -> Self {
        Chunk {
            alloc: Arc::clone(empty_alloc()),
            start: 0,
            len: 0,
        }
    }

    /// Wraps an owned `Vec` as a chunk without copying. The vec is freed
    /// normally when the last clone drops (it never entered a pool).
    pub fn from_vec(vec: Vec<u8>) -> Self {
        CHUNKS_CREATED.fetch_add(1, Ordering::Relaxed);
        let len = vec.len();
        Chunk {
            alloc: Arc::new(PoolAlloc {
                buf: vec,
                pool: None,
            }),
            start: 0,
            len,
        }
    }

    /// Copies `data` into a fresh chunk. This is the explicit-copy
    /// constructor — it counts toward the process copy gauge.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        note_copy(data.len());
        Self::from_vec(data.to_vec())
    }

    /// Number of payload bytes in view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// O(1) sub-view of this chunk. Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Chunk {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds for chunk of {}",
            self.len
        );
        Chunk {
            alloc: Arc::clone(&self.alloc),
            start: self.start + start,
            len: end - start,
        }
    }

    /// The bytes in view.
    pub fn as_slice(&self) -> &[u8] {
        &self.alloc.buf[self.start..self.start + self.len]
    }
}

impl Deref for Chunk {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Chunk {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Chunk {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Chunk {}

impl PartialEq<[u8]> for Chunk {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Chunk {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::fmt::Debug for Chunk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Chunk({} bytes)", self.len)
    }
}

impl From<Vec<u8>> for Chunk {
    fn from(vec: Vec<u8>) -> Self {
        Chunk::from_vec(vec)
    }
}

/// A single-owner writable buffer, optionally checked out of a [`BufPool`].
/// Fill it through its `Vec<u8>` deref (so existing `encode_*_into(&mut
/// Vec<u8>)` writers work unchanged), then [`freeze`](BufMut::freeze) it
/// into an immutable [`Chunk`] without copying. Dropping an unfrozen
/// `BufMut` returns the buffer to its pool.
pub struct BufMut {
    vec: Option<Vec<u8>>,
    pool: Option<Weak<PoolShared>>,
}

impl BufMut {
    /// A pool-less writable buffer with at least `capacity` bytes of room.
    pub fn with_capacity(capacity: usize) -> Self {
        BufMut {
            vec: Some(Vec::with_capacity(capacity)),
            pool: None,
        }
    }

    /// Freezes the written bytes into an immutable, cloneable [`Chunk`].
    /// No bytes are copied; the allocation (and its pool membership)
    /// carries over.
    pub fn freeze(mut self) -> Chunk {
        CHUNKS_CREATED.fetch_add(1, Ordering::Relaxed);
        let vec = self.vec.take().expect("freeze consumes the buffer");
        let len = vec.len();
        Chunk {
            alloc: Arc::new(PoolAlloc {
                buf: vec,
                pool: self.pool.take(),
            }),
            start: 0,
            len,
        }
    }
}

impl Deref for BufMut {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        self.vec.as_ref().expect("buffer not frozen")
    }
}

impl DerefMut for BufMut {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        self.vec.as_mut().expect("buffer not frozen")
    }
}

impl Drop for BufMut {
    fn drop(&mut self) {
        if let Some(buf) = self.vec.take() {
            if let Some(pool) = self.pool.take().and_then(|weak| weak.upgrade()) {
                pool.recycle(buf);
            }
        }
    }
}

impl std::fmt::Debug for BufMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BufMut({} bytes written)",
            self.vec.as_ref().map_or(0, Vec::len)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_views_share_the_allocation() {
        let c = Chunk::from_vec((0u8..64).collect());
        let mid = c.slice(16..48);
        assert_eq!(mid.len(), 32);
        assert_eq!(mid[0], 16);
        let sub = mid.slice(..8);
        assert_eq!(&sub[..], &(16u8..24).collect::<Vec<_>>()[..]);
        let clone = sub.clone();
        drop(c);
        drop(mid);
        assert_eq!(&clone[..], &(16u8..24).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn pool_recycles_after_last_chunk_drop() {
        let pool = BufPool::new();
        let mut b = pool.get(100);
        b.extend_from_slice(&[1, 2, 3]);
        let chunk = b.freeze();
        let view = chunk.slice(1..3);
        drop(chunk);
        assert_eq!(pool.stats().recycled, 0, "view still alive");
        drop(view);
        assert_eq!(pool.stats().recycled, 1);
        // The next checkout of the same class is a hit.
        let before = pool.stats().hits;
        let _b2 = pool.get(100);
        assert_eq!(pool.stats().hits, before + 1);
    }

    #[test]
    fn unfrozen_bufmut_returns_to_pool() {
        let pool = BufPool::new();
        drop(pool.get(8));
        assert_eq!(pool.stats().recycled, 1);
    }

    #[test]
    fn dead_pool_frees_instead_of_recycling() {
        let pool = BufPool::new();
        let b = pool.get(8);
        let chunk = b.freeze();
        drop(pool);
        drop(chunk); // pool gone: must not panic, just frees
    }

    #[test]
    fn oversized_requests_bypass_the_free_lists() {
        let pool = BufPool::new();
        let b = pool.get((1 << 20) + 1);
        drop(b.freeze());
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.recycled, 0);
        assert_eq!(s.discarded, 1);
    }

    #[test]
    fn cross_thread_drop_recycles() {
        let pool = BufPool::new();
        let chunk = pool.get(64).freeze();
        let handle = std::thread::spawn(move || drop(chunk));
        handle.join().unwrap();
        assert_eq!(pool.stats().recycled, 1);
    }

    #[test]
    fn class_rounding() {
        assert_eq!(PoolShared::class_for(0), Some(0));
        assert_eq!(PoolShared::class_for(1), Some(0));
        assert_eq!(PoolShared::class_for(4096), Some(0));
        assert_eq!(PoolShared::class_for(4097), Some(1));
        assert_eq!(PoolShared::class_for(1 << 20), Some(8));
        assert_eq!(PoolShared::class_for((1 << 20) + 1), None);
    }
}
