//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! dedup's reference implementation keys its duplicate-detection table with
//! SHA-1; production deduplicators moved to SHA-256 for a larger fingerprint
//! space. The workload crate lets the digest be selected, so both the
//! paper-faithful configuration (SHA-1) and the stronger one can be
//! exercised by the same pipeline code.
//!
//! The compression function has two kernels behind one entry point:
//!
//! * on x86-64 hosts with the SHA extensions (detected once at runtime),
//!   whole runs of blocks go through `sha256rnds2`/`sha256msg1`/
//!   `sha256msg2` — two rounds per instruction, with the message schedule
//!   computed in vector registers;
//! * everywhere else, a fully unrolled software kernel: the eight working
//!   variables rotate by macro-argument permutation instead of register
//!   shuffles, and the message schedule is a rolling 16-word window
//!   expanded in place as each round consumes it, rather than a 64-entry
//!   array materialised up front.
//!
//! The straightforward loop implementation is kept as [`sha256_scalar`] —
//! the differential-test reference and the baseline for the
//! `checksum_kernels` bench.

/// Length of a SHA-256 digest in bytes.
pub const SHA256_DIGEST_LEN: usize = 32;

/// Round constants (first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const INIT: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length in bytes.
    length: u64,
    /// Partial block buffer.
    buffer: [u8; 64],
    buffered: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha256 {
            state: INIT,
            length: 0,
            buffer: [0u8; 64],
            buffered: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let need = 64 - self.buffered;
            let take = need.min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                compress_blocks(&mut self.state, &block);
                self.buffered = 0;
            }
        }
        // Hand every whole block to the kernel in one call, straight from
        // the caller's slice — no staging copy, and the SHA-NI path keeps
        // its state in registers across the run.
        let whole = data.len() - data.len() % 64;
        if whole > 0 {
            compress_blocks(&mut self.state, &data[..whole]);
            data = &data[whole..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Finalises the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; SHA256_DIGEST_LEN] {
        let bit_len = self.length.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        compress_blocks(&mut self.state, &block);
        let mut out = [0u8; SHA256_DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// Compresses a run of whole 64-byte blocks (`data.len()` must be a
/// multiple of 64), dispatching to the SHA-NI kernel when the host has
/// the SHA extensions and to the unrolled software kernel otherwise.
fn compress_blocks(state: &mut [u32; 8], data: &[u8]) {
    debug_assert_eq!(data.len() % 64, 0);
    #[cfg(target_arch = "x86_64")]
    if shani::available() {
        // SAFETY: the required CPU features were verified at runtime.
        unsafe { shani::compress_blocks(state, data) };
        return;
    }
    for block in data.chunks_exact(64) {
        compress(state, block.try_into().expect("64-byte block"));
    }
}

/// Unrolled software compression function: 64 rounds expressed as macro
/// invocations whose argument order rotates the working variables, with the
/// message schedule expanded lazily over a 16-word ring.
fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 16];
    for (i, word) in w.iter_mut().enumerate() {
        *word = u32::from_be_bytes([
            block[i * 4],
            block[i * 4 + 1],
            block[i * 4 + 2],
            block[i * 4 + 3],
        ]);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

    // One round: only `d` and `h` are written, so rotating the argument
    // order across invocations replaces the 8-way register shuffle of the
    // loop form.
    macro_rules! rnd {
        ($a:ident,$b:ident,$c:ident,$d:ident,$e:ident,$f:ident,$g:ident,$h:ident,$i:expr,$wi:expr) => {{
            let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
            let ch = ($e & $f) ^ (!$e & $g);
            let t1 = $h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[$i])
                .wrapping_add($wi);
            let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
            let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
            $d = $d.wrapping_add(t1);
            $h = t1.wrapping_add(s0.wrapping_add(maj));
        }};
    }
    // Schedule word for round $i >= 16, updated in place in the ring.
    macro_rules! sched {
        ($i:expr) => {{
            let w15 = w[($i + 1) & 15];
            let w2 = w[($i + 14) & 15];
            let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
            let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
            w[$i & 15] = w[$i & 15]
                .wrapping_add(s0)
                .wrapping_add(w[($i + 9) & 15])
                .wrapping_add(s1);
            w[$i & 15]
        }};
    }
    macro_rules! wload {
        ($i:expr) => {
            w[$i & 15]
        };
    }
    macro_rules! eight {
        ($i:expr, $get:ident) => {{
            rnd!(a, b, c, d, e, f, g, h, $i, $get!($i));
            rnd!(h, a, b, c, d, e, f, g, $i + 1, $get!($i + 1));
            rnd!(g, h, a, b, c, d, e, f, $i + 2, $get!($i + 2));
            rnd!(f, g, h, a, b, c, d, e, $i + 3, $get!($i + 3));
            rnd!(e, f, g, h, a, b, c, d, $i + 4, $get!($i + 4));
            rnd!(d, e, f, g, h, a, b, c, $i + 5, $get!($i + 5));
            rnd!(c, d, e, f, g, h, a, b, $i + 6, $get!($i + 6));
            rnd!(b, c, d, e, f, g, h, a, $i + 7, $get!($i + 7));
        }};
    }

    eight!(0, wload);
    eight!(8, wload);
    eight!(16, sched);
    eight!(24, sched);
    eight!(32, sched);
    eight!(40, sched);
    eight!(48, sched);
    eight!(56, sched);

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// The x86-64 SHA-extensions kernel: two rounds per `sha256rnds2`, with
/// the message schedule expanded four words at a time in vector registers
/// (`sha256msg1`/`sha256msg2`). The working state stays in the ABEF/CDGH
/// register split the instructions operate on for the whole block run.
#[cfg(target_arch = "x86_64")]
mod shani {
    use super::K;
    use std::arch::x86_64::*;
    use std::sync::OnceLock;

    /// Runtime detection, probed once: `sha256rnds2` needs the SHA
    /// extensions, the swizzles use SSSE3/SSE4.1.
    pub fn available() -> bool {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            is_x86_feature_detected!("sha")
                && is_x86_feature_detected!("ssse3")
                && is_x86_feature_detected!("sse4.1")
        })
    }

    /// # Safety
    ///
    /// The host must support the `sha`, `ssse3` and `sse4.1` features
    /// (guaranteed when [`available`] returned true), and `data.len()`
    /// must be a multiple of 64.
    #[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
    pub unsafe fn compress_blocks(state: &mut [u32; 8], data: &[u8]) {
        // Big-endian word loads: one byte shuffle per 16 message bytes.
        let be_mask = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0bu64 as i64, 0x0405_0607_0001_0203);

        // `state` is [a,b,c,d,e,f,g,h]; sha256rnds2 wants the (ABEF, CDGH)
        // split, so swizzle on the way in and back on the way out.
        let dcba = _mm_loadu_si128(state.as_ptr().cast());
        let hgfe = _mm_loadu_si128(state.as_ptr().add(4).cast());
        let badc = _mm_shuffle_epi32(dcba, 0xB1);
        let fehg = _mm_shuffle_epi32(hgfe, 0x1B);
        let mut abef = _mm_alignr_epi8(badc, fehg, 8);
        let mut cdgh = _mm_blend_epi16(fehg, badc, 0xF0);

        // Four K constants for rounds 4i..4i+4, packed for _mm_add_epi32.
        macro_rules! k4 {
            ($i:expr) => {
                _mm_set_epi32(
                    K[$i * 4 + 3] as i32,
                    K[$i * 4 + 2] as i32,
                    K[$i * 4 + 1] as i32,
                    K[$i * 4] as i32,
                )
            };
        }
        // Four rounds on message words $w (one rnds2 per state half).
        macro_rules! rounds4 {
            ($w:expr, $i:expr) => {{
                let wk = _mm_add_epi32($w, k4!($i));
                cdgh = _mm_sha256rnds2_epu32(cdgh, abef, wk);
                abef = _mm_sha256rnds2_epu32(abef, cdgh, _mm_shuffle_epi32(wk, 0x0E));
            }};
        }
        // The next four schedule words from the previous sixteen
        // ($w0 oldest): msg1 covers the sigma0 terms, the alignr adds
        // W[t-7], msg2 finishes with sigma1 of the just-computed words.
        macro_rules! sched4 {
            ($w0:expr, $w1:expr, $w2:expr, $w3:expr) => {{
                let partial =
                    _mm_add_epi32(_mm_sha256msg1_epu32($w0, $w1), _mm_alignr_epi8($w3, $w2, 4));
                _mm_sha256msg2_epu32(partial, $w3)
            }};
        }

        for block in data.chunks_exact(64) {
            let abef_in = abef;
            let cdgh_in = cdgh;

            let mut w0 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().cast()), be_mask);
            let mut w1 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(16).cast()), be_mask);
            let mut w2 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(32).cast()), be_mask);
            let mut w3 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(48).cast()), be_mask);

            rounds4!(w0, 0);
            rounds4!(w1, 1);
            rounds4!(w2, 2);
            rounds4!(w3, 3);
            let mut w4 = sched4!(w0, w1, w2, w3);
            rounds4!(w4, 4);
            w0 = sched4!(w1, w2, w3, w4);
            rounds4!(w0, 5);
            w1 = sched4!(w2, w3, w4, w0);
            rounds4!(w1, 6);
            w2 = sched4!(w3, w4, w0, w1);
            rounds4!(w2, 7);
            w3 = sched4!(w4, w0, w1, w2);
            rounds4!(w3, 8);
            w4 = sched4!(w0, w1, w2, w3);
            rounds4!(w4, 9);
            w0 = sched4!(w1, w2, w3, w4);
            rounds4!(w0, 10);
            w1 = sched4!(w2, w3, w4, w0);
            rounds4!(w1, 11);
            w2 = sched4!(w3, w4, w0, w1);
            rounds4!(w2, 12);
            w3 = sched4!(w4, w0, w1, w2);
            rounds4!(w3, 13);
            w4 = sched4!(w0, w1, w2, w3);
            rounds4!(w4, 14);
            w0 = sched4!(w1, w2, w3, w4);
            rounds4!(w0, 15);

            abef = _mm_add_epi32(abef, abef_in);
            cdgh = _mm_add_epi32(cdgh, cdgh_in);
        }

        let feba = _mm_shuffle_epi32(abef, 0x1B);
        let dchg = _mm_shuffle_epi32(cdgh, 0xB1);
        let dcba = _mm_blend_epi16(feba, dchg, 0xF0);
        let hgfe = _mm_alignr_epi8(dchg, feba, 8);
        _mm_storeu_si128(state.as_mut_ptr().cast(), dcba);
        _mm_storeu_si128(state.as_mut_ptr().add(4).cast(), hgfe);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; SHA256_DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-256 via the straightforward loop implementation (64-entry
/// schedule materialised up front, one `for` loop over the rounds). This is
/// the reference the unrolled kernel is verified against and the baseline
/// for the `checksum_kernels` bench; production callers should use
/// [`sha256`].
pub fn sha256_scalar(data: &[u8]) -> [u8; SHA256_DIGEST_LEN] {
    fn compress_scalar(state: &mut [u32; 8], block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }

    let mut state = INIT;
    let mut chunks = data.chunks_exact(64);
    for block in &mut chunks {
        let mut b = [0u8; 64];
        b.copy_from_slice(block);
        compress_scalar(&mut state, &b);
    }
    // Padding: 0x80, zeros to 56 mod 64, then the bit length big-endian.
    let rem = chunks.remainder();
    let mut tail = [0u8; 128];
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let tail_blocks = if rem.len() < 56 { 1 } else { 2 };
    let bit_len = (data.len() as u64).wrapping_mul(8);
    tail[tail_blocks * 64 - 8..tail_blocks * 64].copy_from_slice(&bit_len.to_be_bytes());
    for i in 0..tail_blocks {
        let mut b = [0u8; 64];
        b.copy_from_slice(&tail[i * 64..i * 64 + 64]);
        compress_scalar(&mut state, &b);
    }
    let mut out = [0u8; SHA256_DIGEST_LEN];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// One-shot SHA-256 rendered as lowercase hex.
pub fn sha256_hex(data: &[u8]) -> String {
    let digest = sha256(data);
    let mut s = String::with_capacity(SHA256_DIGEST_LEN * 2);
    for byte in digest {
        s.push_str(&format!("{byte:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // FIPS 180-4 / NIST examples.
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        assert_eq!(
            sha256_hex(b"The quick brown fox jumps over the lazy dog"),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256_hex(&data),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn scalar_reference_matches_kernel_on_boundary_lengths() {
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 128, 200] {
            let data: Vec<u8> = (0..len as u32).map(|i| (i * 37 + 11) as u8).collect();
            assert_eq!(sha256(&data), sha256_scalar(&data), "length {len}");
        }
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 241) as u8).collect();
        let oneshot = sha256(&data);
        assert_eq!(oneshot, sha256_scalar(&data));
        for chunk_size in [1usize, 3, 63, 64, 65, 1000] {
            let mut h = Sha256::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn boundary_lengths_around_block_size() {
        for len in 50..70usize {
            let data = vec![0x5Au8; len];
            let digest1 = sha256(&data);
            let mut h = Sha256::new();
            h.update(&data[..len / 2]);
            h.update(&data[len / 2..]);
            assert_eq!(h.finalize(), digest1, "length {len}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500u32 {
            let digest = sha256(&i.to_le_bytes());
            assert!(seen.insert(digest));
        }
    }
}
