//! SHA-1 (FIPS 180-1), implemented from scratch.
//!
//! dedup fingerprints each chunk with SHA-1 and keys its duplicate-detection
//! hash table with the digest. Cryptographic strength is irrelevant here —
//! we need the exact functional behaviour (so well-known test vectors can
//! validate the implementation) and reasonable throughput.

/// Length of a SHA-1 digest in bytes.
pub const DIGEST_LEN: usize = 20;

/// Incremental SHA-1 hasher.
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    length: u64,
    /// Partial block buffer.
    buffer: [u8; 64],
    buffered: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            length: 0,
            buffer: [0u8; 64],
            buffered: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        // Fill the partial block first.
        if self.buffered > 0 {
            let need = 64 - self.buffered;
            let take = need.min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.process_block(&block);
                self.buffered = 0;
            }
        }
        // Whole blocks straight from the input.
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.process_block(&b);
            data = rest;
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Finalises the hash and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.length.wrapping_mul(8);
        // Append 0x80, pad with zeros to 56 mod 64, then the length.
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // `update` counts padding into length, so write the saved bit length
        // directly into the final block.
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.process_block(&block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
pub fn sha1(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-1 rendered as lowercase hex.
pub fn sha1_hex(data: &[u8]) -> String {
    let digest = sha1(data);
    let mut s = String::with_capacity(DIGEST_LEN * 2);
    for byte in digest {
        s.push_str(&format!("{byte:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // FIPS 180-1 / RFC 3174 test vectors.
        assert_eq!(sha1_hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(sha1_hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            sha1_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            sha1_hex(b"The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(sha1_hex(&data), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = sha1(&data);
        for chunk_size in [1usize, 3, 63, 64, 65, 1000] {
            let mut h = Sha1::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        // Not a cryptographic claim, just a sanity check over a small set.
        let mut seen = std::collections::HashSet::new();
        for i in 0..500u32 {
            let digest = sha1(&i.to_le_bytes());
            assert!(seen.insert(digest));
        }
    }

    #[test]
    fn boundary_lengths_around_block_size() {
        // Exercise the padding logic at every length near the block size.
        for len in 50..70usize {
            let data = vec![0xABu8; len];
            let digest1 = sha1(&data);
            let mut h = Sha1::new();
            h.update(&data[..len / 2]);
            h.update(&data[len / 2..]);
            assert_eq!(h.finalize(), digest1, "length {len}");
        }
    }
}
