//! Property-based tests for the pooled buffer layer and differential
//! tests pinning the optimised checksum kernels bit-exact against their
//! scalar references.

use checksum::buf::{BufPool, Chunk};
use checksum::crc32::{crc32_scalar, Crc32};
use checksum::sha256::{sha256_scalar, Sha256};
use proptest::prelude::*;

fn payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..4_096)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // ------------------------------------------------ Chunk / BufPool --

    #[test]
    fn slicing_matches_the_equivalent_byte_range(
        data in payload(),
        a in 0usize..4_096,
        b in 0usize..4_096,
    ) {
        let (start, end) = (a.min(b).min(data.len()), a.max(b).min(data.len()));
        let chunk = Chunk::from_vec(data.clone());
        prop_assert_eq!(chunk.slice(start..end).as_slice(), &data[start..end]);
        // Nested slices compose: slicing the slice re-indexes from its start.
        let outer = chunk.slice(start..);
        let inner_end = end - start;
        prop_assert_eq!(outer.slice(..inner_end).as_slice(), &data[start..end]);
    }

    #[test]
    fn clones_and_slices_alias_one_allocation(
        data in proptest::collection::vec(any::<u8>(), 1..4_096),
        cut in 0usize..4_096,
    ) {
        let cut = cut.min(data.len() - 1);
        let chunk = Chunk::from_vec(data);
        let clone = chunk.clone();
        let tail = chunk.slice(cut..);
        // All three views point into the same backing storage: the tail's
        // first byte lives exactly `cut` bytes past the clone's base.
        prop_assert_eq!(clone.as_slice().as_ptr(), chunk.as_slice().as_ptr());
        prop_assert_eq!(
            tail.as_slice().as_ptr() as usize,
            chunk.as_slice().as_ptr() as usize + cut
        );
    }

    #[test]
    fn recycling_waits_for_the_last_view_to_drop(
        len in 1usize..65_536,
        cut in 0usize..65_536,
    ) {
        let pool = BufPool::new();
        let mut buf = pool.get(len);
        buf.extend_from_slice(&vec![0xA5u8; len]);
        let chunk = buf.freeze();
        let tail = chunk.slice(cut.min(len - 1)..);
        drop(chunk);
        // A surviving slice still pins the allocation.
        prop_assert_eq!(pool.stats().recycled, 0);
        drop(tail);
        prop_assert_eq!(pool.stats().recycled, 1);
        // The recycled buffer satisfies the next same-class request.
        let _again = pool.get(len);
        prop_assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn cross_thread_drops_recycle_into_the_owning_pool(lens in proptest::collection::vec(1usize..32_768, 1..8)) {
        let pool = BufPool::new();
        let chunks: Vec<Chunk> = lens
            .iter()
            .map(|&len| {
                let mut buf = pool.get(len);
                buf.extend_from_slice(&vec![0x5Au8; len]);
                buf.freeze()
            })
            .collect();
        let expect = chunks.len() as u64;
        std::thread::spawn(move || drop(chunks)).join().unwrap();
        prop_assert_eq!(pool.stats().recycled, expect);
    }

    #[test]
    fn pooled_round_trips_preserve_bytes(data in payload()) {
        let pool = BufPool::new();
        let mut buf = pool.get(data.len());
        buf.extend_from_slice(&data);
        let chunk = buf.freeze();
        prop_assert_eq!(chunk.as_slice(), data.as_slice());
        prop_assert_eq!(chunk.len(), data.len());
    }

    // -------------------------------------- kernel vs scalar reference --

    #[test]
    fn crc32_kernel_matches_scalar_at_any_alignment(
        data in payload(),
        offset in 0usize..64,
    ) {
        // Shift the slice start so the slice-by-8 kernel sees every
        // possible misalignment of its 8-byte inner loop.
        let mut shifted = vec![0u8; offset];
        shifted.extend_from_slice(&data);
        let view = &shifted[offset..];
        let mut kernel = Crc32::new();
        kernel.update(view);
        prop_assert_eq!(kernel.finalize(), crc32_scalar(view));
    }

    #[test]
    fn crc32_kernel_matches_scalar_under_arbitrary_splits(
        data in payload(),
        splits in proptest::collection::vec(0usize..4_096, 0..6),
    ) {
        let mut cuts: Vec<usize> = splits.into_iter().map(|s| s.min(data.len())).collect();
        cuts.sort_unstable();
        let mut kernel = Crc32::new();
        let mut prev = 0;
        for cut in cuts.into_iter().chain(std::iter::once(data.len())) {
            kernel.update(&data[prev..cut]);
            prev = cut;
        }
        prop_assert_eq!(kernel.finalize(), crc32_scalar(&data));
    }

    #[test]
    fn sha256_kernel_matches_scalar_at_any_alignment(
        data in payload(),
        offset in 0usize..64,
    ) {
        let mut shifted = vec![0u8; offset];
        shifted.extend_from_slice(&data);
        let view = &shifted[offset..];
        let mut kernel = Sha256::new();
        kernel.update(view);
        prop_assert_eq!(kernel.finalize(), sha256_scalar(view));
    }

    #[test]
    fn sha256_kernel_matches_scalar_under_arbitrary_splits(
        data in payload(),
        splits in proptest::collection::vec(0usize..4_096, 0..6),
    ) {
        let mut cuts: Vec<usize> = splits.into_iter().map(|s| s.min(data.len())).collect();
        cuts.sort_unstable();
        let mut kernel = Sha256::new();
        let mut prev = 0;
        for cut in cuts.into_iter().chain(std::iter::once(data.len())) {
            kernel.update(&data[prev..cut]);
            prev = cut;
        }
        prop_assert_eq!(kernel.finalize(), sha256_scalar(&data));
    }

    #[test]
    fn digests_are_stable_across_chunk_views(data in payload(), pieces in 1usize..8) {
        // Feeding the kernels through pooled Chunk slices (the serving
        // data path) must equal hashing the contiguous input.
        let chunk = Chunk::from_vec(data.clone());
        let step = data.len().div_ceil(pieces).max(1);
        let mut crc = Crc32::new();
        let mut sha = Sha256::new();
        let mut off = 0;
        while off < chunk.len() {
            let end = (off + step).min(chunk.len());
            let view = chunk.slice(off..end);
            crc.update(&view);
            sha.update(&view);
            off = end;
        }
        prop_assert_eq!(crc.finalize(), crc32_scalar(&data));
        prop_assert_eq!(sha.finalize(), sha256_scalar(&data));
    }
}
