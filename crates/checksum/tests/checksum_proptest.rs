//! Property-based tests for the hashing and content-defined-chunking
//! substrate that dedup's pipeline stages are built on.

use checksum::adler32::adler32;
use checksum::chunker::{chunk_boundaries, split_chunks, ChunkerConfig};
use checksum::crc32::{crc32, crc32_append, Crc32};
use checksum::sha1::{sha1, Sha1};
use checksum::sha256::{sha256, Sha256};
use proptest::prelude::*;

fn payload() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..4_096),
        // Low-entropy content exercises the chunker's max-size forcing path.
        proptest::collection::vec(prop_oneof![Just(0u8), Just(1u8)], 0..4_096),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sha1_incremental_matches_one_shot(data in payload(), split in 0usize..4_096) {
        let split = split.min(data.len());
        let mut hasher = Sha1::new();
        hasher.update(&data[..split]);
        hasher.update(&data[split..]);
        prop_assert_eq!(hasher.finalize(), sha1(&data));
    }

    #[test]
    fn sha256_incremental_matches_one_shot(data in payload(), pieces in 1usize..8) {
        let mut hasher = Sha256::new();
        for chunk in data.chunks(data.len().div_ceil(pieces).max(1)) {
            hasher.update(chunk);
        }
        prop_assert_eq!(hasher.finalize(), sha256(&data));
    }

    #[test]
    fn crc32_append_composes(data in payload(), split in 0usize..4_096) {
        let split = split.min(data.len());
        let direct = crc32(&data);
        let composed = crc32_append(crc32(&data[..split]), &data[split..]);
        prop_assert_eq!(direct, composed);

        let mut streaming = Crc32::new();
        streaming.update(&data[..split]);
        streaming.update(&data[split..]);
        prop_assert_eq!(streaming.finalize(), direct);
    }

    #[test]
    fn digests_distinguish_a_single_flipped_bit(data in proptest::collection::vec(any::<u8>(), 1..1_024), pos in 0usize..1_024, bit in 0u8..8) {
        let pos = pos % data.len();
        let mut flipped = data.clone();
        flipped[pos] ^= 1 << bit;
        prop_assert_ne!(sha1(&data), sha1(&flipped));
        prop_assert_ne!(sha256(&data), sha256(&flipped));
        prop_assert_ne!(crc32(&data), crc32(&flipped));
        prop_assert_ne!(adler32(&data), adler32(&flipped));
    }

    #[test]
    fn chunk_boundaries_partition_the_input(data in payload()) {
        let config = ChunkerConfig::small();
        let boundaries = chunk_boundaries(&data, &config);
        if data.is_empty() {
            prop_assert!(boundaries.is_empty());
        } else {
            // Strictly increasing, ending exactly at the input length.
            prop_assert_eq!(*boundaries.last().unwrap(), data.len());
            for pair in boundaries.windows(2) {
                prop_assert!(pair[0] < pair[1]);
            }
            // Chunks concatenate back to the input.
            let chunks = split_chunks(&data, &config);
            let rejoined: Vec<u8> = chunks.concat();
            prop_assert_eq!(rejoined, data);
        }
    }

    #[test]
    fn chunk_sizes_respect_the_configured_bounds(data in proptest::collection::vec(any::<u8>(), 4_096..16_384)) {
        let config = ChunkerConfig::small();
        let chunks = split_chunks(&data, &config);
        for (i, chunk) in chunks.iter().enumerate() {
            prop_assert!(chunk.len() <= config.max_size, "chunk {i} too large: {}", chunk.len());
            // Every chunk except possibly the last respects the minimum.
            if i + 1 != chunks.len() {
                prop_assert!(chunk.len() >= config.min_size, "chunk {i} too small: {}", chunk.len());
            }
        }
    }

    #[test]
    fn chunking_is_content_defined_after_a_prefix_edit(suffix in proptest::collection::vec(any::<u8>(), 8_192..16_384)) {
        // Content-defined chunking's purpose: editing bytes near the start
        // must not move every later boundary (a fixed-size splitter would
        // shift them all). The boundaries inside the shared suffix, expressed
        // relative to the end of the input, should largely coincide.
        let config = ChunkerConfig::small();
        let mut a = vec![0xAAu8; 17];
        a.extend_from_slice(&suffix);
        let mut b = vec![0x55u8; 399];
        b.extend_from_slice(&suffix);

        let ends_a: Vec<usize> = chunk_boundaries(&a, &config)
            .into_iter()
            .map(|off| a.len() - off)
            .collect();
        let ends_b: Vec<usize> = chunk_boundaries(&b, &config)
            .into_iter()
            .map(|off| b.len() - off)
            .collect();
        let shared = ends_a.iter().filter(|e| ends_b.contains(e)).count();
        // At least the final boundary (distance 0) is shared; for inputs this
        // large the cut points re-synchronise and most tail boundaries agree.
        prop_assert!(shared >= 1);
        let min_cuts = ends_a.len().min(ends_b.len());
        if min_cuts >= 6 {
            prop_assert!(
                shared * 2 >= min_cuts,
                "only {shared} of {min_cuts} boundaries survived a prefix edit"
            );
        }
    }
}

#[test]
fn sha1_matches_known_vectors() {
    // FIPS 180-1 test vectors.
    let empty = sha1(b"");
    assert_eq!(hex(&empty), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    let abc = sha1(b"abc");
    assert_eq!(hex(&abc), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

#[test]
fn sha256_matches_known_vectors() {
    assert_eq!(
        hex(&sha256(b"")),
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    );
    assert_eq!(
        hex(&sha256(b"abc")),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    );
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
