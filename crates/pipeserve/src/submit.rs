//! The unified submission surface: one trait every executor implements.
//!
//! Before this trait existed there were three divergent submit surfaces
//! (`PipeService`, `ShardedService`, and the `piped` server's SUBMIT
//! handler), which made it impossible to write a cross-cutting layer — a
//! result cache, a coalescer, an instrumentation shim — once. [`Submit`] is
//! that single surface: anything that can accept a [`JobSpec`] and hand
//! back a [`JobHandle`] implements it, and layers compose over any `S:
//! Submit` (see [`crate::CachedService`]).
//!
//! ## Verdict finality (the one normative statement of these rules)
//!
//! A rejected submission carries one of three verdicts, with different
//! retry semantics:
//!
//! * [`SubmitError::QueueFull`] is **transient**: the bounded queue was
//!   full at this instant. The rejected [`JobSpec`] is handed back *intact*
//!   inside the error, so the caller (or a placement layer sweeping other
//!   shards) can re-offer it without rebuilding anything — launch closure,
//!   content key, and terminal hook included.
//! * [`SubmitError::FrameWindowExceedsBudget`] is **final**: the job's
//!   frame window can never fit this executor's budget, so retrying the
//!   same spec at the same executor is pointless and the spec is consumed.
//! * [`SubmitError::ShutDown`] is **final**: the executor accepts no new
//!   work, ever.
//!
//! Rejection *accounting* follows the surface, not the attempt:
//! [`Submit::submit`] records a surfaced rejection in the executor's
//! `jobs_rejected` counter (except `ShutDown`, which is lifecycle, not
//! load), while [`Submit::try_submit`] records nothing — it exists
//! precisely so placement/caching layers can probe and re-offer without
//! double-counting. A job swept from a full shard onto another shard was
//! never rejected; only the verdict the original caller actually sees is.

use crate::job::{JobHandle, JobSpec};
use crate::metrics::ServiceMetricsSnapshot;
use crate::service::SubmitError;

/// The unified submission surface over every executor in this crate:
/// [`crate::PipeService`], [`crate::ShardedService`] and
/// [`crate::CachedService`] all implement it, and generic layers are
/// written against it rather than against any concrete type.
///
/// See the [module docs](self) for the verdict-finality and accounting
/// rules shared by all implementations.
pub trait Submit {
    /// Submits a job, recording a surfaced rejection in the executor's
    /// metrics. Returns the [`JobHandle`] immediately; the job runs
    /// asynchronously.
    fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError>;

    /// Like [`submit`](Self::submit) but records **no** rejection: the
    /// probing form composition layers use, so one logical submission is
    /// counted at most once no matter how many executors it was offered
    /// to. [`SubmitError::QueueFull`] hands the spec back intact.
    fn try_submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError>;

    /// A point-in-time snapshot of the executor's aggregate metrics. For
    /// layered executors this is the single-service-shaped aggregate view;
    /// richer per-shard breakdowns stay on the concrete types.
    fn metrics(&self) -> ServiceMetricsSnapshot;

    /// Blocks until no job is queued, admitted or running anywhere in the
    /// executor. New submissions arriving during the drain extend it.
    fn drain(&self);
}
