//! The executor service: admission control, fair dispatch, job table.
//!
//! ## Lock discipline
//!
//! Two mutex families exist: the service-wide scheduler state
//! ([`ServiceInner::sched`]) and the per-job cell ([`JobState::cell`]).
//! **Neither is ever acquired while holding the other** — every path
//! (dispatcher, completion hook, canceller, submitter) takes them strictly
//! one at a time, so no lock-order cycle is possible. The pipeline
//! completion hook in particular runs on a pool worker and may fire inline
//! during registration, which is why the dispatcher registers it outside
//! both locks (on a clone of the pipe handle). None of these mutexes is on
//! the per-node hot path — the ring's lock-free protocol is untouched.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use piper::{MetricsSnapshot, PipeOptions, ThreadPool};

use crate::job::{
    HandleBackend, JobHandle, JobId, JobResult, JobSpec, JobState, JobStatus, LaunchFn,
};
use crate::metrics::{LatencyRegistry, ServiceMetrics, ServiceMetricsSnapshot};
use crate::submit::Submit;

/// Why a submission was not accepted. See the [`crate::submit`] module docs
/// for the verdict-finality rules every executor shares.
#[derive(Debug)]
pub enum SubmitError {
    /// The bounded submission queue is full (backpressure): retry later or
    /// shed load upstream. Transient — the rejected spec rides back inside
    /// the error, untouched, so it can be re-offered without rebuilding
    /// (boxed: a `JobSpec` is a large payload to move through every `?`).
    QueueFull(Box<JobSpec>),
    /// The job's frame window `K` alone exceeds the service's global frame
    /// budget, so it could never be admitted. Final.
    FrameWindowExceedsBudget {
        /// The job's requested window.
        window: usize,
        /// The service's configured budget.
        budget: usize,
    },
    /// The service is shutting down and accepts no new work. Final.
    ShutDown,
}

impl SubmitError {
    /// Recovers the rejected [`JobSpec`] from a transient verdict
    /// ([`QueueFull`](Self::QueueFull)); `None` for final verdicts.
    pub fn into_spec(self) -> Option<JobSpec> {
        match self {
            SubmitError::QueueFull(spec) => Some(*spec),
            _ => None,
        }
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull(_) => write!(f, "submission queue is full"),
            SubmitError::FrameWindowExceedsBudget { window, budget } => write!(
                f,
                "job frame window K={window} exceeds the service frame budget {budget}"
            ),
            SubmitError::ShutDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One queued submission.
struct QueuedJob {
    state: Arc<JobState>,
    options: PipeOptions,
    launch: LaunchFn,
    deadline: Option<Instant>,
}

/// The dispatcher's view of the world, guarded by one mutex.
struct Sched {
    /// One FIFO per priority class.
    queues: [VecDeque<QueuedJob>; 3],
    /// Total queued jobs across the classes.
    queued: usize,
    /// Reserved iteration frames (`Σ K_j` over admitted jobs).
    frames_in_use: usize,
    /// Admitted (launching or executing) jobs, by id. Populated at pick
    /// time, under the same lock as the queue pop, so `drain` never sees a
    /// job in neither place.
    running: HashMap<u64, Arc<JobState>>,
    /// Cursor into the weighted round-robin pattern.
    rr_cursor: usize,
    /// Anti-starvation bookkeeping: a queue head that did not fit the
    /// remaining budget while another job was admitted, as
    /// `(class, job id, bypass count)`. Once the count reaches
    /// [`BYPASS_LIMIT`], admission is reserved for that head until it fits.
    starving: Option<(usize, u64, u32)>,
    /// Set by shutdown once the queue has been cleared: tells the
    /// dispatcher to exit when idle.
    stopped: bool,
}

/// The weighted round-robin dispatch pattern over the priority classes
/// (indices into `Sched::queues`): Interactive×4, Normal×2, Batch×1. Every
/// non-empty class is visited at least once per cycle, so none starves.
const RR_PATTERN: [usize; 7] = [0, 0, 0, 0, 1, 1, 2];

/// How many times a queue head that does not fit the remaining frame
/// budget may be bypassed by jobs of other classes before admission is
/// reserved for it. Bounds the bypass-starvation of large-window jobs: a
/// sustained stream of small jobs can keep `frames_in_use` permanently
/// above `budget − K_big`, and without the reservation the big job's slot
/// would never come up while it fits.
const BYPASS_LIMIT: u32 = 16;

/// What the dispatcher found when scanning the queues.
enum Pick {
    /// A job to launch; its frames are reserved and it is in `running`.
    Job(QueuedJob),
    /// Queues are empty.
    Idle,
    /// Jobs are queued but none fits the remaining frame budget.
    BudgetExhausted,
}

/// One round of the dispatcher loop, decided under the scheduler lock.
enum Step {
    Launch(QueuedJob),
    /// Only expired jobs were found this round; finalize them and rescan.
    PurgeOnly,
    Exit,
}

pub(crate) struct ServiceInner {
    pool: Arc<ThreadPool>,
    frame_budget: usize,
    max_queue: usize,
    pub(crate) metrics: ServiceMetrics,
    /// Per-workload latency histograms; jobs resolve their recorder once
    /// at submit time (see [`crate::job::JobState::latency`]).
    latency: LatencyRegistry,
    sched: Mutex<Sched>,
    /// Wakes the dispatcher (new submission, completion, cancellation,
    /// shutdown) and drain waiters (completion).
    sched_cv: Condvar,
    next_id: AtomicU64,
    shutting_down: AtomicBool,
}

impl ServiceInner {
    /// Removes `state`'s entry from the submission queues if it is still
    /// there and finalizes it as cancelled; otherwise forwards the
    /// cancellation to the running pipeline. The `cancel_requested` flag on
    /// the job state covers the launch-in-progress window: the dispatcher
    /// re-checks it around the launch.
    pub(crate) fn cancel_job(&self, state: &Arc<JobState>) {
        let removed = {
            let mut sched = self.sched.lock().unwrap();
            let q = &mut sched.queues[state.priority.index()];
            match q.iter().position(|j| Arc::ptr_eq(&j.state, state)) {
                Some(pos) => {
                    q.remove(pos);
                    sched.queued -= 1;
                    true
                }
                None => false,
            }
        };
        if removed {
            if state.finalize(JobStatus::Cancelled, JobResult::Cancelled(None)) {
                ServiceMetrics::bump(&self.metrics.jobs_cancelled);
            }
            self.sched_cv.notify_all();
            return;
        }
        // Not queued: either admitted (cancel the pipeline) or already
        // terminal (no-op). The pipeline handle lives in the job cell.
        let cell = state.cell.lock().unwrap();
        if let Some(pipe) = &cell.pipe {
            pipe.cancel();
        }
    }

    /// Scans the queues under the scheduler lock: purges expired entries,
    /// then picks the next admissible job in weighted round-robin order.
    /// Expired entries are pushed to `purged` for finalization outside the
    /// lock.
    fn pick_next(&self, sched: &mut Sched, purged: &mut Vec<QueuedJob>) -> Pick {
        let now = Instant::now();
        for q in &mut sched.queues {
            while let Some(job) = q.front() {
                if job.deadline.is_some_and(|d| now >= d) {
                    purged.push(q.pop_front().expect("front() was Some"));
                    sched.queued -= 1;
                } else {
                    break;
                }
            }
        }
        if sched.queued == 0 {
            sched.starving = None;
            return Pick::Idle;
        }
        // Drop a stale starving entry (its job was admitted, cancelled or
        // expired; a class head only changes by leaving the queue).
        if let Some((class, id, _)) = sched.starving {
            if sched.queues[class]
                .front()
                .is_none_or(|j| j.state.id.0 != id)
            {
                sched.starving = None;
            }
        }
        // Once a head has been bypassed BYPASS_LIMIT times, admission is
        // reserved for it: nothing else is admitted until it fits, which it
        // eventually does because running jobs drain and `K ≤ budget` is
        // checked at submit time.
        let reserved_class = match sched.starving {
            Some((class, _, n)) if n >= BYPASS_LIMIT => Some(class),
            _ => None,
        };
        let mut first_bypassed: Option<(usize, u64)> = None;
        for k in 0..RR_PATTERN.len() {
            let at = (sched.rr_cursor + k) % RR_PATTERN.len();
            let class = RR_PATTERN[at];
            if reserved_class.is_some_and(|rc| rc != class) {
                continue;
            }
            let Some(job) = sched.queues[class].front() else {
                continue;
            };
            if sched.frames_in_use + job.state.frames <= self.frame_budget {
                sched.rr_cursor = (at + 1) % RR_PATTERN.len();
                let job = sched.queues[class].pop_front().expect("front() was Some");
                sched.queued -= 1;
                sched.frames_in_use += job.state.frames;
                sched.running.insert(job.state.id.0, Arc::clone(&job.state));
                ServiceMetrics::raise_peak(
                    &self.metrics.peak_frames_in_use,
                    sched.frames_in_use as u64,
                );
                // Starvation bookkeeping: admitting the starving head
                // clears it; admitting past it costs one bypass credit.
                if matches!(sched.starving, Some((_, id, _)) if id == job.state.id.0) {
                    sched.starving = None;
                } else if let Some((_, _, n)) = &mut sched.starving {
                    *n += 1;
                } else if let Some((bclass, bid)) = first_bypassed {
                    sched.starving = Some((bclass, bid, 1));
                }
                return Pick::Job(job);
            }
            if first_bypassed.is_none() {
                first_bypassed = Some((class, job.state.id.0));
            }
        }
        Pick::BudgetExhausted
    }

    /// A cheap load probe for shard placement: `(reserved frames, queued
    /// jobs)` under one brief scheduler-lock acquisition.
    pub(crate) fn placement_load(&self) -> (usize, usize) {
        let sched = self.sched.lock().unwrap();
        (sched.frames_in_use, sched.queued)
    }

    /// Releases an admitted job's frame reservation and removes it from the
    /// running table.
    fn release(&self, state: &JobState) {
        {
            let mut sched = self.sched.lock().unwrap();
            sched.frames_in_use -= state.frames;
            sched.running.remove(&state.id.0);
        }
        self.sched_cv.notify_all();
    }

    /// Launches one admitted job on the pool and wires up its completion
    /// hook. Runs on the dispatcher thread, outside the scheduler lock.
    fn launch(self: &Arc<Self>, job: QueuedJob) {
        let QueuedJob {
            state,
            options,
            launch,
            ..
        } = job;

        // A cancel that raced admission: don't bother launching.
        if state.cancel_requested.load(Ordering::Acquire) {
            if state.finalize(JobStatus::Cancelled, JobResult::Cancelled(None)) {
                ServiceMetrics::bump(&self.metrics.jobs_cancelled);
            }
            self.release(&state);
            return;
        }

        ServiceMetrics::bump(&self.metrics.jobs_admitted);
        // Admission is the end of the queue wait; stamp it before the
        // (user-code) launch closure runs so its cost lands in `run`, not
        // `queue_wait`.
        let waited = state.submitted_at.elapsed();
        state.latency.queue_wait.record_duration(waited);
        if let Some(trace) = &state.trace {
            trace.buffer.record_elapsed(
                trace.buffer.next_span_id(),
                obs::ROOT_SPAN_ID,
                obs::SpanKind::QueueWait,
                waited,
                0,
            );
        }
        let admitted_at = Instant::now();
        // The launch closure is user code (it may build pipelines, assert on
        // configurations, …): a panic must fail the *job*, not kill the
        // dispatcher thread — a dead dispatcher would wedge the service
        // (reserved frames never released, queued jobs never admitted,
        // drain()/shutdown() deadlocked).
        let pipe = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            launch(&self.pool, options)
        })) {
            Ok(pipe) => pipe,
            Err(payload) => {
                if state.finalize(
                    JobStatus::Failed,
                    JobResult::Panicked(panic_message(payload.as_ref())),
                ) {
                    ServiceMetrics::bump(&self.metrics.jobs_panicked);
                }
                self.release(&state);
                return;
            }
        };
        // The admission span covers exactly the launch closure: sink
        // binding plus pipeline construction and spawn.
        if let Some(trace) = &state.trace {
            trace.buffer.record_elapsed(
                trace.buffer.next_span_id(),
                obs::ROOT_SPAN_ID,
                obs::SpanKind::Admission,
                admitted_at.elapsed(),
                0,
            );
        }
        {
            let mut cell = state.cell.lock().unwrap();
            if cell.result.is_none() {
                cell.status = JobStatus::Running;
            }
            cell.pipe = Some(pipe.clone());
            cell.admitted_at = Some(admitted_at);
        }
        // A cancel issued while the launch was in progress found the job in
        // neither the queue nor the cell and only set the flag: honour it
        // now that the handle is published. The re-check must come *after*
        // the publication above — the cell mutex then orders us against the
        // canceller: either it saw `cell.pipe` and cancelled the pipeline
        // itself, or its flag store happened before our unlock and this
        // load observes it. (Re-checking before publication would leave a
        // window in which the cancel is silently lost and a
        // non-terminating job runs forever.)
        if state.cancel_requested.load(Ordering::Acquire) {
            pipe.cancel();
        }
        // Register the completion hook outside both locks: if the pipeline
        // has already completed, the hook runs inline right here, and
        // `finish_job` takes the cell lock itself.
        let service = Arc::clone(self);
        let job_state = Arc::clone(&state);
        pipe.on_complete(move || service.finish_job(&job_state));
    }

    /// Finalizes a job whose pipeline has completed: harvests stats/panic,
    /// records the terminal state, releases the frame reservation. Runs on
    /// whichever thread completes the pipeline.
    fn finish_job(self: &Arc<Self>, state: &Arc<JobState>) {
        let (pipe, admitted_at) = {
            let mut cell = state.cell.lock().unwrap();
            (cell.pipe.take(), cell.admitted_at)
        };
        let Some(pipe) = pipe else {
            return; // already finalized
        };
        let cancelled = pipe.is_cancelled();
        let (status, result) = match pipe.join() {
            Ok(stats) if cancelled => (JobStatus::Cancelled, JobResult::Cancelled(Some(stats))),
            Ok(stats) => (JobStatus::Completed, JobResult::Completed(stats)),
            Err(payload) => (
                JobStatus::Failed,
                JobResult::Panicked(panic_message(payload.as_ref())),
            ),
        };
        let completed_stats = match (&status, &result) {
            (JobStatus::Completed, JobResult::Completed(stats)) => Some(*stats),
            _ => None,
        };
        // The run span (admission → pipeline terminal) must be in the
        // buffer before finalize runs the terminal hook, which may dump
        // the trace. Recorded for every outcome — a cancelled run's span
        // reflects the time it actually held the pool.
        if let Some(trace) = &state.trace {
            if let Some(at) = admitted_at {
                trace.buffer.record_elapsed(
                    trace.buffer.next_span_id(),
                    obs::ROOT_SPAN_ID,
                    obs::SpanKind::Run,
                    at.elapsed(),
                    completed_stats.map_or(0, |s| s.iterations),
                );
            }
        }
        if state.finalize(status, result) {
            match status {
                JobStatus::Completed => ServiceMetrics::bump(&self.metrics.jobs_completed),
                JobStatus::Cancelled => ServiceMetrics::bump(&self.metrics.jobs_cancelled),
                JobStatus::Failed => ServiceMetrics::bump(&self.metrics.jobs_panicked),
                _ => {}
            }
            // Latency is recorded only for clean completions (the finalize
            // guard makes this at-most-once): cancelled/panicked durations
            // would poison the distributions clients size timeouts from.
            if let Some(stats) = completed_stats {
                let now = Instant::now();
                if let Some(at) = admitted_at {
                    state.latency.run.record_duration(now - at);
                }
                state
                    .latency
                    .service
                    .record_duration(now - state.submitted_at);
                if stats.time_to_first_node_ns > 0 {
                    state.latency.first_node.record(stats.time_to_first_node_ns);
                }
            }
        }
        self.release(state);
    }

    /// The dispatcher thread's main loop.
    fn dispatch_loop(self: &Arc<Self>) {
        loop {
            let mut purged = Vec::new();
            let step = {
                let mut sched = self.sched.lock().unwrap();
                loop {
                    match self.pick_next(&mut sched, &mut purged) {
                        Pick::Job(job) => break Step::Launch(job),
                        Pick::Idle if sched.stopped => break Step::Exit,
                        Pick::Idle | Pick::BudgetExhausted => {
                            if !purged.is_empty() {
                                // Finalize expirations before sleeping.
                                break Step::PurgeOnly;
                            }
                            sched = self.sched_cv.wait(sched).unwrap();
                        }
                    }
                }
            };
            for dead in purged {
                if dead.state.finalize(JobStatus::Expired, JobResult::Expired) {
                    ServiceMetrics::bump(&self.metrics.jobs_expired);
                }
                self.sched_cv.notify_all();
            }
            match step {
                Step::Launch(job) => self.launch(job),
                Step::PurgeOnly => continue,
                Step::Exit => return,
            }
        }
    }
}

/// Renders a panic payload as text, like the standard panic hook does.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Builder for a [`PipeService`].
#[derive(Debug, Clone)]
pub struct ServiceBuilder {
    num_threads: usize,
    max_threads: Option<usize>,
    frame_budget: Option<usize>,
    max_queue: usize,
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        ServiceBuilder {
            num_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            max_threads: None,
            frame_budget: None,
            max_queue: 1024,
        }
    }
}

impl ServiceBuilder {
    /// Number of pool workers (`P`). Defaults to the machine's parallelism.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Makes the pool elastic: it starts with
    /// [`num_threads`](Self::num_threads) workers (clamped into the band)
    /// and [`piper::ThreadPool::resize`] may later move the live count
    /// anywhere in `[min, max]` — an elastic supervisor (see
    /// `ShardedService`) grows it under queue pressure and shrinks it when
    /// idle. The default frame budget and submit-time window resolution use
    /// `max`, so admission does not flap as the pool breathes.
    pub fn elastic_workers(mut self, min: usize, max: usize) -> Self {
        let min = min.max(1);
        let max = max.max(min);
        self.num_threads = self.num_threads.clamp(min, max);
        self.max_threads = Some(max);
        self
    }

    /// The global frame budget: admitted jobs' throttle windows sum to at
    /// most this. Defaults to `8 · 4P` (eight default-window jobs).
    pub fn frame_budget(mut self, frames: usize) -> Self {
        self.frame_budget = Some(frames.max(1));
        self
    }

    /// Capacity of the bounded submission queue (backpressure threshold).
    pub fn max_queue(mut self, depth: usize) -> Self {
        self.max_queue = depth.max(1);
        self
    }

    /// Builds the service, spawning its pool workers and dispatcher thread.
    pub fn build(self) -> PipeService {
        let mut pool_builder = ThreadPool::builder()
            .num_threads(self.num_threads)
            .thread_name_prefix("pipeserve-worker");
        if let Some(max) = self.max_threads {
            pool_builder = pool_builder.max_threads(max);
        }
        let pool = Arc::new(pool_builder.build());
        // Budget on the elastic ceiling, not the live count: admission must
        // not depend on how far the pool happens to be grown right now.
        let frame_budget = self
            .frame_budget
            .unwrap_or(8 * 4 * pool.max_threads())
            .max(1);
        let inner = Arc::new(ServiceInner {
            pool,
            frame_budget,
            max_queue: self.max_queue,
            metrics: ServiceMetrics::default(),
            latency: LatencyRegistry::default(),
            sched: Mutex::new(Sched {
                queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                queued: 0,
                frames_in_use: 0,
                running: HashMap::new(),
                rr_cursor: 0,
                starving: None,
                stopped: false,
            }),
            sched_cv: Condvar::new(),
            next_id: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
        });
        let dispatcher_inner = Arc::clone(&inner);
        let dispatcher = std::thread::Builder::new()
            .name("pipeserve-dispatch".to_string())
            .spawn(move || dispatcher_inner.dispatch_loop())
            .expect("failed to spawn dispatcher thread");
        PipeService {
            inner,
            dispatcher: Some(dispatcher),
        }
    }
}

/// A long-running pipeline executor service; see the [crate docs](crate).
pub struct PipeService {
    inner: Arc<ServiceInner>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl PipeService {
    /// Starts building a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::default()
    }

    /// The shared worker pool (`P` workers) all jobs run on.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.inner.pool
    }

    /// The service's scheduler core, for same-crate layers (the shard
    /// placement supervisor) that outlive a borrow of the service.
    pub(crate) fn inner(&self) -> &Arc<ServiceInner> {
        &self.inner
    }

    /// The configured global frame budget.
    pub fn frame_budget(&self) -> usize {
        self.inner.frame_budget
    }

    /// Records a surfaced rejection in this service's metrics (shutdown is
    /// not a rejection — it matches the pre-sharding accounting).
    pub(crate) fn count_rejection(&self, err: &SubmitError) {
        if !matches!(err, SubmitError::ShutDown) {
            ServiceMetrics::bump(&self.inner.metrics.jobs_rejected);
        }
    }

    /// A snapshot of the underlying pool's scheduler counters.
    pub fn pool_metrics(&self) -> MetricsSnapshot {
        self.inner.pool.metrics()
    }

    /// Shuts the service down: rejects new submissions, cancels queued
    /// jobs, requests cooperative cancellation of running jobs, waits for
    /// everything to drain, and stops the dispatcher. Called automatically
    /// on drop.
    pub fn shutdown(&mut self) {
        if self.dispatcher.is_none() {
            return;
        }
        self.inner.shutting_down.store(true, Ordering::Release);
        // Clear the queue.
        let dropped: Vec<QueuedJob> = {
            let mut sched = self.inner.sched.lock().unwrap();
            let mut dropped = Vec::new();
            for q in &mut sched.queues {
                dropped.extend(q.drain(..));
            }
            sched.queued = 0;
            dropped
        };
        for job in &dropped {
            if job
                .state
                .finalize(JobStatus::Cancelled, JobResult::Cancelled(None))
            {
                ServiceMetrics::bump(&self.inner.metrics.jobs_cancelled);
            }
        }
        // Cancel admitted jobs cooperatively. Same discipline as
        // JobHandle::cancel: the flag is stored *first*, so a job whose
        // launch is still in progress (in `running` but `cell.pipe` not yet
        // published) is caught by the dispatcher's post-publication
        // re-check instead of escaping cancellation entirely.
        let running: Vec<Arc<JobState>> = {
            let sched = self.inner.sched.lock().unwrap();
            sched.running.values().cloned().collect()
        };
        for state in running {
            state.cancel_requested.store(true, Ordering::Release);
            let cell = state.cell.lock().unwrap();
            if let Some(pipe) = &cell.pipe {
                pipe.cancel();
            }
        }
        // Let everything drain, then stop the dispatcher.
        self.drain();
        {
            let mut sched = self.inner.sched.lock().unwrap();
            sched.stopped = true;
        }
        self.inner.sched_cv.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

impl Submit for PipeService {
    /// Submits a job. Returns a [`JobHandle`] immediately, or a
    /// [`SubmitError`] if the service is shutting down, the job could never
    /// fit the frame budget, or the bounded queue is full (backpressure).
    fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        self.try_submit(spec)
            .inspect_err(|err| self.count_rejection(err))
    }

    fn try_submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return Err(SubmitError::ShutDown);
        }
        // Resolve the window against the pool's elastic *ceiling* and pin
        // it into the options, so the ring the launch eventually allocates
        // is exactly the window admission reserved — even if an elastic
        // pool changes its live worker count in between.
        let window = spec.frame_window(self.inner.pool.max_threads());
        if window > self.inner.frame_budget {
            return Err(SubmitError::FrameWindowExceedsBudget {
                window,
                budget: self.inner.frame_budget,
            });
        }
        // The capacity check comes *before* the spec is taken apart, so a
        // QueueFull verdict hands the spec back untouched. Everything after
        // the check stays under the scheduler lock: the bound is exact even
        // under submitter races, and the work done here (state allocation,
        // sink binding for keyed jobs) is cheap by the JobSpec contract.
        let mut sched = self.inner.sched.lock().unwrap();
        if sched.queued >= self.inner.max_queue {
            drop(sched);
            return Err(SubmitError::QueueFull(Box::new(spec)));
        }
        let JobSpec {
            name,
            priority,
            mut options,
            queue_deadline,
            launch,
            on_terminal,
            trace,
            trace_root,
        } = spec;
        options.throttle_limit = Some(window);
        let id = JobId(self.inner.next_id.fetch_add(1, Ordering::Relaxed));
        let recorder = self.inner.latency.recorder(&name);
        let trace = trace.map(|buffer| crate::job::JobTrace {
            buffer,
            root: trace_root,
        });
        let state = JobState::new(id, name, priority, window, recorder, trace, on_terminal);
        let queued = QueuedJob {
            state: Arc::clone(&state),
            options,
            launch: launch.resolve(),
            deadline: queue_deadline.map(|d| state.submitted_at + d),
        };
        sched.queues[priority.index()].push_back(queued);
        sched.queued += 1;
        ServiceMetrics::raise_peak(&self.inner.metrics.peak_queue_depth, sched.queued as u64);
        drop(sched);
        ServiceMetrics::bump(&self.inner.metrics.jobs_submitted);
        self.inner.sched_cv.notify_all();
        Ok(JobHandle {
            state,
            backend: HandleBackend::Service(Arc::downgrade(&self.inner)),
        })
    }

    /// Blocks until the queue is empty and no job is admitted or running.
    /// (New submissions arriving during the drain extend it.)
    fn drain(&self) {
        let mut sched = self.inner.sched.lock().unwrap();
        while sched.queued > 0 || !sched.running.is_empty() {
            sched = self.inner.sched_cv.wait(sched).unwrap();
        }
    }

    /// A snapshot of the aggregate service metrics (counters + gauges).
    fn metrics(&self) -> ServiceMetricsSnapshot {
        let m = &self.inner.metrics;
        let (queue_depth, running, frames_in_use) = {
            let sched = self.inner.sched.lock().unwrap();
            (
                sched.queued as u64,
                sched.running.len() as u64,
                sched.frames_in_use as u64,
            )
        };
        ServiceMetricsSnapshot {
            jobs_submitted: m.jobs_submitted.load(Ordering::Relaxed),
            jobs_admitted: m.jobs_admitted.load(Ordering::Relaxed),
            jobs_rejected: m.jobs_rejected.load(Ordering::Relaxed),
            jobs_completed: m.jobs_completed.load(Ordering::Relaxed),
            jobs_cancelled: m.jobs_cancelled.load(Ordering::Relaxed),
            jobs_panicked: m.jobs_panicked.load(Ordering::Relaxed),
            jobs_expired: m.jobs_expired.load(Ordering::Relaxed),
            peak_queue_depth: m.peak_queue_depth.load(Ordering::Relaxed),
            peak_frames_in_use: m.peak_frames_in_use.load(Ordering::Relaxed),
            queue_depth,
            running,
            frames_in_use,
            frame_budget: self.inner.frame_budget as u64,
            cache_hits: 0,
            cache_misses: 0,
            coalesced: 0,
            latency: self.inner.latency.snapshot(),
        }
    }
}

impl Drop for PipeService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for PipeService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipeService")
            .field("num_threads", &self.inner.pool.num_threads())
            .field("frame_budget", &self.inner.frame_budget)
            .field("max_queue", &self.inner.max_queue)
            .finish()
    }
}
