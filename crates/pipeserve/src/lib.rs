//! **pipeserve** — a multi-tenant pipeline executor service.
//!
//! The `piper` crate exposes `pipe_while` as a blocking, one-pipeline call:
//! the calling thread owns the pool until the pipeline drains. That is the
//! right shape for reproducing the paper's figures and the wrong shape for a
//! service that must run many pipelines for many tenants on one worker
//! fleet. This crate supplies the missing subsystem, modelled on the
//! long-lived `PipelineExecutor` services of production query engines:
//!
//! * [`PipeService`] — a long-running executor owning (or sharing) one
//!   [`piper::ThreadPool`]. Jobs are submitted as [`JobSpec`]s and run
//!   concurrently as detached pipelines (`piper::spawn_pipe`), each bounded
//!   by its own throttle window `K`.
//! * **Admission control** — a global *frame budget*: the sum of the
//!   admitted jobs' throttle windows `Σ K_j` never exceeds the configured
//!   budget, so the service's peak live iteration frames (and therefore its
//!   memory, by the paper's Theorem 11) is bounded regardless of offered
//!   load. A bounded submission queue provides backpressure: when it is
//!   full, [`Submit::submit`] rejects rather than buffering without bound.
//! * **Fair dispatch** — weighted round-robin over three [`Priority`]
//!   classes, FIFO within a class, so a stream of fine-grained `pipe-fib`
//!   jobs cannot starve a dedup job (and vice versa). Every non-empty class
//!   is guaranteed a dispatch slot per scheduling cycle.
//! * **Cooperative cancellation** — [`JobHandle::cancel`] stops a queued job
//!   before it runs and a running job within one iteration frame; in-flight
//!   iterations drain through the normal ring protocol, so no frame leaks.
//! * **Observability** — per-job [`piper::PipeStats`] in the
//!   [`JobResult`], plus aggregate [`ServiceMetricsSnapshot`] (admitted /
//!   rejected / cancelled / expired counts, queue depth, frame-budget
//!   utilization) alongside the pool's own [`piper::MetricsSnapshot`].
//! * **Sharding** — [`ShardedService`] runs N independent services behind
//!   one submit surface: weighted power-of-two-choices placement, per-shard
//!   frame budgets, an optional elastic worker band per pool grown/shrunk
//!   by a queue-depth supervisor, and [`ShardedMetricsSnapshot`] exposing
//!   the per-shard breakdown. See the [`shard`](self) module docs.
//! * **One submit surface** — the [`Submit`] trait (`submit`, `try_submit`,
//!   `metrics`, `drain`) is implemented by [`PipeService`],
//!   [`ShardedService`] and [`CachedService`], so callers and layers are
//!   written once against the trait. See the `submit` module docs for the
//!   shared verdict-finality rules.
//! * **Content-addressed caching** — [`CachedService`] wraps any `Submit`
//!   executor with a bounded LRU of verified outputs keyed by
//!   [`ContentKey`] (workload id + SHA-256 of canonical input) plus request
//!   coalescing: concurrent identical submissions share one pipeline run.
//!
//! # Quick start
//!
//! ```
//! use pipeserve::{JobSpec, PipeService, Priority, Submit};
//! use piper::{PipeOptions, Stage0, NodeOutcome, PipelineIteration};
//!
//! struct Square(u64, std::sync::Arc<std::sync::Mutex<Vec<u64>>>);
//! impl PipelineIteration for Square {
//!     fn run_node(&mut self, _stage: u64) -> NodeOutcome {
//!         self.1.lock().unwrap().push(self.0 * self.0);
//!         NodeOutcome::Done
//!     }
//! }
//!
//! let service = PipeService::builder().num_threads(2).build();
//! let out = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
//! let sink = std::sync::Arc::clone(&out);
//! let job = JobSpec::new(PipeOptions::with_throttle(2), move |i| {
//!     if i == 5 { return Stage0::Stop; }
//!     Stage0::wait(Square(i, std::sync::Arc::clone(&sink)))
//! })
//! .named("squares")
//! .priority(Priority::Interactive);
//! let handle = service.submit(job).unwrap();
//! let result = handle.join();
//! assert!(result.is_completed());
//! assert_eq!(*out.lock().unwrap(), vec![0, 1, 4, 9, 16]);
//! ```
//!
//! See `DESIGN.md` in this crate for the admission / fairness / cancellation
//! protocol and how it layers on the lock-free iteration-frame ring of
//! `crates/piper/DESIGN.md`.

#![warn(missing_docs)]

mod cache;
mod job;
mod metrics;
mod service;
mod shard;
mod submit;

pub use cache::{CacheStats, CachedService};
pub use job::{
    ContentKey, JobHandle, JobId, JobResult, JobSpec, JobStatus, LaunchFn, OutputSink, Priority,
    SinkLaunchFn, TerminalHook,
};
pub use metrics::{
    ServiceMetricsSnapshot, ShardedMetricsSnapshot, WorkloadLatency, UNNAMED_WORKLOAD,
};
pub use service::{PipeService, ServiceBuilder, SubmitError};
pub use shard::{ShardedService, ShardedServiceBuilder};
pub use submit::Submit;
