//! Aggregate service metrics, in the same monotone-counter style as
//! [`piper::Metrics`] so the two snapshots compose into one observability
//! surface.

use obs::{Histogram, HistogramSnapshot};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The workload label used for jobs submitted with an empty name, so every
/// job lands in some latency series.
pub const UNNAMED_WORKLOAD: &str = "_unnamed";

/// Monotone counters kept by a [`crate::PipeService`] (relaxed atomics:
/// instrumentation must not perturb dispatch).
#[derive(Debug, Default)]
pub(crate) struct ServiceMetrics {
    pub(crate) jobs_submitted: AtomicU64,
    pub(crate) jobs_admitted: AtomicU64,
    pub(crate) jobs_rejected: AtomicU64,
    pub(crate) jobs_completed: AtomicU64,
    pub(crate) jobs_cancelled: AtomicU64,
    pub(crate) jobs_panicked: AtomicU64,
    pub(crate) jobs_expired: AtomicU64,
    pub(crate) peak_queue_depth: AtomicU64,
    pub(crate) peak_frames_in_use: AtomicU64,
}

impl ServiceMetrics {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn raise_peak(counter: &AtomicU64, value: u64) {
        counter.fetch_max(value, Ordering::Relaxed);
    }
}

/// The four latency histograms kept per workload (job name). All values
/// are nanoseconds; recording is lock-free (see [`obs::Histogram`]).
#[derive(Debug, Default)]
pub(crate) struct LatencyRecorder {
    /// Submission → admission (time spent in the submission queue).
    pub(crate) queue_wait: Histogram,
    /// Admission → the first pipeline node executing (scheduler reaction
    /// time, from `PipeStats::time_to_first_node_ns`).
    pub(crate) first_node: Histogram,
    /// Admission → terminal verdict (pure run time).
    pub(crate) run: Histogram,
    /// Submission → terminal verdict (what the client observes).
    pub(crate) service: Histogram,
}

/// Per-workload [`LatencyRecorder`]s, keyed by job name. The map is only
/// locked to *resolve* a recorder (once per submission) and to snapshot;
/// the record path itself touches only the resolved `Arc`'s atomics.
#[derive(Debug, Default)]
pub(crate) struct LatencyRegistry {
    workloads: Mutex<HashMap<String, Arc<LatencyRecorder>>>,
}

impl LatencyRegistry {
    /// The recorder for `workload` (empty names map to
    /// [`UNNAMED_WORKLOAD`]), creating it on first use.
    pub(crate) fn recorder(&self, workload: &str) -> Arc<LatencyRecorder> {
        let label = if workload.is_empty() {
            UNNAMED_WORKLOAD
        } else {
            workload
        };
        let mut map = self.workloads.lock().unwrap();
        match map.get(label) {
            Some(recorder) => Arc::clone(recorder),
            None => {
                let recorder = Arc::new(LatencyRecorder::default());
                map.insert(label.to_string(), Arc::clone(&recorder));
                recorder
            }
        }
    }

    /// Snapshots every workload's histograms, sorted by workload name.
    pub(crate) fn snapshot(&self) -> Vec<WorkloadLatency> {
        let map = self.workloads.lock().unwrap();
        let mut out: Vec<WorkloadLatency> = map
            .iter()
            .map(|(name, recorder)| WorkloadLatency {
                workload: name.clone(),
                queue_wait: recorder.queue_wait.snapshot(),
                first_node: recorder.first_node.snapshot(),
                run: recorder.run.snapshot(),
                service: recorder.service.snapshot(),
            })
            .collect();
        drop(map);
        out.sort_by(|a, b| a.workload.cmp(&b.workload));
        out
    }
}

/// Point-in-time latency distributions for one workload (job name). All
/// histograms are in nanoseconds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkloadLatency {
    /// The job name these distributions cover ([`UNNAMED_WORKLOAD`] for
    /// jobs submitted without one).
    pub workload: String,
    /// Submission → admission.
    pub queue_wait: HistogramSnapshot,
    /// Admission → first pipeline node executing.
    pub first_node: HistogramSnapshot,
    /// Admission → terminal verdict.
    pub run: HistogramSnapshot,
    /// Submission → terminal verdict.
    pub service: HistogramSnapshot,
}

/// Formats one histogram as the JSON object used throughout the metrics
/// surface: counts plus quantiles converted from nanoseconds to
/// fractional milliseconds.
fn histogram_json(h: &HistogramSnapshot) -> String {
    let ms = |ns: u64| ns as f64 / 1e6;
    format!(
        concat!(
            "{{\"count\":{},\"mean_ms\":{:.3},\"p50_ms\":{:.3},",
            "\"p90_ms\":{:.3},\"p99_ms\":{:.3},\"p999_ms\":{:.3},\"max_ms\":{:.3}}}"
        ),
        h.count(),
        h.mean() / 1e6,
        ms(h.quantile(0.50)),
        ms(h.quantile(0.90)),
        ms(h.quantile(0.99)),
        ms(h.quantile(0.999)),
        ms(h.max_value()),
    )
}

/// Quotes and escapes `s` as a JSON string literal (workload names come
/// from clients, so they cannot be trusted to be JSON-clean).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl WorkloadLatency {
    /// Histogram-wise merge of two snapshots for the same workload.
    fn merged_with(&self, other: &WorkloadLatency) -> WorkloadLatency {
        WorkloadLatency {
            workload: self.workload.clone(),
            queue_wait: self.queue_wait.merge(&other.queue_wait),
            first_node: self.first_node.merge(&other.first_node),
            run: self.run.merge(&other.run),
            service: self.service.merge(&other.service),
        }
    }

    /// Renders the four distributions as one JSON object (without the
    /// workload name, which is the enclosing map's key).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"queue_wait\":{},\"first_node\":{},\"run\":{},\"service\":{}}}",
            histogram_json(&self.queue_wait),
            histogram_json(&self.first_node),
            histogram_json(&self.run),
            histogram_json(&self.service),
        )
    }
}

/// Merges two per-workload latency lists by workload name, preserving the
/// sorted order both inputs maintain.
fn merge_latency(a: Vec<WorkloadLatency>, b: Vec<WorkloadLatency>) -> Vec<WorkloadLatency> {
    let mut map: BTreeMap<String, WorkloadLatency> = BTreeMap::new();
    for w in a.into_iter().chain(b) {
        match map.entry(w.workload.clone()) {
            Entry::Occupied(mut e) => {
                let merged = e.get().merged_with(&w);
                e.insert(merged);
            }
            Entry::Vacant(e) => {
                e.insert(w);
            }
        }
    }
    map.into_values().collect()
}

/// A point-in-time copy of a service's aggregate metrics, including the
/// live queue/budget gauges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServiceMetricsSnapshot {
    /// Jobs accepted into the submission queue.
    pub jobs_submitted: u64,
    /// Jobs admitted by the controller and launched on the pool.
    pub jobs_admitted: u64,
    /// Submissions rejected by backpressure (queue full) or because the
    /// job's frame window exceeds the whole budget.
    pub jobs_rejected: u64,
    /// Jobs that ran every iteration.
    pub jobs_completed: u64,
    /// Jobs cancelled (queued or mid-run).
    pub jobs_cancelled: u64,
    /// Jobs whose producer or a node panicked.
    pub jobs_panicked: u64,
    /// Jobs expired in the queue past their deadline.
    pub jobs_expired: u64,
    /// High-water mark of the submission-queue depth.
    pub peak_queue_depth: u64,
    /// High-water mark of reserved iteration frames.
    pub peak_frames_in_use: u64,
    /// Current submission-queue depth.
    pub queue_depth: u64,
    /// Jobs currently executing on the pool.
    pub running: u64,
    /// Iteration frames currently reserved (`Σ K_j` over running jobs).
    pub frames_in_use: u64,
    /// The configured global frame budget.
    pub frame_budget: u64,
    /// Keyed submissions answered from the content-addressed result cache
    /// without running a pipeline (zero for uncached executors).
    pub cache_hits: u64,
    /// Keyed submissions that missed the cache and ran a pipeline (zero
    /// for uncached executors).
    pub cache_misses: u64,
    /// Keyed submissions coalesced onto an identical in-flight pipeline
    /// (zero for uncached executors).
    pub coalesced: u64,
    /// Per-workload latency distributions (queue wait, time to first node,
    /// run time, end-to-end service time), sorted by workload name.
    pub latency: Vec<WorkloadLatency>,
}

impl ServiceMetricsSnapshot {
    /// Fraction of the frame budget currently reserved, in `[0, 1]`.
    pub fn frame_budget_utilization(&self) -> f64 {
        if self.frame_budget == 0 {
            0.0
        } else {
            self.frames_in_use as f64 / self.frame_budget as f64
        }
    }

    /// Fraction of submissions rejected, in `[0, 1]` (0 when nothing was
    /// offered).
    pub fn rejection_rate(&self) -> f64 {
        let offered = self.jobs_submitted + self.jobs_rejected;
        if offered == 0 {
            0.0
        } else {
            self.jobs_rejected as f64 / offered as f64
        }
    }

    /// The 99th-percentile queue wait in nanoseconds, merged across every
    /// workload — the single scalar the sharded router's probe signal and
    /// dashboards key on. Returns 0 when no job has been admitted yet.
    pub fn queue_wait_p99_ns(&self) -> u64 {
        self.latency
            .iter()
            .fold(HistogramSnapshot::default(), |acc, w| {
                acc.merge(&w.queue_wait)
            })
            .quantile(0.99)
    }

    /// Renders the snapshot as a single-line JSON object (hand-rolled, like
    /// the bench binaries — no serialization dependency). This is the one
    /// shared formatter behind both the `pipeserve_load` bench report and
    /// the `piped` METRICS wire frame.
    pub fn to_json(&self) -> String {
        let latency: Vec<String> = self
            .latency
            .iter()
            .map(|w| format!("{}:{}", json_string(&w.workload), w.to_json()))
            .collect();
        format!(
            concat!(
                "{{",
                "\"jobs_submitted\":{},",
                "\"jobs_admitted\":{},",
                "\"jobs_rejected\":{},",
                "\"jobs_completed\":{},",
                "\"jobs_cancelled\":{},",
                "\"jobs_panicked\":{},",
                "\"jobs_expired\":{},",
                "\"peak_queue_depth\":{},",
                "\"peak_frames_in_use\":{},",
                "\"queue_depth\":{},",
                "\"running\":{},",
                "\"frames_in_use\":{},",
                "\"frame_budget\":{},",
                "\"cache_hits\":{},",
                "\"cache_misses\":{},",
                "\"coalesced\":{},",
                "\"frame_budget_utilization\":{:.4},",
                "\"rejection_rate\":{:.4},",
                "\"latency\":{{{}}}",
                "}}"
            ),
            self.jobs_submitted,
            self.jobs_admitted,
            self.jobs_rejected,
            self.jobs_completed,
            self.jobs_cancelled,
            self.jobs_panicked,
            self.jobs_expired,
            self.peak_queue_depth,
            self.peak_frames_in_use,
            self.queue_depth,
            self.running,
            self.frames_in_use,
            self.frame_budget,
            self.cache_hits,
            self.cache_misses,
            self.coalesced,
            self.frame_budget_utilization(),
            self.rejection_rate(),
            latency.join(","),
        )
    }
}

impl std::ops::Add for ServiceMetricsSnapshot {
    type Output = ServiceMetricsSnapshot;

    /// Field-wise sum, for aggregating per-shard snapshots. Note that the
    /// peak fields become *sums of per-shard peaks* — an upper bound on the
    /// true aggregate peak (the shards need not have peaked simultaneously).
    fn add(self, other: ServiceMetricsSnapshot) -> ServiceMetricsSnapshot {
        ServiceMetricsSnapshot {
            jobs_submitted: self.jobs_submitted + other.jobs_submitted,
            jobs_admitted: self.jobs_admitted + other.jobs_admitted,
            jobs_rejected: self.jobs_rejected + other.jobs_rejected,
            jobs_completed: self.jobs_completed + other.jobs_completed,
            jobs_cancelled: self.jobs_cancelled + other.jobs_cancelled,
            jobs_panicked: self.jobs_panicked + other.jobs_panicked,
            jobs_expired: self.jobs_expired + other.jobs_expired,
            peak_queue_depth: self.peak_queue_depth + other.peak_queue_depth,
            peak_frames_in_use: self.peak_frames_in_use + other.peak_frames_in_use,
            queue_depth: self.queue_depth + other.queue_depth,
            running: self.running + other.running,
            frames_in_use: self.frames_in_use + other.frames_in_use,
            frame_budget: self.frame_budget + other.frame_budget,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
            coalesced: self.coalesced + other.coalesced,
            latency: merge_latency(self.latency, other.latency),
        }
    }
}

/// A point-in-time copy of a sharded executor's metrics: the field-wise
/// aggregate, the per-shard snapshots, and how many jobs placement routed
/// to each shard.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct ShardedMetricsSnapshot {
    /// Field-wise sum over the shards (peaks are sums of per-shard peaks).
    pub aggregate: ServiceMetricsSnapshot,
    /// One snapshot per shard, in shard-index order.
    pub shards: Vec<ServiceMetricsSnapshot>,
    /// Jobs the placement layer routed to each shard (counted at placement,
    /// i.e. before the shard's own admission verdict).
    pub placements: Vec<u64>,
    /// True maximum of per-shard `peak_queue_depth` values — unlike the
    /// aggregate's field, which is the *sum* of per-shard peaks.
    pub max_peak_queue_depth: u64,
    /// True maximum of per-shard `peak_frames_in_use` values.
    pub max_peak_frames_in_use: u64,
}

impl ShardedMetricsSnapshot {
    /// Renders the snapshot as a single-line JSON object:
    /// `{"aggregate": {...}, "shards": [{...}, ...], "placements": [...],
    /// "max_peak_queue_depth": N, "max_peak_frames_in_use": N,
    /// "shard_queue_wait_p99_ms": [...]}`.
    /// This is what the `piped` METRICS wire frame carries for a sharded
    /// daemon; the `"aggregate"` object is the same shape single-shard
    /// clients already parse. `shard_queue_wait_p99_ms` is each shard's
    /// all-workload queue-wait p99 — the congestion signal placement's
    /// two-probe scoring reacts to, surfaced per shard.
    pub fn to_json(&self) -> String {
        let shards: Vec<String> = self.shards.iter().map(|s| s.to_json()).collect();
        let placements: Vec<String> = self.placements.iter().map(|p| p.to_string()).collect();
        let queue_p99: Vec<String> = self
            .shards
            .iter()
            .map(|s| format!("{:.3}", s.queue_wait_p99_ns() as f64 / 1e6))
            .collect();
        format!(
            concat!(
                "{{\"aggregate\":{},\"shards\":[{}],\"placements\":[{}],",
                "\"max_peak_queue_depth\":{},\"max_peak_frames_in_use\":{},",
                "\"shard_queue_wait_p99_ms\":[{}]}}"
            ),
            self.aggregate.to_json(),
            shards.join(","),
            placements.join(","),
            self.max_peak_queue_depth,
            self.max_peak_frames_in_use,
            queue_p99.join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_json_nests_aggregate_and_shards() {
        let shard = ServiceMetricsSnapshot {
            jobs_submitted: 5,
            frame_budget: 8,
            ..Default::default()
        };
        let snapshot = ShardedMetricsSnapshot {
            aggregate: shard.clone() + shard.clone(),
            shards: vec![shard.clone(), shard],
            placements: vec![3, 2],
            max_peak_queue_depth: 4,
            max_peak_frames_in_use: 6,
        };
        let json = snapshot.to_json();
        assert!(json.contains("\"aggregate\":{\"jobs_submitted\":10"));
        assert!(json.contains("\"placements\":[3,2]"));
        assert_eq!(json.matches("\"frame_budget\":8").count(), 2);
        assert!(json.contains("\"frame_budget\":16"));
        assert!(json.contains("\"max_peak_queue_depth\":4"));
        assert!(json.contains("\"max_peak_frames_in_use\":6"));
        assert!(json.contains("\"shard_queue_wait_p99_ms\":[0.000,0.000]"));
    }

    #[test]
    fn to_json_is_a_flat_object_with_every_field() {
        let snapshot = ServiceMetricsSnapshot {
            jobs_submitted: 10,
            jobs_rejected: 2,
            frames_in_use: 3,
            frame_budget: 12,
            cache_hits: 7,
            cache_misses: 4,
            coalesced: 1,
            ..Default::default()
        };
        let json = snapshot.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"jobs_submitted\":10"));
        assert!(json.contains("\"rejection_rate\":0.1667"));
        assert!(json.contains("\"frame_budget_utilization\":0.2500"));
        assert!(json.contains("\"cache_hits\":7"));
        assert!(json.contains("\"cache_misses\":4"));
        assert!(json.contains("\"coalesced\":1"));
        assert!(json.contains("\"latency\":{}"));
        assert!(!json.contains('\n'));
    }

    #[test]
    fn latency_json_has_quantile_fields_per_workload() {
        let registry = LatencyRegistry::default();
        let recorder = registry.recorder("scan");
        for ns in [1_000_000u64, 2_000_000, 40_000_000] {
            recorder.queue_wait.record(ns);
            recorder.service.record(ns * 2);
        }
        // Empty names fold into the fallback label.
        registry.recorder("").service.record(5_000_000);
        let snapshot = ServiceMetricsSnapshot {
            latency: registry.snapshot(),
            ..Default::default()
        };
        let json = snapshot.to_json();
        assert!(json.contains("\"latency\":{\"_unnamed\":{"));
        assert!(json.contains("\"scan\":{\"queue_wait\":{\"count\":3"));
        for field in ["p50_ms", "p90_ms", "p99_ms", "p999_ms", "max_ms", "mean_ms"] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        // 40 ms recorded => p99 estimate in [40, 42.5) ms.
        let p99 = snapshot.latency[1].queue_wait.quantile(0.99);
        assert!((40_000_000..42_500_000).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn adding_snapshots_merges_latency_by_workload() {
        let left = LatencyRegistry::default();
        left.recorder("a").service.record(10);
        left.recorder("b").service.record(20);
        let right = LatencyRegistry::default();
        right.recorder("b").service.record(30);
        right.recorder("c").service.record(40);
        let sum = ServiceMetricsSnapshot {
            latency: left.snapshot(),
            ..Default::default()
        } + ServiceMetricsSnapshot {
            latency: right.snapshot(),
            ..Default::default()
        };
        let names: Vec<&str> = sum.latency.iter().map(|w| w.workload.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!(sum.latency[1].service.count(), 2);
        assert_eq!(sum.latency[1].service.sum(), 50);
    }

    #[test]
    fn queue_wait_p99_merges_across_workloads() {
        let registry = LatencyRegistry::default();
        for _ in 0..95 {
            registry.recorder("fast").queue_wait.record(10);
        }
        for _ in 0..5 {
            registry.recorder("slow").queue_wait.record(1_000_000);
        }
        let snapshot = ServiceMetricsSnapshot {
            latency: registry.snapshot(),
            ..Default::default()
        };
        let p99 = snapshot.queue_wait_p99_ns();
        assert!(p99 >= 1_000_000, "p99 {p99} should see the slow workload");
    }

    #[test]
    fn workload_names_are_json_escaped() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("tab\there"), "\"tab\\u0009here\"");
    }
}
