//! Aggregate service metrics, in the same monotone-counter style as
//! [`piper::Metrics`] so the two snapshots compose into one observability
//! surface.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters kept by a [`crate::PipeService`] (relaxed atomics:
/// instrumentation must not perturb dispatch).
#[derive(Debug, Default)]
pub(crate) struct ServiceMetrics {
    pub(crate) jobs_submitted: AtomicU64,
    pub(crate) jobs_admitted: AtomicU64,
    pub(crate) jobs_rejected: AtomicU64,
    pub(crate) jobs_completed: AtomicU64,
    pub(crate) jobs_cancelled: AtomicU64,
    pub(crate) jobs_panicked: AtomicU64,
    pub(crate) jobs_expired: AtomicU64,
    pub(crate) peak_queue_depth: AtomicU64,
    pub(crate) peak_frames_in_use: AtomicU64,
}

impl ServiceMetrics {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn raise_peak(counter: &AtomicU64, value: u64) {
        counter.fetch_max(value, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a service's aggregate metrics, including the
/// live queue/budget gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServiceMetricsSnapshot {
    /// Jobs accepted into the submission queue.
    pub jobs_submitted: u64,
    /// Jobs admitted by the controller and launched on the pool.
    pub jobs_admitted: u64,
    /// Submissions rejected by backpressure (queue full) or because the
    /// job's frame window exceeds the whole budget.
    pub jobs_rejected: u64,
    /// Jobs that ran every iteration.
    pub jobs_completed: u64,
    /// Jobs cancelled (queued or mid-run).
    pub jobs_cancelled: u64,
    /// Jobs whose producer or a node panicked.
    pub jobs_panicked: u64,
    /// Jobs expired in the queue past their deadline.
    pub jobs_expired: u64,
    /// High-water mark of the submission-queue depth.
    pub peak_queue_depth: u64,
    /// High-water mark of reserved iteration frames.
    pub peak_frames_in_use: u64,
    /// Current submission-queue depth.
    pub queue_depth: u64,
    /// Jobs currently executing on the pool.
    pub running: u64,
    /// Iteration frames currently reserved (`Σ K_j` over running jobs).
    pub frames_in_use: u64,
    /// The configured global frame budget.
    pub frame_budget: u64,
    /// Keyed submissions answered from the content-addressed result cache
    /// without running a pipeline (zero for uncached executors).
    pub cache_hits: u64,
    /// Keyed submissions that missed the cache and ran a pipeline (zero
    /// for uncached executors).
    pub cache_misses: u64,
    /// Keyed submissions coalesced onto an identical in-flight pipeline
    /// (zero for uncached executors).
    pub coalesced: u64,
}

impl ServiceMetricsSnapshot {
    /// Fraction of the frame budget currently reserved, in `[0, 1]`.
    pub fn frame_budget_utilization(&self) -> f64 {
        if self.frame_budget == 0 {
            0.0
        } else {
            self.frames_in_use as f64 / self.frame_budget as f64
        }
    }

    /// Fraction of submissions rejected, in `[0, 1]` (0 when nothing was
    /// offered).
    pub fn rejection_rate(&self) -> f64 {
        let offered = self.jobs_submitted + self.jobs_rejected;
        if offered == 0 {
            0.0
        } else {
            self.jobs_rejected as f64 / offered as f64
        }
    }

    /// Renders the snapshot as a single-line JSON object (hand-rolled, like
    /// the bench binaries — no serialization dependency). This is the one
    /// shared formatter behind both the `pipeserve_load` bench report and
    /// the `piped` METRICS wire frame.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{",
                "\"jobs_submitted\":{},",
                "\"jobs_admitted\":{},",
                "\"jobs_rejected\":{},",
                "\"jobs_completed\":{},",
                "\"jobs_cancelled\":{},",
                "\"jobs_panicked\":{},",
                "\"jobs_expired\":{},",
                "\"peak_queue_depth\":{},",
                "\"peak_frames_in_use\":{},",
                "\"queue_depth\":{},",
                "\"running\":{},",
                "\"frames_in_use\":{},",
                "\"frame_budget\":{},",
                "\"cache_hits\":{},",
                "\"cache_misses\":{},",
                "\"coalesced\":{},",
                "\"frame_budget_utilization\":{:.4},",
                "\"rejection_rate\":{:.4}",
                "}}"
            ),
            self.jobs_submitted,
            self.jobs_admitted,
            self.jobs_rejected,
            self.jobs_completed,
            self.jobs_cancelled,
            self.jobs_panicked,
            self.jobs_expired,
            self.peak_queue_depth,
            self.peak_frames_in_use,
            self.queue_depth,
            self.running,
            self.frames_in_use,
            self.frame_budget,
            self.cache_hits,
            self.cache_misses,
            self.coalesced,
            self.frame_budget_utilization(),
            self.rejection_rate(),
        )
    }
}

impl std::ops::Add for ServiceMetricsSnapshot {
    type Output = ServiceMetricsSnapshot;

    /// Field-wise sum, for aggregating per-shard snapshots. Note that the
    /// peak fields become *sums of per-shard peaks* — an upper bound on the
    /// true aggregate peak (the shards need not have peaked simultaneously).
    fn add(self, other: ServiceMetricsSnapshot) -> ServiceMetricsSnapshot {
        ServiceMetricsSnapshot {
            jobs_submitted: self.jobs_submitted + other.jobs_submitted,
            jobs_admitted: self.jobs_admitted + other.jobs_admitted,
            jobs_rejected: self.jobs_rejected + other.jobs_rejected,
            jobs_completed: self.jobs_completed + other.jobs_completed,
            jobs_cancelled: self.jobs_cancelled + other.jobs_cancelled,
            jobs_panicked: self.jobs_panicked + other.jobs_panicked,
            jobs_expired: self.jobs_expired + other.jobs_expired,
            peak_queue_depth: self.peak_queue_depth + other.peak_queue_depth,
            peak_frames_in_use: self.peak_frames_in_use + other.peak_frames_in_use,
            queue_depth: self.queue_depth + other.queue_depth,
            running: self.running + other.running,
            frames_in_use: self.frames_in_use + other.frames_in_use,
            frame_budget: self.frame_budget + other.frame_budget,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
            coalesced: self.coalesced + other.coalesced,
        }
    }
}

/// A point-in-time copy of a sharded executor's metrics: the field-wise
/// aggregate, the per-shard snapshots, and how many jobs placement routed
/// to each shard.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct ShardedMetricsSnapshot {
    /// Field-wise sum over the shards (peaks are sums of per-shard peaks).
    pub aggregate: ServiceMetricsSnapshot,
    /// One snapshot per shard, in shard-index order.
    pub shards: Vec<ServiceMetricsSnapshot>,
    /// Jobs the placement layer routed to each shard (counted at placement,
    /// i.e. before the shard's own admission verdict).
    pub placements: Vec<u64>,
}

impl ShardedMetricsSnapshot {
    /// Renders the snapshot as a single-line JSON object:
    /// `{"aggregate": {...}, "shards": [{...}, ...], "placements": [...]}`.
    /// This is what the `piped` METRICS wire frame carries for a sharded
    /// daemon; the `"aggregate"` object is the same shape single-shard
    /// clients already parse.
    pub fn to_json(&self) -> String {
        let shards: Vec<String> = self.shards.iter().map(|s| s.to_json()).collect();
        let placements: Vec<String> = self.placements.iter().map(|p| p.to_string()).collect();
        format!(
            "{{\"aggregate\":{},\"shards\":[{}],\"placements\":[{}]}}",
            self.aggregate.to_json(),
            shards.join(","),
            placements.join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_json_nests_aggregate_and_shards() {
        let shard = ServiceMetricsSnapshot {
            jobs_submitted: 5,
            frame_budget: 8,
            ..Default::default()
        };
        let snapshot = ShardedMetricsSnapshot {
            aggregate: shard + shard,
            shards: vec![shard, shard],
            placements: vec![3, 2],
        };
        let json = snapshot.to_json();
        assert!(json.contains("\"aggregate\":{\"jobs_submitted\":10"));
        assert!(json.contains("\"placements\":[3,2]"));
        assert_eq!(json.matches("\"frame_budget\":8").count(), 2);
        assert!(json.contains("\"frame_budget\":16"));
    }

    #[test]
    fn to_json_is_a_flat_object_with_every_field() {
        let snapshot = ServiceMetricsSnapshot {
            jobs_submitted: 10,
            jobs_rejected: 2,
            frames_in_use: 3,
            frame_budget: 12,
            cache_hits: 7,
            cache_misses: 4,
            coalesced: 1,
            ..Default::default()
        };
        let json = snapshot.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"jobs_submitted\":10"));
        assert!(json.contains("\"rejection_rate\":0.1667"));
        assert!(json.contains("\"frame_budget_utilization\":0.2500"));
        assert!(json.contains("\"cache_hits\":7"));
        assert!(json.contains("\"cache_misses\":4"));
        assert!(json.contains("\"coalesced\":1"));
        assert!(!json.contains('\n'));
    }
}
