//! Aggregate service metrics, in the same monotone-counter style as
//! [`piper::Metrics`] so the two snapshots compose into one observability
//! surface.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters kept by a [`crate::PipeService`] (relaxed atomics:
/// instrumentation must not perturb dispatch).
#[derive(Debug, Default)]
pub(crate) struct ServiceMetrics {
    pub(crate) jobs_submitted: AtomicU64,
    pub(crate) jobs_admitted: AtomicU64,
    pub(crate) jobs_rejected: AtomicU64,
    pub(crate) jobs_completed: AtomicU64,
    pub(crate) jobs_cancelled: AtomicU64,
    pub(crate) jobs_panicked: AtomicU64,
    pub(crate) jobs_expired: AtomicU64,
    pub(crate) peak_queue_depth: AtomicU64,
    pub(crate) peak_frames_in_use: AtomicU64,
}

impl ServiceMetrics {
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn raise_peak(counter: &AtomicU64, value: u64) {
        counter.fetch_max(value, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a service's aggregate metrics, including the
/// live queue/budget gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServiceMetricsSnapshot {
    /// Jobs accepted into the submission queue.
    pub jobs_submitted: u64,
    /// Jobs admitted by the controller and launched on the pool.
    pub jobs_admitted: u64,
    /// Submissions rejected by backpressure (queue full) or because the
    /// job's frame window exceeds the whole budget.
    pub jobs_rejected: u64,
    /// Jobs that ran every iteration.
    pub jobs_completed: u64,
    /// Jobs cancelled (queued or mid-run).
    pub jobs_cancelled: u64,
    /// Jobs whose producer or a node panicked.
    pub jobs_panicked: u64,
    /// Jobs expired in the queue past their deadline.
    pub jobs_expired: u64,
    /// High-water mark of the submission-queue depth.
    pub peak_queue_depth: u64,
    /// High-water mark of reserved iteration frames.
    pub peak_frames_in_use: u64,
    /// Current submission-queue depth.
    pub queue_depth: u64,
    /// Jobs currently executing on the pool.
    pub running: u64,
    /// Iteration frames currently reserved (`Σ K_j` over running jobs).
    pub frames_in_use: u64,
    /// The configured global frame budget.
    pub frame_budget: u64,
}

impl ServiceMetricsSnapshot {
    /// Fraction of the frame budget currently reserved, in `[0, 1]`.
    pub fn frame_budget_utilization(&self) -> f64 {
        if self.frame_budget == 0 {
            0.0
        } else {
            self.frames_in_use as f64 / self.frame_budget as f64
        }
    }

    /// Fraction of submissions rejected, in `[0, 1]` (0 when nothing was
    /// offered).
    pub fn rejection_rate(&self) -> f64 {
        let offered = self.jobs_submitted + self.jobs_rejected;
        if offered == 0 {
            0.0
        } else {
            self.jobs_rejected as f64 / offered as f64
        }
    }
}
