//! Job specifications, handles and results.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

use piper::{PipeHandle, PipeOptions, PipeStats, PipelineIteration, Stage0, ThreadPool};

use crate::cache::Inflight;
use crate::metrics::LatencyRecorder;
use crate::service::ServiceInner;

/// A deferred pipeline launch: given the pool and the job's options, start
/// the pipeline detached and return its handle.
///
/// This is the type-erased currency between workload crates (which know the
/// concrete producer/iteration types) and the service (which does not):
/// anything that can produce a [`PipeHandle`] can be served.
pub type LaunchFn = Box<dyn FnOnce(&ThreadPool, PipeOptions) -> PipeHandle + Send>;

/// A byte-stream consumer for a keyed job's output (see [`JobSpec::keyed`]).
/// Called from the pipeline's in-order serial stage with each produced
/// chunk; chunks concatenated in call order are the job's canonical output.
///
/// The chunk arrives as an owned reference-counted [`checksum::buf::Chunk`]:
/// a caching tee can retain a clone and a connection writer can queue the
/// same bytes without either copying the payload.
pub type OutputSink = Box<dyn FnMut(checksum::buf::Chunk) + Send>;

/// Builds a keyed job's launch closure around the sink that should receive
/// its output (see [`JobSpec::keyed`]). A caching layer substitutes its own
/// tee here; an uncached service passes the submitter's sink straight
/// through. The factory only *binds* the sink into a [`LaunchFn`] — it must
/// be cheap and must not block (it may run under a scheduler lock).
pub type SinkLaunchFn = Box<dyn FnOnce(OutputSink) -> LaunchFn + Send>;

/// Content address of a deterministic job: the workload identifier plus the
/// SHA-256 digest of its canonical input encoding.
///
/// Two submissions with equal `ContentKey`s promise byte-identical output
/// (the property every workload in this repository verifies against its
/// serial reference), which is what licenses a [`crate::CachedService`] to
/// answer one from the other's result.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ContentKey {
    workload: String,
    digest: [u8; checksum::SHA256_DIGEST_LEN],
}

impl ContentKey {
    /// Keys `canonical_input` under `workload`, hashing it in one shot.
    pub fn new(workload: impl Into<String>, canonical_input: &[u8]) -> Self {
        ContentKey {
            workload: workload.into(),
            digest: checksum::sha256(canonical_input),
        }
    }

    /// Builds a key from an already-computed digest — the form a server
    /// hashing streamed input chunks incrementally uses
    /// (see [`checksum::Sha256`]).
    pub fn from_digest(
        workload: impl Into<String>,
        digest: [u8; checksum::SHA256_DIGEST_LEN],
    ) -> Self {
        ContentKey {
            workload: workload.into(),
            digest,
        }
    }

    /// The workload identifier half of the key.
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// The SHA-256 digest half of the key.
    pub fn digest(&self) -> &[u8; checksum::SHA256_DIGEST_LEN] {
        &self.digest
    }
}

impl std::fmt::Display for ContentKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:", self.workload)?;
        for b in &self.digest[..8] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…")
    }
}

/// How a job's pipeline is started: either a plain opaque launch closure,
/// or a content-keyed (sink, factory) pair a caching layer can interpose on.
pub(crate) enum LaunchKind {
    Plain(LaunchFn),
    Keyed {
        key: ContentKey,
        sink: OutputSink,
        factory: SinkLaunchFn,
    },
}

impl LaunchKind {
    /// Collapses to a plain launch closure: a keyed job submitted to an
    /// uncached service streams into the submitter's own sink.
    pub(crate) fn resolve(self) -> LaunchFn {
        match self {
            LaunchKind::Plain(f) => f,
            LaunchKind::Keyed { sink, factory, .. } => factory(sink),
        }
    }
}

/// A terminal-state callback attached to a job with
/// [`JobSpec::on_terminal`]: runs exactly once, on whichever thread
/// finalizes the job, right after the terminal [`JobResult`] is recorded
/// and joiners are woken.
///
/// This is the push-style counterpart of [`JobHandle::join`]: a server
/// multiplexing many jobs onto shared connections (the `piped` daemon)
/// uses it to forward completions into per-connection output sinks without
/// dedicating a waiter thread per job. The hook runs outside the job's
/// internal lock but on a service thread (dispatcher or pool worker), so it
/// must not block for long.
pub type TerminalHook = Box<dyn FnOnce(&JobResult) + Send>;

/// Scheduling class of a job. Dispatch is weighted round-robin across the
/// classes (weights 4:2:1), FIFO within a class — higher classes get more
/// dispatch slots under contention, lower classes are never starved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive jobs (weight 4).
    Interactive,
    /// The default class (weight 2).
    Normal,
    /// Throughput/background jobs (weight 1).
    Batch,
}

impl Priority {
    /// All classes, highest first.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Normal, Priority::Batch];

    pub(crate) fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Normal => 1,
            Priority::Batch => 2,
        }
    }

    /// Dispatch weight of the class.
    pub fn weight(self) -> usize {
        match self {
            Priority::Interactive => 4,
            Priority::Normal => 2,
            Priority::Batch => 1,
        }
    }
}

/// Identifier of a submitted job, unique within its [`crate::PipeService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// A pipeline job submission: a deferred launch plus scheduling metadata.
pub struct JobSpec {
    pub(crate) name: String,
    pub(crate) priority: Priority,
    pub(crate) options: PipeOptions,
    pub(crate) queue_deadline: Option<Duration>,
    pub(crate) launch: LaunchKind,
    pub(crate) on_terminal: Option<TerminalHook>,
    /// Per-job span buffer (see [`JobSpec::traced`]).
    pub(crate) trace: Option<Arc<obs::TraceBuffer>>,
    /// Whether the state created for this spec owns the trace's root span.
    /// True for submitter-facing specs; a caching layer clears it on the
    /// inner spec it forwards, so exactly one layer records the root.
    pub(crate) trace_root: bool,
}

impl JobSpec {
    /// Creates a job from a `pipe_while`-style producer (Stage 0 closure);
    /// see [`piper::pipe_while`] for the programming model.
    pub fn new<F, I>(options: PipeOptions, producer: F) -> Self
    where
        F: FnMut(u64) -> Stage0<I> + Send + 'static,
        I: PipelineIteration,
    {
        Self::from_launch(
            options,
            Box::new(move |pool, opts| piper::spawn_pipe(pool, opts, producer)),
        )
    }

    /// Creates a job from a type-erased launch closure (the form workload
    /// crates export; see [`LaunchFn`]).
    pub fn from_launch(options: PipeOptions, launch: LaunchFn) -> Self {
        JobSpec {
            name: String::new(),
            priority: Priority::Normal,
            options,
            queue_deadline: None,
            launch: LaunchKind::Plain(launch),
            on_terminal: None,
            trace: None,
            trace_root: true,
        }
    }

    /// Creates a *content-keyed* job: `key` addresses the deterministic
    /// output the job will stream into `sink`, and `factory` binds a sink
    /// into the actual launch closure.
    ///
    /// Submitted to a plain service, this behaves exactly like
    /// [`from_launch`](Self::from_launch) with `factory(sink)`. Submitted
    /// through a [`crate::CachedService`], the cache may answer from a
    /// stored output, attach the sink to an identical in-flight job
    /// (coalescing), or run the job once while teeing its output into the
    /// cache. The factory must be cheap — it only binds the sink, it does
    /// not run the pipeline.
    pub fn keyed(
        options: PipeOptions,
        key: ContentKey,
        sink: OutputSink,
        factory: SinkLaunchFn,
    ) -> Self {
        JobSpec {
            name: String::new(),
            priority: Priority::Normal,
            options,
            queue_deadline: None,
            launch: LaunchKind::Keyed { key, sink, factory },
            on_terminal: None,
            trace: None,
            trace_root: true,
        }
    }

    /// The job's content key, if it was built with [`keyed`](Self::keyed).
    pub fn content_key(&self) -> Option<&ContentKey> {
        match &self.launch {
            LaunchKind::Keyed { key, .. } => Some(key),
            LaunchKind::Plain(_) => None,
        }
    }

    /// Attaches a human-readable name (shown in diagnostics).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the scheduling class (default [`Priority::Normal`]).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Bounds the time the job may wait in the submission queue: a job not
    /// admitted within the deadline is expired instead of run
    /// ([`JobResult::Expired`]). Expiry is checked when the dispatcher
    /// next scans the queue.
    pub fn queue_deadline(mut self, deadline: Duration) -> Self {
        self.queue_deadline = Some(deadline);
        self
    }

    /// Attaches a callback that runs exactly once when the job reaches its
    /// terminal state (completed, cancelled, failed or expired), with the
    /// terminal [`JobResult`]. See [`TerminalHook`] for the threading
    /// contract. The last hook set wins.
    pub fn on_terminal(mut self, hook: impl FnOnce(&JobResult) + Send + 'static) -> Self {
        self.on_terminal = Some(Box::new(hook));
        self
    }

    /// Attaches a per-job span buffer: the service records a root
    /// [`obs::SpanKind::Job`] span covering submit→terminal plus
    /// queue-wait, admission, run and (under a [`crate::CachedService`])
    /// cache-lookup child spans into it, and the pipeline runtime adds
    /// sampled per-stage spans (the buffer is also routed into
    /// [`piper::PipeOptions::trace`]). Recording is lock-free and
    /// allocation-free; the one allocation is the buffer itself, made by
    /// the caller before submission.
    pub fn traced(mut self, buffer: Arc<obs::TraceBuffer>) -> Self {
        self.options.trace = Some(Arc::clone(&buffer));
        self.trace = Some(buffer);
        self
    }

    /// The job's frame window `K` on a pool with `num_threads` workers: the
    /// number of iteration-frame slots its ring will pin while the job runs.
    /// This is the quantity the service's admission controller budgets.
    pub fn frame_window(&self, num_threads: usize) -> usize {
        self.options.resolve_throttle(num_threads)
    }
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpec")
            .field("name", &self.name)
            .field("priority", &self.priority)
            .field("options", &self.options)
            .field("queue_deadline", &self.queue_deadline)
            .field("content_key", &self.content_key())
            .finish_non_exhaustive()
    }
}

/// Life-cycle state of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the submission queue for admission.
    Queued,
    /// Admitted and executing on the pool (a cancelled job stays `Running`
    /// while its in-flight iterations drain).
    Running,
    /// Ran to completion.
    Completed,
    /// Cancelled (before running, or mid-run after draining).
    Cancelled,
    /// A stage or the producer panicked; the pipeline drained and the
    /// service remains healthy.
    Failed,
    /// Expired in the queue past its deadline without ever running.
    Expired,
}

/// Terminal outcome of a job, returned by [`JobHandle::join`].
#[derive(Debug, Clone)]
pub enum JobResult {
    /// The pipeline ran every iteration; per-job statistics attached.
    Completed(PipeStats),
    /// The job was cancelled: `None` if it never started, `Some(stats)` for
    /// the iterations that ran before the cancellation drained.
    Cancelled(Option<PipeStats>),
    /// The producer or a node panicked; the payload rendered as text.
    Panicked(String),
    /// The job expired in the queue without running.
    Expired,
}

impl JobResult {
    /// True for [`JobResult::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, JobResult::Completed(_))
    }

    /// The job's pipeline statistics, if any iterations ran.
    pub fn stats(&self) -> Option<PipeStats> {
        match self {
            JobResult::Completed(s) => Some(*s),
            JobResult::Cancelled(s) => *s,
            JobResult::Panicked(_) | JobResult::Expired => None,
        }
    }
}

/// Mutable per-job cell, guarded by [`JobState::cell`].
pub(crate) struct JobCell {
    pub(crate) status: JobStatus,
    /// The detached pipeline handle, present while the job is running.
    pub(crate) pipe: Option<PipeHandle>,
    pub(crate) result: Option<JobResult>,
    /// When the dispatcher admitted the job (set at launch; `None` for jobs
    /// that never ran). Anchors the `run` latency histogram.
    pub(crate) admitted_at: Option<Instant>,
    /// When the job reached its terminal state.
    pub(crate) finished_at: Option<Instant>,
    /// The terminal callback, taken (and run outside the lock) by the
    /// first finalization.
    pub(crate) on_terminal: Option<TerminalHook>,
}

/// A job state's view of its trace: the span buffer plus whether this
/// state owns the root span (exactly one layer per trace does — see
/// [`JobSpec::trace_root`]).
pub(crate) struct JobTrace {
    pub(crate) buffer: Arc<obs::TraceBuffer>,
    pub(crate) root: bool,
}

/// The state shared between a [`JobHandle`], the service's job table and
/// the dispatcher.
pub(crate) struct JobState {
    pub(crate) id: JobId,
    pub(crate) name: String,
    pub(crate) priority: Priority,
    /// The job's frame window `K` (reserved against the service budget
    /// while the job runs).
    pub(crate) frames: usize,
    pub(crate) submitted_at: Instant,
    /// The workload's latency histograms, resolved once at submit time so
    /// the admission and completion paths record without a registry lookup.
    pub(crate) latency: Arc<LatencyRecorder>,
    /// The job's span buffer, when the submitter asked for tracing.
    pub(crate) trace: Option<JobTrace>,
    pub(crate) cell: Mutex<JobCell>,
    pub(crate) done_cv: Condvar,
    pub(crate) cancel_requested: AtomicBool,
}

impl JobState {
    pub(crate) fn new(
        id: JobId,
        name: String,
        priority: Priority,
        frames: usize,
        latency: Arc<LatencyRecorder>,
        trace: Option<JobTrace>,
        on_terminal: Option<TerminalHook>,
    ) -> Arc<Self> {
        Arc::new(JobState {
            id,
            name,
            priority,
            frames,
            submitted_at: Instant::now(),
            latency,
            trace,
            cell: Mutex::new(JobCell {
                status: JobStatus::Queued,
                pipe: None,
                result: None,
                admitted_at: None,
                finished_at: None,
                on_terminal,
            }),
            done_cv: Condvar::new(),
            cancel_requested: AtomicBool::new(false),
        })
    }

    /// Records the terminal result and wakes joiners. Idempotent: the first
    /// finalization wins and runs the job's terminal hook (outside the cell
    /// lock, so the hook may inspect the handle without deadlocking).
    pub(crate) fn finalize(&self, status: JobStatus, result: JobResult) -> bool {
        let hook;
        {
            let mut cell = self.cell.lock().unwrap();
            if cell.result.is_some() {
                return false;
            }
            hook = cell.on_terminal.take().map(|h| (h, result.clone()));
            cell.status = status;
            cell.result = Some(result);
            cell.pipe = None;
            cell.finished_at = Some(Instant::now());
            self.done_cv.notify_all();
        }
        // Close the trace's root span (submit → terminal) before the
        // terminal hook runs: a hook that dumps the buffer (the piped
        // daemon's tail-based capture) must see the complete tree.
        if let Some(trace) = &self.trace {
            if trace.root {
                trace.buffer.record_elapsed(
                    obs::ROOT_SPAN_ID,
                    0,
                    obs::SpanKind::Job,
                    self.submitted_at.elapsed(),
                    self.id.0,
                );
            }
        }
        if let Some((hook, result)) = hook {
            hook(&result);
        }
        true
    }
}

/// What a [`JobHandle`]'s cancel path talks to: the executor that queued
/// the job, the coalesced in-flight entry it subscribed to, or nothing (a
/// cache hit is terminal the moment the handle exists).
pub(crate) enum HandleBackend {
    /// A job queued on (or running in) a [`crate::PipeService`].
    Service(Weak<ServiceInner>),
    /// A subscription to a coalesced in-flight job in a
    /// [`crate::CachedService`]; `index` identifies the subscriber slot.
    Coalesced { entry: Weak<Inflight>, index: usize },
    /// Already terminal at construction (cache hit): cancel is a no-op.
    Resolved,
}

impl Clone for HandleBackend {
    fn clone(&self) -> Self {
        match self {
            HandleBackend::Service(w) => HandleBackend::Service(Weak::clone(w)),
            HandleBackend::Coalesced { entry, index } => HandleBackend::Coalesced {
                entry: Weak::clone(entry),
                index: *index,
            },
            HandleBackend::Resolved => HandleBackend::Resolved,
        }
    }
}

/// A non-blocking handle on a submitted job.
///
/// Dropping the handle detaches the job: it still runs (or drains) to its
/// terminal state under the service's bookkeeping, and no iteration frame
/// is leaked — the frames belong to the pipeline's ring, not the handle.
pub struct JobHandle {
    pub(crate) state: Arc<JobState>,
    pub(crate) backend: HandleBackend,
}

impl Clone for JobHandle {
    /// Clones observe the same job: cancellation is shared and every clone
    /// joins the same terminal result.
    fn clone(&self) -> Self {
        JobHandle {
            state: Arc::clone(&self.state),
            backend: self.backend.clone(),
        }
    }
}

impl JobHandle {
    /// The job's service-unique id.
    pub fn id(&self) -> JobId {
        self.state.id
    }

    /// The name given at submission (may be empty).
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// The job's scheduling class.
    pub fn priority(&self) -> Priority {
        self.state.priority
    }

    /// The job's current life-cycle state, without blocking.
    pub fn try_status(&self) -> JobStatus {
        self.state.cell.lock().unwrap().status
    }

    /// The job's terminal result, if it has reached one, without blocking.
    pub fn try_result(&self) -> Option<JobResult> {
        self.state.cell.lock().unwrap().result.clone()
    }

    /// Requests cancellation. A queued job is removed from the queue and
    /// never runs; a running job stops spawning iterations within one
    /// iteration frame and drains its in-flight iterations cleanly.
    /// Idempotent; a no-op once the job reached a terminal state.
    ///
    /// For a handle coalesced onto a shared in-flight job (see
    /// [`crate::CachedService`]), cancellation detaches *this* subscriber
    /// immediately; the underlying pipeline is only aborted when its last
    /// live subscriber cancels.
    pub fn cancel(&self) {
        self.state.cancel_requested.store(true, Ordering::Release);
        match &self.backend {
            HandleBackend::Service(service) => {
                if let Some(service) = service.upgrade() {
                    service.cancel_job(&self.state);
                }
            }
            HandleBackend::Coalesced { entry, index } => {
                if let Some(entry) = entry.upgrade() {
                    entry.cancel_subscriber(*index);
                }
            }
            HandleBackend::Resolved => {}
        }
    }

    /// Blocks until the job reaches a terminal state and returns its
    /// [`JobResult`]. Never panics on job failure — a panic inside the job
    /// is reported as [`JobResult::Panicked`].
    pub fn join(&self) -> JobResult {
        let mut cell = self.state.cell.lock().unwrap();
        while cell.result.is_none() {
            cell = self.state.done_cv.wait(cell).unwrap();
        }
        cell.result.clone().expect("loop exits only with a result")
    }

    /// Blocks until the job reaches a terminal state **or** `timeout`
    /// elapses, whichever comes first. Returns the [`JobResult`] if the job
    /// finished in time, `None` on timeout (the job keeps running; call
    /// again, [`join`](Self::join), or [`cancel`](Self::cancel)).
    ///
    /// This is the bounded wait a network server needs: a connection
    /// handler can poll a fleet of jobs without committing a thread to an
    /// unbounded [`join`](Self::join).
    pub fn join_timeout(&self, timeout: Duration) -> Option<JobResult> {
        let deadline = Instant::now() + timeout;
        let mut cell = self.state.cell.lock().unwrap();
        while cell.result.is_none() {
            let remaining = deadline.checked_duration_since(Instant::now())?;
            let (guard, wait) = self.state.done_cv.wait_timeout(cell, remaining).unwrap();
            cell = guard;
            if wait.timed_out() && cell.result.is_none() {
                return None;
            }
        }
        cell.result.clone()
    }

    /// Time elapsed since the job was submitted.
    pub fn age(&self) -> Duration {
        self.state.submitted_at.elapsed()
    }

    /// Submit-to-terminal latency (queue wait + execution), once the job
    /// has reached a terminal state. This is measured at the moment the
    /// job finishes, not when the caller happens to join it.
    pub fn latency(&self) -> Option<Duration> {
        self.state
            .cell
            .lock()
            .unwrap()
            .finished_at
            .map(|t| t.duration_since(self.state.submitted_at))
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.state.id)
            .field("name", &self.state.name)
            .field("priority", &self.state.priority)
            .field("status", &self.try_status())
            .finish()
    }
}
