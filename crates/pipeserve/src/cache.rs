//! Content-addressed result cache with request coalescing, layered over
//! any [`Submit`] executor.
//!
//! Every workload served by this repository is deterministic and verified
//! byte-identical to its serial reference, so a job's output is a pure
//! function of its [`ContentKey`] (workload id + SHA-256 of the canonical
//! input). [`CachedService`] exploits that in two ways:
//!
//! * **Result cache** — a bounded LRU of completed outputs keyed by
//!   content. The byte budget defaults to a multiple of the inner
//!   executor's frame budget, so the cache's memory scales with the same
//!   knob that bounds the executor's live frames. Only verified
//!   [`JobResult::Completed`] outputs are stored — a cancelled, expired or
//!   panicked job never poisons the cache.
//! * **Request coalescing** — identical keyed submissions arriving while
//!   one is in flight *subscribe* to the running pipeline instead of
//!   running their own. A tee in the pipeline's output path captures the
//!   byte stream and fans every chunk out to all live subscribers; when
//!   the underlying job reaches its terminal state, every subscriber's
//!   handle resolves with the same result. Cancelling a coalesced handle
//!   detaches that one subscriber; the underlying pipeline is aborted only
//!   when its **last** live subscriber cancels.
//!
//! ## Lock order
//!
//! Two lock levels exist: the cache-wide table
//! ([`CacheCore::state`]) and the per-entry subscriber list
//! ([`Inflight::subs`]). The only path holding both is the underlying
//! job's terminal hook, which takes them in **table → entry** order;
//! every other path (attach, tee, cancel) takes at most one at a time, so
//! no cycle exists. Neither lock is ever held while calling into the inner
//! executor's *blocking* operations except `try_submit`/`submit` on the
//! miss path, which is safe because terminal hooks never run under a
//! scheduler lock (see `service.rs`'s lock discipline).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use checksum::buf::Chunk;
use piper::PipeStats;

use crate::job::{
    ContentKey, HandleBackend, JobHandle, JobId, JobResult, JobSpec, JobState, JobStatus, LaunchFn,
    LaunchKind, OutputSink, SinkLaunchFn,
};
use crate::metrics::ServiceMetricsSnapshot;
use crate::service::SubmitError;
use crate::submit::Submit;

/// Maps a terminal result to the job status subscribers are finalized with.
fn terminal_status(result: &JobResult) -> JobStatus {
    match result {
        JobResult::Completed(_) => JobStatus::Completed,
        JobResult::Cancelled(_) => JobStatus::Cancelled,
        JobResult::Panicked(_) => JobStatus::Failed,
        JobResult::Expired => JobStatus::Expired,
    }
}

/// One stored output: the canonical byte stream as the reference-counted
/// segments the pipeline produced (hits clone the `Chunk`s — no payload
/// copy), plus the stats of the run that produced it (re-reported on every
/// hit).
#[derive(Clone)]
struct CachedOutput {
    segments: Arc<Vec<Chunk>>,
    /// Sum of the segment lengths (the LRU's byte accounting).
    total_bytes: usize,
    stats: PipeStats,
}

/// Streams every non-empty segment of `segments` into `sink` as a clone
/// (no payload copy). Subscriber catch-up is always whole-segment aligned:
/// every path that advances a subscriber advances it to the end of the
/// capture, so a laggard's resume point is a segment boundary.
fn deliver_segments(segments: &[Chunk], sink: &mut OutputSink) {
    for seg in segments {
        if !seg.is_empty() {
            sink(seg.clone());
        }
    }
}

/// A byte-budgeted LRU: `HashMap` for lookup, `BTreeMap<seq, key>` for
/// recency order (lowest sequence = least recently used).
#[derive(Default)]
struct Lru {
    map: HashMap<ContentKey, (u64, CachedOutput)>,
    order: BTreeMap<u64, ContentKey>,
    total_bytes: usize,
    next_seq: u64,
}

impl Lru {
    /// Looks `key` up and, on a hit, marks it most recently used.
    fn get(&mut self, key: &ContentKey) -> Option<CachedOutput> {
        let (seq, out) = self.map.get_mut(key)?;
        let old = *seq;
        *seq = self.next_seq;
        self.next_seq += 1;
        let moved = self.order.remove(&old).expect("order tracks every entry");
        self.order.insert(*seq, moved);
        Some(out.clone())
    }

    /// Inserts (or replaces) `key`, then evicts least-recently-used entries
    /// until the byte budget holds. Returns how many entries were evicted.
    fn insert(&mut self, key: ContentKey, out: CachedOutput, capacity: usize) -> u64 {
        if let Some((seq, old)) = self.map.remove(&key) {
            self.order.remove(&seq);
            self.total_bytes -= old.total_bytes;
        }
        self.total_bytes += out.total_bytes;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.order.insert(seq, key.clone());
        self.map.insert(key, (seq, out));
        let mut evicted = 0;
        while self.total_bytes > capacity {
            let (_, key) = self.order.pop_first().expect("bytes imply entries");
            let (_, out) = self.map.remove(&key).expect("order tracks every entry");
            self.total_bytes -= out.total_bytes;
            evicted += 1;
        }
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Table state guarded by the cache-wide lock.
#[derive(Default)]
struct CacheState {
    lru: Lru,
    /// Keyed jobs currently running in the inner executor, by content key.
    inflight: HashMap<ContentKey, Arc<Inflight>>,
}

/// Shared core of a [`CachedService`]: the table plus counters.
pub(crate) struct CacheCore {
    state: Mutex<CacheState>,
    capacity_bytes: usize,
    /// Outputs larger than this are never cached (one oversized output must
    /// not wipe the whole working set).
    max_entry_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    /// Id space for the cache-layer [`JobState`]s (hits and subscribers);
    /// disjoint from any inner service's ids.
    next_id: AtomicU64,
    /// Shared latency recorder for cache-layer job states. They never pass
    /// through a service's admission/completion paths, so nothing records
    /// into it — sharing one avoids allocating a histogram set per hit.
    latency: Arc<crate::metrics::LatencyRecorder>,
}

/// One subscriber of an in-flight keyed job.
struct Subscriber {
    state: Arc<JobState>,
    /// The submitter's sink; taken when the subscriber cancels.
    sink: Option<OutputSink>,
    /// How many capture *segments* this sink has already received (every
    /// catch-up is whole-segment aligned, so a count suffices).
    delivered: usize,
}

/// Subscriber-list state guarded by the per-entry lock.
struct InflightSubs {
    /// Everything the underlying pipeline has produced so far, as the
    /// `Chunk` segments it arrived in (late subscribers are caught up from
    /// it on attach — clones, not copies).
    capture: Vec<Chunk>,
    /// Sum of the capture segment lengths.
    capture_bytes: usize,
    subscribers: Vec<Subscriber>,
    /// Subscribers that have not cancelled.
    live: usize,
    /// The inner executor's handle on the one running pipeline.
    underlying: Option<JobHandle>,
    /// The launch factory, taken exactly once when the inner job launches
    /// (or taken back on QueueFull rollback).
    factory: Option<SinkLaunchFn>,
    /// Set by the terminal hook; later attach attempts resolve from here.
    terminal: Option<(JobResult, Arc<Vec<Chunk>>)>,
}

/// One in-flight keyed job that identical submissions coalesce onto.
pub(crate) struct Inflight {
    key: ContentKey,
    core: Weak<CacheCore>,
    subs: Mutex<InflightSubs>,
}

impl Inflight {
    /// The tee: appends `chunk` to the capture (a reference-count bump —
    /// the payload is never copied) and fans the undelivered segment tail
    /// out to every live subscriber as clones. Runs from the pipeline's
    /// in-order serial output stage, so calls arrive in canonical order.
    fn deliver(&self, chunk: Chunk) {
        let mut subs = self.subs.lock().unwrap();
        subs.capture_bytes += chunk.len();
        subs.capture.push(chunk);
        let InflightSubs {
            capture,
            subscribers,
            ..
        } = &mut *subs;
        let len = capture.len();
        for sub in subscribers.iter_mut() {
            if let Some(sink) = sub.sink.as_mut() {
                deliver_segments(&capture[sub.delivered..], sink);
            }
            sub.delivered = len;
        }
    }

    /// Detaches subscriber `index` (handle cancellation). The underlying
    /// job is aborted only when the last live subscriber detaches; the
    /// entry is then unregistered so a later identical submission starts a
    /// fresh run instead of subscribing to a doomed one.
    pub(crate) fn cancel_subscriber(self: &Arc<Self>, index: usize) {
        let (state, last) = {
            let mut subs = self.subs.lock().unwrap();
            if subs.terminal.is_some() {
                return; // already resolved: cancel is a no-op
            }
            let sub = &mut subs.subscribers[index];
            if sub.sink.is_none() {
                return; // this subscriber already cancelled
            }
            sub.sink = None;
            let state = Arc::clone(&sub.state);
            subs.live -= 1;
            (state, subs.live == 0)
        };
        state.finalize(JobStatus::Cancelled, JobResult::Cancelled(None));
        if last {
            // Unregister first (entry lock released above; table lock is
            // never taken while holding it), then abort the pipeline.
            if let Some(core) = self.core.upgrade() {
                let mut table = core.state.lock().unwrap();
                if table
                    .inflight
                    .get(&self.key)
                    .is_some_and(|e| Arc::ptr_eq(e, self))
                {
                    table.inflight.remove(&self.key);
                }
            }
            let underlying = self.subs.lock().unwrap().underlying.clone();
            if let Some(handle) = underlying {
                handle.cancel();
            }
        }
    }

    /// The underlying job's terminal hook: unregisters the entry, caches a
    /// completed output, and resolves every subscriber with the same
    /// terminal result. Holds table → entry in that order (the one
    /// both-locks path in this module).
    fn on_terminal(self: &Arc<Self>, core: &Arc<CacheCore>, result: &JobResult) {
        let mut table = core.state.lock().unwrap();
        if table
            .inflight
            .get(&self.key)
            .is_some_and(|e| Arc::ptr_eq(e, self))
        {
            table.inflight.remove(&self.key);
        }
        let (segments, total_bytes, subscribers) = {
            let mut subs = self.subs.lock().unwrap();
            let segments = Arc::new(std::mem::take(&mut subs.capture));
            let total_bytes = subs.capture_bytes;
            subs.terminal = Some((result.clone(), Arc::clone(&segments)));
            subs.underlying = None;
            (segments, total_bytes, std::mem::take(&mut subs.subscribers))
        };
        if let JobResult::Completed(stats) = result {
            if total_bytes <= core.max_entry_bytes {
                let evicted = table.lru.insert(
                    self.key.clone(),
                    CachedOutput {
                        segments: Arc::clone(&segments),
                        total_bytes,
                        stats: *stats,
                    },
                    core.capacity_bytes,
                );
                core.evictions.fetch_add(evicted, Ordering::Relaxed);
            }
        }
        drop(table);
        // Finalize outside every lock: subscriber hooks (e.g. the piped
        // server's connection forwarding) may do arbitrary non-blocking
        // work. The tee already caught every live sink up, so only the
        // (normally empty) segment tail is delivered here.
        let status = terminal_status(result);
        for mut sub in subscribers {
            if let Some(sink) = sub.sink.as_mut() {
                if sub.delivered < segments.len() {
                    deliver_segments(&segments[sub.delivered..], sink);
                }
            }
            sub.state.finalize(status, result.clone());
        }
    }
}

/// Point-in-time cache-layer statistics (see
/// [`CachedService::cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheStats {
    /// Keyed submissions answered from the LRU.
    pub hits: u64,
    /// Keyed submissions that ran a pipeline.
    pub misses: u64,
    /// Keyed submissions attached to an in-flight identical run.
    pub coalesced: u64,
    /// Entries evicted to hold the byte budget.
    pub evictions: u64,
    /// Outputs currently stored.
    pub entries: u64,
    /// Bytes currently stored.
    pub bytes: u64,
    /// The configured byte budget.
    pub capacity_bytes: u64,
}

/// A content-addressed result cache + request coalescer over any
/// [`Submit`] executor; see the [module docs](self).
///
/// Plain (un-keyed) submissions pass straight through to the inner
/// executor. Keyed submissions ([`JobSpec::keyed`]) are answered from the
/// cache, coalesced onto an identical in-flight run, or run once with
/// their output teed into the cache.
pub struct CachedService<S: Submit> {
    inner: S,
    core: Arc<CacheCore>,
}

impl<S: Submit> CachedService<S> {
    /// Wraps `inner` with a frame-budget-aware default byte budget: 16 KiB
    /// of cache per budgeted iteration frame, clamped to [1 MiB, 256 MiB].
    /// The same knob that bounds the executor's live frames thereby scales
    /// its result cache.
    pub fn new(inner: S) -> Self {
        let frames = inner.metrics().frame_budget as usize;
        let capacity = (frames * 16 * 1024).clamp(1 << 20, 256 << 20);
        Self::with_capacity(inner, capacity)
    }

    /// Wraps `inner` with an explicit cache byte budget. Outputs larger
    /// than an eighth of the budget are never cached (they would wipe the
    /// working set), but still coalesce while in flight.
    pub fn with_capacity(inner: S, capacity_bytes: usize) -> Self {
        let capacity_bytes = capacity_bytes.max(1);
        CachedService {
            inner,
            core: Arc::new(CacheCore {
                state: Mutex::new(CacheState::default()),
                capacity_bytes,
                max_entry_bytes: (capacity_bytes / 8).max(1),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                next_id: AtomicU64::new(0),
                latency: Arc::new(crate::metrics::LatencyRecorder::default()),
            }),
        }
    }

    /// The wrapped executor.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the cache layer, dropping every stored output.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Point-in-time cache-layer statistics.
    pub fn cache_stats(&self) -> CacheStats {
        let (entries, bytes) = {
            let table = self.core.state.lock().unwrap();
            (table.lru.len() as u64, table.lru.total_bytes as u64)
        };
        CacheStats {
            hits: self.core.hits.load(Ordering::Relaxed),
            misses: self.core.misses.load(Ordering::Relaxed),
            coalesced: self.core.coalesced.load(Ordering::Relaxed),
            evictions: self.core.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
            capacity_bytes: self.core.capacity_bytes as u64,
        }
    }

    /// A fresh cache-layer job state (hits and coalesced subscribers get
    /// their own ids, disjoint from the inner executor's). When the spec
    /// was traced, the cache-layer state owns the trace's root span — the
    /// inner executor's state, if one exists, records only children.
    fn new_state(
        &self,
        spec_name: String,
        priority: crate::Priority,
        trace: Option<Arc<obs::TraceBuffer>>,
        on_terminal: Option<crate::TerminalHook>,
    ) -> Arc<JobState> {
        let id = JobId(self.core.next_id.fetch_add(1, Ordering::Relaxed));
        JobState::new(
            id,
            spec_name,
            priority,
            0,
            Arc::clone(&self.core.latency),
            trace.map(|buffer| crate::job::JobTrace { buffer, root: true }),
            on_terminal,
        )
    }

    /// The keyed submission path. `counted` selects the inner entry point
    /// on a miss (`submit` records a surfaced rejection, `try_submit` does
    /// not); hits and coalesces can't be rejected, so the flag only
    /// matters there.
    fn submit_keyed(&self, spec: JobSpec, counted: bool) -> Result<JobHandle, SubmitError> {
        let JobSpec {
            name,
            priority,
            options,
            queue_deadline,
            launch,
            on_terminal,
            trace,
            trace_root: _,
        } = spec;
        let LaunchKind::Keyed { key, sink, factory } = launch else {
            unreachable!("submit_keyed is only called for keyed specs");
        };

        // Times the lookup span (recorded once the hit/coalesce/miss
        // verdict is known); untraced submissions skip the clock read.
        let lookup_started = trace.as_ref().map(|_| std::time::Instant::now());
        let lookup_span = |verdict: u64| {
            if let (Some(buffer), Some(started)) = (&trace, lookup_started) {
                buffer.record_elapsed(
                    buffer.next_span_id(),
                    obs::ROOT_SPAN_ID,
                    obs::SpanKind::CacheLookup,
                    started.elapsed(),
                    verdict,
                );
            }
        };
        // `arg` values of the cache-lookup span (`SpanKind::CacheLookup`).
        const MISS: u64 = 0;
        const HIT: u64 = 1;
        const COALESCED: u64 = 2;

        let mut table = self.core.state.lock().unwrap();

        // 1. Cache hit: deliver the stored bytes and resolve immediately.
        if let Some(out) = table.lru.get(&key) {
            self.core.hits.fetch_add(1, Ordering::Relaxed);
            drop(table);
            lookup_span(HIT);
            let state = self.new_state(name, priority, trace, on_terminal);
            let mut sink = sink;
            deliver_segments(&out.segments, &mut sink);
            // Deliver-then-finalize: a terminal hook (the piped server's
            // JOB_DONE frame) must order after the output bytes.
            state.finalize(JobStatus::Completed, JobResult::Completed(out.stats));
            return Ok(JobHandle {
                state,
                backend: HandleBackend::Resolved,
            });
        }

        // 2. Identical job in flight: subscribe to it.
        if let Some(entry) = table.inflight.get(&key).map(Arc::clone) {
            drop(table);
            let state = self.new_state(name, priority, trace.clone(), on_terminal);
            let mut subs = entry.subs.lock().unwrap();
            if let Some((result, segments)) = subs.terminal.clone() {
                // Raced the terminal hook between the table and entry
                // locks: resolve exactly like a hit.
                drop(subs);
                self.core.hits.fetch_add(1, Ordering::Relaxed);
                lookup_span(HIT);
                let mut sink = sink;
                if result.is_completed() {
                    deliver_segments(&segments, &mut sink);
                }
                state.finalize(terminal_status(&result), result);
                return Ok(JobHandle {
                    state,
                    backend: HandleBackend::Resolved,
                });
            }
            self.core.coalesced.fetch_add(1, Ordering::Relaxed);
            lookup_span(COALESCED);
            let mut sink = sink;
            deliver_segments(&subs.capture, &mut sink); // catch up so far
            let delivered = subs.capture.len();
            let index = subs.subscribers.len();
            subs.subscribers.push(Subscriber {
                state: Arc::clone(&state),
                sink: Some(sink),
                delivered,
            });
            subs.live += 1;
            let backend = HandleBackend::Coalesced {
                entry: Arc::downgrade(&entry),
                index,
            };
            drop(subs);
            return Ok(JobHandle { state, backend });
        }

        // 3. Miss: run it once, teed into the cache. The table lock is held
        // across the inner submission so a concurrent identical submission
        // cannot start a duplicate run between our miss and our insert.
        let state = self.new_state(name.clone(), priority, trace.clone(), on_terminal);
        let entry = Arc::new(Inflight {
            key: key.clone(),
            core: Arc::downgrade(&self.core),
            subs: Mutex::new(InflightSubs {
                capture: Vec::new(),
                capture_bytes: 0,
                subscribers: vec![Subscriber {
                    state: Arc::clone(&state),
                    sink: Some(sink),
                    delivered: 0,
                }],
                live: 1,
                underlying: None,
                factory: Some(factory),
                terminal: None,
            }),
        });
        let launch_entry = Arc::clone(&entry);
        let inner_launch: LaunchFn = Box::new(move |pool, opts| {
            let factory = launch_entry
                .subs
                .lock()
                .unwrap()
                .factory
                .take()
                .expect("factory present until the one launch");
            let tee_entry = Arc::clone(&launch_entry);
            let tee: OutputSink = Box::new(move |chunk: Chunk| tee_entry.deliver(chunk));
            factory(tee)(pool, opts)
        });
        let hook_entry = Arc::clone(&entry);
        let hook_core = Arc::clone(&self.core);
        let mut inner_spec = JobSpec::from_launch(options, inner_launch)
            .named(name)
            .priority(priority)
            .on_terminal(move |result| hook_entry.on_terminal(&hook_core, result));
        // The inner executor records the queue-wait/admission/run child
        // spans into the same buffer; the root stays with the cache-layer
        // state created above (the one covering the submitter's view).
        inner_spec.trace = trace.clone();
        inner_spec.trace_root = false;
        if let Some(deadline) = queue_deadline {
            inner_spec = inner_spec.queue_deadline(deadline);
        }
        let outcome = if counted {
            self.inner.submit(inner_spec)
        } else {
            self.inner.try_submit(inner_spec)
        };
        match outcome {
            Ok(handle) => {
                self.core.misses.fetch_add(1, Ordering::Relaxed);
                lookup_span(MISS);
                entry.subs.lock().unwrap().underlying = Some(handle);
                table.inflight.insert(key, Arc::clone(&entry));
                drop(table);
                Ok(JobHandle {
                    state,
                    backend: HandleBackend::Coalesced {
                        entry: Arc::downgrade(&entry),
                        index: 0,
                    },
                })
            }
            Err(SubmitError::QueueFull(returned)) => {
                drop(table);
                // Roll the keyed spec back together, byte-for-byte intact:
                // factory and sink come back out of the never-launched
                // entry, the terminal hook out of the never-finalized
                // state, and the scheduling metadata off the returned
                // inner spec.
                let (sink, factory) = {
                    let mut subs = entry.subs.lock().unwrap();
                    (
                        subs.subscribers[0].sink.take().expect("never cancelled"),
                        subs.factory.take().expect("never launched"),
                    )
                };
                let on_terminal = state.cell.lock().unwrap().on_terminal.take();
                let JobSpec {
                    name,
                    priority,
                    options,
                    queue_deadline,
                    ..
                } = *returned;
                let mut rebuilt = JobSpec::keyed(options, key, sink, factory)
                    .named(name)
                    .priority(priority);
                if let Some(deadline) = queue_deadline {
                    rebuilt = rebuilt.queue_deadline(deadline);
                }
                rebuilt.on_terminal = on_terminal;
                rebuilt.trace = trace;
                Err(SubmitError::QueueFull(Box::new(rebuilt)))
            }
            Err(err) => {
                drop(table);
                Err(err)
            }
        }
    }
}

impl<S: Submit> Submit for CachedService<S> {
    fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        match spec.launch {
            LaunchKind::Plain(_) => self.inner.submit(spec),
            LaunchKind::Keyed { .. } => self.submit_keyed(spec, true),
        }
    }

    fn try_submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        match spec.launch {
            LaunchKind::Plain(_) => self.inner.try_submit(spec),
            LaunchKind::Keyed { .. } => self.submit_keyed(spec, false),
        }
    }

    /// The inner executor's aggregate with the cache counters filled in.
    /// Cache-answered submissions never reach the inner executor, so they
    /// appear in `cache_hits`/`coalesced` only — `jobs_submitted` keeps
    /// counting pipelines actually queued.
    fn metrics(&self) -> ServiceMetricsSnapshot {
        let mut snapshot = self.inner.metrics();
        snapshot.cache_hits = self.core.hits.load(Ordering::Relaxed);
        snapshot.cache_misses = self.core.misses.load(Ordering::Relaxed);
        snapshot.coalesced = self.core.coalesced.load(Ordering::Relaxed);
        snapshot
    }

    /// Drains the inner executor. Hits resolve synchronously and coalesced
    /// subscribers resolve from the underlying job's terminal hook, so
    /// inner quiescence implies cache-layer quiescence.
    fn drain(&self) {
        self.inner.drain();
    }
}

impl<S: Submit + std::fmt::Debug> std::fmt::Debug for CachedService<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedService")
            .field("inner", &self.inner)
            .field("capacity_bytes", &self.core.capacity_bytes)
            .finish()
    }
}
