//! The shard layer: one executor facade over N independent [`PipeService`]
//! shards, each with its own pool, dispatcher, queue and frame budget.
//!
//! A single [`PipeService`] is one contention domain: one scheduler mutex,
//! one dispatcher thread, one injector. That is the right shape up to a few
//! thousand jobs per second and the wrong shape for the ROADMAP's
//! heavy-multi-tenant target, where nonuniform jobs (a suffix-array
//! compression stage next to a stream of pipe-fib probes) serialize behind
//! each other's bookkeeping. [`ShardedService`] splits the executor:
//!
//! * **Placement** — each submission is routed by *weighted
//!   power-of-two-choices*: probe two distinct shards (uniformly, from a
//!   per-service PRNG), score each as `reserved frames + 4 × queued jobs`,
//!   and submit to the lighter one. Two random probes avoid both the herd
//!   behaviour of pure least-loaded (every submitter simultaneously picks
//!   the same emptiest shard) and the tail latency of pure random, at the
//!   cost of one extra lock acquisition per submit.
//! * **Fallback sweep** — if the chosen shard rejects with a *transient*
//!   verdict (queue full), the spec is offered to every other shard in
//!   ascending-score order before the rejection is surfaced; a structural
//!   verdict (window exceeds the per-shard budget, shutdown) is final. The
//!   spec round-trips through [`PipeService::try_submit`] so nothing is
//!   rebuilt.
//! * **Per-shard frame budgets** — the configured total budget is split
//!   evenly (ceiling division), so `Σ_shards Σ_jobs K_j` keeps the same
//!   Theorem-11-style space bound the single-pool admission controller
//!   enforced, now without a shared admission lock.
//! * **Elasticity** — with [`ShardedServiceBuilder::elastic_workers`], each
//!   shard's pool is built with a worker band `[min, max]`
//!   ([`piper::PoolBuilder::max_threads`]) and a supervisor thread
//!   periodically walks the shards: a shard with queued jobs or backlogged
//!   deques grows by one worker; a shard observed idle for several
//!   consecutive ticks shrinks by one. Growth is immediate, shrink is
//!   hysteretic, so bursty tenants do not flap the band.
//!
//! Placement is *sticky*: a job never migrates after admission (its ring,
//! and therefore its frames, live on one pool), which keeps the per-shard
//! budget accounting exact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::job::{JobHandle, JobSpec};
use crate::metrics::{ServiceMetricsSnapshot, ShardedMetricsSnapshot};
use crate::service::{PipeService, ServiceBuilder, SubmitError};
use crate::submit::Submit;

/// Builder for a [`ShardedService`].
#[derive(Debug, Clone)]
pub struct ShardedServiceBuilder {
    shards: usize,
    workers_per_shard: usize,
    elastic_min: Option<usize>,
    total_frame_budget: Option<usize>,
    max_queue_per_shard: usize,
    supervise_every: Duration,
}

impl Default for ShardedServiceBuilder {
    fn default() -> Self {
        ShardedServiceBuilder {
            shards: 1,
            workers_per_shard: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            elastic_min: None,
            total_frame_budget: None,
            max_queue_per_shard: 1024,
            supervise_every: Duration::from_millis(20),
        }
    }
}

impl ShardedServiceBuilder {
    /// Number of independent shards (default 1). Each shard owns a pool, a
    /// dispatcher thread, a bounded queue and a frame budget.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Pool workers *per shard* (default: machine parallelism). With an
    /// elastic band this is the band's ceiling.
    pub fn workers_per_shard(mut self, n: usize) -> Self {
        self.workers_per_shard = n.max(1);
        self
    }

    /// Makes every shard's pool elastic with worker band
    /// `[min, workers_per_shard]`: pools start at `min` workers and the
    /// supervisor thread grows them under queue pressure / shrinks them
    /// when idle (see the [module docs](self)).
    pub fn elastic_workers(mut self, min: usize) -> Self {
        self.elastic_min = Some(min.max(1));
        self
    }

    /// The *total* frame budget across all shards, split evenly (ceiling
    /// division) into per-shard budgets. Defaults to the per-shard default
    /// of [`ServiceBuilder::frame_budget`] times the shard count.
    pub fn total_frame_budget(mut self, frames: usize) -> Self {
        self.total_frame_budget = Some(frames.max(1));
        self
    }

    /// Bounded submission-queue depth of each shard.
    pub fn max_queue_per_shard(mut self, depth: usize) -> Self {
        self.max_queue_per_shard = depth.max(1);
        self
    }

    /// How often the elastic supervisor samples shard occupancy (default
    /// 20 ms). Irrelevant without [`elastic_workers`](Self::elastic_workers).
    pub fn supervise_every(mut self, period: Duration) -> Self {
        self.supervise_every = period.max(Duration::from_millis(1));
        self
    }

    /// Builds the sharded service, spawning each shard's pool and
    /// dispatcher, plus the supervisor thread if the pools are elastic.
    pub fn build(self) -> ShardedService {
        let n = self.shards;
        let per_shard_budget = self.total_frame_budget.map(|total| total.div_ceil(n));
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            let mut builder = ServiceBuilder::default()
                .num_threads(self.workers_per_shard)
                .max_queue(self.max_queue_per_shard);
            if let Some(min) = self.elastic_min {
                // Start at the band floor: the supervisor grows the pool
                // when demand shows up, so an idle shard stays cheap.
                builder = builder
                    .num_threads(min)
                    .elastic_workers(min, self.workers_per_shard);
            }
            if let Some(frames) = per_shard_budget {
                builder = builder.frame_budget(frames);
            }
            shards.push(builder.build());
        }
        let inner = Arc::new(ShardedInner {
            shards,
            placements: (0..n).map(|_| AtomicU64::new(0)).collect(),
            probe_seed: AtomicU64::new(0x9E37_79B9_7F4A_7C15),
        });
        let supervisor = self.elastic_min.map(|min| {
            let stop = Arc::new(SupervisorStop {
                flag: Mutex::new(false),
                cv: Condvar::new(),
            });
            let thread_stop = Arc::clone(&stop);
            let thread_inner = Arc::clone(&inner);
            let period = self.supervise_every;
            let handle = std::thread::Builder::new()
                .name("pipeserve-elastic".to_string())
                .spawn(move || supervise(&thread_inner, min, period, &thread_stop))
                .expect("failed to spawn elastic supervisor thread");
            (handle, stop)
        });
        ShardedService { inner, supervisor }
    }
}

/// Shard state shared with the supervisor thread.
struct ShardedInner {
    shards: Vec<PipeService>,
    /// Jobs routed to each shard by placement (counted before the shard's
    /// own admission verdict).
    placements: Vec<AtomicU64>,
    /// PRNG state for the power-of-two-choices probes (splitmix64; relaxed
    /// contention on the seed only perturbs probe choice, never correctness).
    probe_seed: AtomicU64,
}

impl ShardedInner {
    /// One splitmix64 draw from the shared probe seed.
    fn draw(&self) -> u64 {
        let x = self
            .probe_seed
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The placement score of shard `i`: reserved frames plus a 4×-weighted
    /// queue depth (a queued job will typically claim a default window of a
    /// few frames once admitted, and backlog is worth penalizing beyond
    /// frames already reserved — latency accrues in the queue).
    fn score(&self, i: usize) -> usize {
        let (frames, queued) = self.shards[i].inner().placement_load();
        frames + 4 * queued
    }
}

/// Stop signal of the supervisor thread (mutex + condvar so shutdown does
/// not have to wait out a full sampling period).
struct SupervisorStop {
    flag: Mutex<bool>,
    cv: Condvar,
}

/// How many consecutive idle observations a shard must accumulate before
/// the supervisor takes a worker away (shrink hysteresis: growth reacts in
/// one tick, shrink in `IDLE_TICKS_TO_SHRINK`).
const IDLE_TICKS_TO_SHRINK: u32 = 5;

/// The elastic supervisor loop: queue-depth-driven grow, idle-driven
/// hysteretic shrink, per shard. The supervisor is the only resizer of
/// these pools, so it steps its own per-shard target ledger rather than
/// the pool's `active_workers` gauge — the gauge transiently lags a
/// shrink (a retiring worker lowers it only when its thread exits), and
/// stepping a lagging gauge could grow by more than one worker per tick.
fn supervise(inner: &ShardedInner, min_workers: usize, period: Duration, stop: &SupervisorStop) {
    let n = inner.shards.len();
    let mut idle_ticks = vec![0u32; n];
    // Elastic pools are built at the band floor (see `build`).
    let mut targets = vec![min_workers; n];
    loop {
        {
            let mut stopped = stop.flag.lock().unwrap();
            while !*stopped {
                let (guard, timeout) = stop.cv.wait_timeout(stopped, period).unwrap();
                stopped = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            if *stopped {
                return;
            }
        }
        for (i, shard) in inner.shards.iter().enumerate() {
            let pool = shard.pool();
            let occ = pool.occupancy();
            let (_, queued) = shard.inner().placement_load();
            let backlogged = queued > 0 || occ.injector_depth + occ.deque_depth > 0;
            if backlogged {
                idle_ticks[i] = 0;
                if targets[i] < pool.max_threads() {
                    targets[i] = pool.resize(targets[i] + 1);
                }
            } else if occ.pipes_running == 0 {
                idle_ticks[i] = idle_ticks[i].saturating_add(1);
                if idle_ticks[i] >= IDLE_TICKS_TO_SHRINK && targets[i] > min_workers {
                    targets[i] = pool.resize(targets[i] - 1);
                    idle_ticks[i] = 0;
                }
            } else {
                // Running but not backlogged: hold the current size.
                idle_ticks[i] = 0;
            }
        }
    }
}

/// A sharded pipeline executor; see the [module docs](self).
pub struct ShardedService {
    inner: Arc<ShardedInner>,
    supervisor: Option<(std::thread::JoinHandle<()>, Arc<SupervisorStop>)>,
}

impl ShardedService {
    /// Starts building a sharded service.
    pub fn builder() -> ShardedServiceBuilder {
        ShardedServiceBuilder::default()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Borrow of shard `i` (panics if out of range) — for tests and
    /// observability; submissions should go through
    /// [`submit`](Self::submit) so placement stays balanced.
    pub fn shard(&self, i: usize) -> &PipeService {
        &self.inner.shards[i]
    }

    /// Placement plus fallback sweep, shared by both [`Submit`] entry
    /// points. Counts nothing; on rejection the error rides back with the
    /// index of the shard the verdict is attributed to (the issuing shard
    /// for a structural verdict, the first choice for a full-sweep
    /// QueueFull).
    fn place(&self, spec: JobSpec) -> Result<JobHandle, (usize, SubmitError)> {
        let n = self.inner.shards.len();
        if n == 1 {
            self.inner.placements[0].fetch_add(1, Ordering::Relaxed);
            return self.inner.shards[0].try_submit(spec).map_err(|e| (0, e));
        }
        // Two distinct probes, lighter one wins; ties go to the first.
        let a = (self.inner.draw() % n as u64) as usize;
        let mut b = (self.inner.draw() % (n as u64 - 1)) as usize;
        if b >= a {
            b += 1;
        }
        let first = if self.inner.score(b) < self.inner.score(a) {
            b
        } else {
            a
        };
        self.inner.placements[first].fetch_add(1, Ordering::Relaxed);
        let mut spec = match self.inner.shards[first].try_submit(spec) {
            Ok(handle) => return Ok(handle),
            Err(SubmitError::QueueFull(spec)) => *spec,
            // Structural verdict: final, attributed where it happened.
            Err(err) => return Err((first, err)),
        };
        // Transient rejection: sweep every other shard, lightest first. The
        // scores are racy snapshots — the sweep is a best-effort second
        // chance, not a fairness mechanism. (Scores are precomputed so each
        // shard's scheduler lock is taken exactly once; `sort_by_key`
        // re-evaluates its key during the sort.)
        let mut order: Vec<(usize, usize)> = (0..n)
            .filter(|&i| i != first)
            .map(|i| (self.inner.score(i), i))
            .collect();
        order.sort_unstable();
        for (_, i) in order {
            self.inner.placements[i].fetch_add(1, Ordering::Relaxed);
            match self.inner.shards[i].try_submit(spec) {
                Ok(handle) => return Ok(handle),
                Err(SubmitError::QueueFull(returned)) => spec = *returned,
                Err(err) => return Err((i, err)),
            }
        }
        // Every shard is full: one rejection of the whole service,
        // attributed to the first-choice shard (a job swept onto another
        // shard is *not* a rejection — only the surfaced verdict counts).
        Err((first, SubmitError::QueueFull(Box::new(spec))))
    }

    /// Merged per-stage node-timing histograms across every shard's pool,
    /// indexed by stage slot (see [`piper::STAGE_TIMING_SLOTS`]).
    pub fn stage_timing(&self) -> Vec<obs::HistogramSnapshot> {
        let mut merged: Vec<obs::HistogramSnapshot> = Vec::new();
        for shard in &self.inner.shards {
            for (slot, h) in shard.pool().stage_timing().into_iter().enumerate() {
                if slot >= merged.len() {
                    merged.push(h);
                } else {
                    merged[slot] = merged[slot].merge(&h);
                }
            }
        }
        merged
    }

    /// Drains every shard pool's flight recorders into one
    /// `(shard, worker, event)` series ordered by coarse timestamp — the
    /// diagnostic dump a daemon prints when a job panics.
    pub fn flight_events(&self) -> Vec<(usize, usize, obs::Event)> {
        let mut out: Vec<(usize, usize, obs::Event)> = self
            .inner
            .shards
            .iter()
            .enumerate()
            .flat_map(|(shard, s)| {
                s.pool()
                    .flight_events()
                    .into_iter()
                    .map(move |(worker, event)| (shard, worker, event))
            })
            .collect();
        out.sort_by_key(|(_, _, e)| e.at_micros);
        out
    }

    /// A point-in-time snapshot: the field-wise aggregate, the per-shard
    /// snapshots, and the placement counts. (The aggregate alone is what
    /// [`Submit::metrics`] returns.)
    pub fn sharded_metrics(&self) -> ShardedMetricsSnapshot {
        let shards: Vec<ServiceMetricsSnapshot> =
            self.inner.shards.iter().map(|s| s.metrics()).collect();
        let aggregate = shards
            .iter()
            .cloned()
            .fold(ServiceMetricsSnapshot::default(), |acc, s| acc + s);
        ShardedMetricsSnapshot {
            aggregate,
            // True maxima alongside the aggregate's sums-of-peaks: the sum
            // is the safe upper bound, the max is what any single shard
            // actually reached.
            max_peak_queue_depth: shards.iter().map(|s| s.peak_queue_depth).max().unwrap_or(0),
            max_peak_frames_in_use: shards
                .iter()
                .map(|s| s.peak_frames_in_use)
                .max()
                .unwrap_or(0),
            shards,
            placements: self
                .inner
                .placements
                .iter()
                .map(|p| p.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Shuts every shard down (rejecting new submissions, cancelling queued
    /// jobs, draining running ones) and stops the elastic supervisor.
    /// Called automatically on drop.
    pub fn shutdown(&mut self) {
        if let Some((handle, stop)) = self.supervisor.take() {
            *stop.flag.lock().unwrap() = true;
            stop.cv.notify_all();
            let _ = handle.join();
        }
        // PipeService::drop runs each shard's own shutdown; doing it
        // explicitly here keeps shutdown eager and ordered after the
        // supervisor stops touching the pools.
        if let Some(inner) = Arc::get_mut(&mut self.inner) {
            for shard in &mut inner.shards {
                shard.shutdown();
            }
        }
    }
}

impl Submit for ShardedService {
    /// Submits a job, routing it by weighted power-of-two-choices and
    /// sweeping the remaining shards on transient rejection (see the
    /// [module docs](self)). A surfaced rejection is counted once, at the
    /// shard the verdict is attributed to.
    fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        self.place(spec).map_err(|(shard, err)| {
            self.inner.shards[shard].count_rejection(&err);
            err
        })
    }

    fn try_submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        self.place(spec).map_err(|(_, err)| err)
    }

    /// The field-wise aggregate over the shards (the single-service-shaped
    /// view); see [`sharded_metrics`](Self::sharded_metrics) for the
    /// per-shard breakdown.
    fn metrics(&self) -> ServiceMetricsSnapshot {
        self.inner
            .shards
            .iter()
            .map(|s| s.metrics())
            .fold(ServiceMetricsSnapshot::default(), |acc, s| acc + s)
    }

    /// Blocks until every shard's queue is empty and no job is admitted or
    /// running. The per-shard drains repeat until one full pass observes
    /// every shard idle, so a submission that lands on an already-drained
    /// shard mid-pass extends the drain. Note the guarantee is per-shard
    /// quiescence observed within one pass, not a linearizable global
    /// barrier: a caller racing live submitters should stop admissions
    /// first (the `piped` server sets its draining flag before calling
    /// this).
    fn drain(&self) {
        loop {
            for shard in &self.inner.shards {
                shard.drain();
            }
            // A job is admitted ⇒ its shard reserves ≥ 1 frame, so
            // (frames, queued) = (0, 0) across a full pass means idle.
            let idle = self.inner.shards.iter().all(|shard| {
                let (frames, queued) = shard.inner().placement_load();
                frames == 0 && queued == 0
            });
            if idle {
                return;
            }
        }
    }
}

impl Drop for ShardedService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ShardedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedService")
            .field("shards", &self.inner.shards.len())
            .field("elastic", &self.supervisor.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Priority;
    use piper::{NodeOutcome, PipeOptions, PipelineIteration, Stage0};
    use std::sync::atomic::AtomicUsize;

    struct Bump(Arc<AtomicUsize>);
    impl PipelineIteration for Bump {
        fn run_node(&mut self, _stage: u64) -> NodeOutcome {
            self.0.fetch_add(1, Ordering::SeqCst);
            NodeOutcome::Done
        }
    }

    fn counting_spec(iters: u64, counter: &Arc<AtomicUsize>) -> JobSpec {
        let counter = Arc::clone(counter);
        JobSpec::new(PipeOptions::with_throttle(2), move |i| {
            if i >= iters {
                return Stage0::Stop;
            }
            Stage0::wait(Bump(Arc::clone(&counter)))
        })
    }

    #[test]
    fn single_shard_is_a_plain_service() {
        let service = ShardedService::builder().workers_per_shard(2).build();
        assert_eq!(service.shards(), 1);
        let counter = Arc::new(AtomicUsize::new(0));
        let handle = service.submit(counting_spec(10, &counter)).unwrap();
        assert!(handle.join().is_completed());
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        let m = service.sharded_metrics();
        assert_eq!(m.placements, vec![1]);
        assert_eq!(m.aggregate.jobs_completed, 1);
    }

    #[test]
    fn placement_spreads_jobs_across_shards() {
        let service = ShardedService::builder()
            .shards(4)
            .workers_per_shard(1)
            .build();
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..64 {
            handles.push(service.submit(counting_spec(4, &counter)).unwrap());
        }
        for h in handles {
            assert!(h.join().is_completed());
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64 * 4);
        let m = service.sharded_metrics();
        assert_eq!(m.aggregate.jobs_completed, 64);
        // Power-of-two-choices over 64 jobs cannot legally put everything
        // on one shard of four: each probe pair covers two shards and the
        // lighter one wins, so at least two shards see work.
        let active_shards = m.shards.iter().filter(|s| s.jobs_completed > 0).count();
        assert!(
            active_shards >= 2,
            "placement collapsed onto {active_shards} shard(s): {:?}",
            m.placements
        );
    }

    #[test]
    fn queue_full_falls_back_to_another_shard() {
        // Shard queues of depth 1 and slow jobs: a burst must overflow one
        // shard's queue and be re-offered to the other rather than bounced.
        let service = ShardedService::builder()
            .shards(2)
            .workers_per_shard(1)
            .max_queue_per_shard(1)
            .build();
        let counter = Arc::new(AtomicUsize::new(0));
        let mut ok = 0usize;
        let mut rejected = 0usize;
        let mut handles = Vec::new();
        for _ in 0..16 {
            match service.submit(counting_spec(50, &counter)) {
                Ok(h) => {
                    ok += 1;
                    handles.push(h);
                }
                Err(SubmitError::QueueFull(_)) => rejected += 1,
                Err(e) => panic!("unexpected rejection: {e}"),
            }
        }
        for h in handles {
            assert!(h.join().is_completed());
        }
        assert_eq!(counter.load(Ordering::SeqCst), ok * 50);
        // Depth-1 queues on two shards admit at least 2 queued + 2 running.
        assert!(ok >= 2, "only {ok} of 16 accepted");
        assert_eq!(ok + rejected, 16);
    }

    #[test]
    fn oversized_window_is_rejected_structurally() {
        let service = ShardedService::builder()
            .shards(2)
            .workers_per_shard(1)
            .total_frame_budget(8) // 4 per shard
            .build();
        let err = service
            .submit(
                JobSpec::new(PipeOptions::with_throttle(64), move |_| {
                    Stage0::<Bump>::Stop
                })
                .priority(Priority::Batch),
            )
            .expect_err("window 64 cannot fit a 4-frame shard budget");
        assert!(matches!(
            err,
            SubmitError::FrameWindowExceedsBudget {
                window: 64,
                budget: 4
            }
        ));
    }

    #[test]
    fn elastic_shards_grow_under_load_and_shrink_when_idle() {
        let service = ShardedService::builder()
            .shards(2)
            .workers_per_shard(3)
            .elastic_workers(1)
            .supervise_every(Duration::from_millis(2))
            .build();
        for i in 0..2 {
            assert_eq!(service.shard(i).pool().num_threads(), 1);
            assert_eq!(service.shard(i).pool().max_threads(), 3);
        }
        // Saturate: long jobs with spinning nodes on both shards.
        struct Spin;
        impl PipelineIteration for Spin {
            fn run_node(&mut self, _stage: u64) -> NodeOutcome {
                let mut acc = 1u64;
                for k in 0..20_000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                std::hint::black_box(acc);
                NodeOutcome::Done
            }
        }
        let mut handles = Vec::new();
        for _ in 0..12 {
            handles.push(
                service
                    .submit(JobSpec::new(PipeOptions::with_throttle(2), move |i| {
                        if i >= 300 {
                            return Stage0::Stop;
                        }
                        Stage0::proceed(Spin)
                    }))
                    .unwrap(),
            );
        }
        // The supervisor must grow at least one shard beyond the floor
        // while the backlog exists.
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        loop {
            let grown = (0..2).any(|i| service.shard(i).pool().num_threads() > 1);
            if grown {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no shard ever grew beyond the band floor"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        for h in handles {
            assert!(h.join().is_completed());
        }
        service.drain();
        // Idle: the supervisor must shrink back to the floor.
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        loop {
            let at_floor = (0..2).all(|i| service.shard(i).pool().num_threads() == 1);
            if at_floor {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "shards never shrank back to the band floor: {} / {}",
                service.shard(0).pool().num_threads(),
                service.shard(1).pool().num_threads(),
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}
