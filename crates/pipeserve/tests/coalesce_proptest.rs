//! Property test for request coalescing: any number of identical keyed
//! submissions, with any subset cancelled mid-flight, must run at most one
//! pipeline, resolve every surviving handle with byte-identical output,
//! and leak no reserved frames.
//!
//! Defaults to 24 cases so the suite stays fast; the nightly stress job
//! raises it with `PROPTEST_CASES=240` (the devshim honours the variable
//! as an absolute override).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use piper::PipeOptions;
use pipeserve::{
    CachedService, ContentKey, JobResult, JobSpec, OutputSink, PipeService, SinkLaunchFn, Submit,
};
use proptest::prelude::*;

/// Deterministic reference output for input `x` (the "workload").
fn transform(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() * 2);
    for (i, b) in input.iter().enumerate() {
        out.push(b.wrapping_mul(31).wrapping_add(i as u8));
    }
    out.extend_from_slice(input);
    out
}

/// Single-iteration pipeline: streams `head`, parks on `gate`, streams
/// `tail`.
struct Emit {
    sink: Option<OutputSink>,
    head: Vec<u8>,
    tail: Vec<u8>,
    gate: Arc<AtomicBool>,
}

impl piper::PipelineIteration for Emit {
    fn run_node(&mut self, _stage: u64) -> piper::NodeOutcome {
        let mut sink = self.sink.take().expect("single iteration");
        if !self.head.is_empty() {
            sink(checksum::buf::Chunk::from_vec(std::mem::take(
                &mut self.head,
            )));
        }
        while !self.gate.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        sink(checksum::buf::Chunk::from_vec(std::mem::take(
            &mut self.tail,
        )));
        piper::NodeOutcome::Done
    }
}

fn keyed_spec(
    input: &[u8],
    runs: &Arc<AtomicU64>,
    gate: &Arc<AtomicBool>,
    out: &Arc<Mutex<Vec<u8>>>,
) -> JobSpec {
    let key = ContentKey::new("prop", input);
    let output = transform(input);
    let out = Arc::clone(out);
    let sink: OutputSink = Box::new(move |chunk: checksum::buf::Chunk| {
        out.lock().unwrap().extend_from_slice(&chunk);
    });
    let runs = Arc::clone(runs);
    let gate = Arc::clone(gate);
    let factory: SinkLaunchFn = Box::new(move |sink: OutputSink| {
        runs.fetch_add(1, Ordering::SeqCst);
        let split = output.len() / 2;
        let head = output[..split].to_vec();
        let tail = output[split..].to_vec();
        let mut emit = Some(Emit {
            sink: Some(sink),
            head,
            tail,
            gate,
        });
        Box::new(move |pool, opts| {
            piper::spawn_pipe(pool, opts, move |i| {
                if i == 0 {
                    piper::Stage0::wait(emit.take().expect("one iteration"))
                } else {
                    piper::Stage0::Stop
                }
            })
        })
    });
    JobSpec::keyed(PipeOptions::with_throttle(2), key, sink, factory).named("prop")
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_cancel_subset_of_coalesced_subscribers_is_safe(
        subscribers in 1usize..=6,
        cancel_mask in any::<u8>(),
        input in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let service = CachedService::new(PipeService::builder().num_threads(2).build());
        let runs = Arc::new(AtomicU64::new(0));
        let gate = Arc::new(AtomicBool::new(false));
        let reference = transform(&input);

        // All submissions land while the one run is parked on the gate, so
        // none can be answered from the LRU: 1 miss + (n-1) coalesces.
        let mut handles = Vec::new();
        let mut outs = Vec::new();
        for _ in 0..subscribers {
            let out = Arc::new(Mutex::new(Vec::new()));
            handles.push(
                service
                    .submit(keyed_spec(&input, &runs, &gate, &out))
                    .expect("submit"),
            );
            outs.push(out);
        }
        // The launch is asynchronous (dispatcher-side); wait for it so the
        // cancel subset always hits a parked *running* pipeline.
        wait_until("the one run to launch", || runs.load(Ordering::SeqCst) == 1);

        let cancelled: Vec<bool> = (0..subscribers)
            .map(|i| cancel_mask & (1 << i) != 0)
            .collect();
        for (handle, cancel) in handles.iter().zip(&cancelled) {
            if *cancel {
                handle.cancel();
                // Cancelled subscribers resolve immediately, without the
                // pipeline (which may still be parked on the gate).
                prop_assert!(matches!(handle.join(), JobResult::Cancelled(None)));
            }
        }
        gate.store(true, Ordering::Release);

        let all_cancelled = cancelled.iter().all(|&c| c);
        for ((handle, out), cancel) in handles.iter().zip(&outs).zip(&cancelled) {
            if *cancel {
                continue;
            }
            prop_assert!(handle.join().is_completed());
            prop_assert_eq!(&*out.lock().unwrap(), &reference);
        }
        service.drain();
        prop_assert_eq!(runs.load(Ordering::SeqCst), 1);

        // No reserved frames survive, whichever way the run ended.
        wait_until("frames to release", || {
            service.inner().metrics().frames_in_use == 0
        });
        let stats = service.cache_stats();
        prop_assert_eq!(stats.misses, 1);
        prop_assert_eq!(stats.coalesced, (subscribers - 1) as u64);
        if all_cancelled {
            // The aborted run must not be cached, and the key must remain
            // usable: a fresh identical submission runs again and is
            // byte-identical to the reference.
            prop_assert_eq!(stats.entries, 0);
            let out = Arc::new(Mutex::new(Vec::new()));
            let retry = service
                .submit(keyed_spec(&input, &runs, &gate, &out))
                .expect("retry");
            prop_assert!(retry.join().is_completed());
            prop_assert_eq!(&*out.lock().unwrap(), &reference);
            prop_assert_eq!(runs.load(Ordering::SeqCst), 2);
        } else {
            // At least one survivor: the completed output was cached and a
            // follow-up identical submission is a pure hit.
            prop_assert_eq!(stats.entries, 1);
            let out = Arc::new(Mutex::new(Vec::new()));
            let hit = service
                .submit(keyed_spec(&input, &runs, &gate, &out))
                .expect("hit");
            prop_assert!(hit.join().is_completed());
            prop_assert_eq!(&*out.lock().unwrap(), &reference);
            prop_assert_eq!(runs.load(Ordering::SeqCst), 1);
        }
    }
}
