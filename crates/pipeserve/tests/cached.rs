//! `CachedService` integration tests: coalescing races (exactly one
//! pipeline per identical in-flight key), byte-identical cached responses,
//! LRU eviction under budget pressure, and the never-cache rules for
//! cancelled / panicked jobs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use piper::PipeOptions;
use pipeserve::{
    CachedService, ContentKey, JobResult, JobSpec, OutputSink, PipeService, SinkLaunchFn, Submit,
    SubmitError,
};

/// The deterministic reference "workload": a keyed job with input `x`
/// streams exactly `transform(x)` (twice the input length, which keeps the
/// eviction test's byte arithmetic simple).
fn transform(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() * 2);
    for (i, b) in input.iter().enumerate() {
        out.push(b.wrapping_mul(31).wrapping_add(i as u8));
    }
    out.extend_from_slice(input);
    out
}

/// Single-iteration pipeline that streams `head`, optionally parks on
/// `gate` (so tests can hold the job in flight), optionally panics, then
/// streams `tail`.
struct Emit {
    sink: Option<OutputSink>,
    head: Vec<u8>,
    tail: Vec<u8>,
    gate: Option<Arc<AtomicBool>>,
    panic_mid: bool,
}

impl piper::PipelineIteration for Emit {
    fn run_node(&mut self, _stage: u64) -> piper::NodeOutcome {
        let mut sink = self.sink.take().expect("single iteration");
        if !self.head.is_empty() {
            sink(checksum::buf::Chunk::from_vec(std::mem::take(
                &mut self.head,
            )));
        }
        if let Some(gate) = &self.gate {
            while !gate.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        }
        assert!(!self.panic_mid, "job panics after streaming its head");
        sink(checksum::buf::Chunk::from_vec(std::mem::take(
            &mut self.tail,
        )));
        piper::NodeOutcome::Done
    }
}

/// Builds a keyed spec for input `input` under `workload`. `runs` counts
/// pipeline launches (the coalescing tests assert it stays at 1), `gate`
/// holds the pipeline in flight after `head_len` output bytes, and
/// `panic_first_run` makes only the first launch panic mid-stream.
#[allow(clippy::too_many_arguments)]
fn keyed_spec(
    workload: &str,
    input: &[u8],
    runs: &Arc<AtomicU64>,
    gate: Option<Arc<AtomicBool>>,
    head_len: usize,
    panic_first_run: bool,
    out: &Arc<Mutex<Vec<u8>>>,
) -> JobSpec {
    let key = ContentKey::new(workload, input);
    let output = transform(input);
    let out = Arc::clone(out);
    let sink: OutputSink = Box::new(move |chunk: checksum::buf::Chunk| {
        out.lock().unwrap().extend_from_slice(&chunk);
    });
    let runs = Arc::clone(runs);
    let factory: SinkLaunchFn = Box::new(move |sink: OutputSink| {
        let run = runs.fetch_add(1, Ordering::SeqCst);
        let split = head_len.min(output.len());
        let head = output[..split].to_vec();
        let tail = output[split..].to_vec();
        let mut emit = Some(Emit {
            sink: Some(sink),
            head,
            tail,
            gate,
            panic_mid: panic_first_run && run == 0,
        });
        Box::new(move |pool, opts| {
            piper::spawn_pipe(pool, opts, move |i| {
                if i == 0 {
                    piper::Stage0::wait(emit.take().expect("one iteration"))
                } else {
                    piper::Stage0::Stop
                }
            })
        })
    });
    JobSpec::keyed(PipeOptions::with_throttle(2), key, sink, factory).named(workload)
}

fn simple_keyed(
    workload: &str,
    input: &[u8],
    runs: &Arc<AtomicU64>,
    out: &Arc<Mutex<Vec<u8>>>,
) -> JobSpec {
    keyed_spec(workload, input, runs, None, 0, false, out)
}

/// Spins until `cond` holds (bounded), so tests sequence against the
/// asynchronous tee/attach paths without fixed sleeps.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

/// A keyed job submitted to a *plain* (uncached) service streams into the
/// submitter's own sink, exactly like `from_launch(factory(sink))`.
#[test]
fn keyed_spec_on_an_uncached_service_streams_to_the_submitter() {
    let service = PipeService::builder().num_threads(2).build();
    let runs = Arc::new(AtomicU64::new(0));
    let out = Arc::new(Mutex::new(Vec::new()));
    let input = b"uncached keyed submission".to_vec();
    let handle = service
        .submit(simple_keyed("ref", &input, &runs, &out))
        .expect("submit keyed");
    assert!(handle.join().is_completed());
    assert_eq!(*out.lock().unwrap(), transform(&input));
    assert_eq!(runs.load(Ordering::SeqCst), 1);
    // An uncached executor reports zeroed cache counters.
    let metrics = service.metrics();
    assert_eq!(
        (metrics.cache_hits, metrics.cache_misses, metrics.coalesced),
        (0, 0, 0)
    );
}

/// A cache hit re-serves the stored output byte-identically to the serial
/// reference, without launching a second pipeline.
#[test]
fn cache_hit_is_byte_identical_and_runs_no_pipeline() {
    let service = CachedService::new(PipeService::builder().num_threads(2).build());
    let runs = Arc::new(AtomicU64::new(0));
    let input = b"some deterministic workload input".to_vec();
    let reference = transform(&input);

    let first_out = Arc::new(Mutex::new(Vec::new()));
    let first = service
        .submit(simple_keyed("wl", &input, &runs, &first_out))
        .expect("first submit");
    assert!(first.join().is_completed());
    assert_eq!(*first_out.lock().unwrap(), reference);

    let second_out = Arc::new(Mutex::new(Vec::new()));
    let second = service
        .submit(simple_keyed("wl", &input, &runs, &second_out))
        .expect("second submit");
    let result = second.join();
    assert!(result.is_completed());
    assert!(
        result.stats().is_some(),
        "hits re-report the original stats"
    );
    assert_eq!(*second_out.lock().unwrap(), reference);

    assert_eq!(
        runs.load(Ordering::SeqCst),
        1,
        "hit must not run a pipeline"
    );
    let stats = service.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.coalesced), (1, 1, 0));
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.bytes, reference.len() as u64);
    // The trait surface reports the same counters; only the one real
    // pipeline reached the inner executor.
    let metrics = service.metrics();
    assert_eq!((metrics.cache_hits, metrics.cache_misses), (1, 1));
    assert_eq!(service.inner().metrics().jobs_submitted, 1);

    // A different workload id over the same bytes is a different key.
    let other_out = Arc::new(Mutex::new(Vec::new()));
    let other = service
        .submit(simple_keyed("wl2", &input, &runs, &other_out))
        .expect("other workload");
    assert!(other.join().is_completed());
    assert_eq!(runs.load(Ordering::SeqCst), 2);
}

/// The coalescing race of the issue: N threads submit an identical spec
/// concurrently — exactly one pipeline runs and every handle resolves with
/// byte-identical output.
#[test]
fn concurrent_identical_submissions_coalesce_onto_one_run() {
    const N: usize = 8;
    let service = Arc::new(CachedService::new(
        PipeService::builder().num_threads(2).build(),
    ));
    let runs = Arc::new(AtomicU64::new(0));
    let gate = Arc::new(AtomicBool::new(false));
    let input = b"identical input submitted from many threads".to_vec();
    let reference = transform(&input);
    let submitted = Arc::new(AtomicU64::new(0));
    let start = Arc::new(Barrier::new(N));

    let mut workers = Vec::new();
    for _ in 0..N {
        let service = Arc::clone(&service);
        let runs = Arc::clone(&runs);
        let gate = Arc::clone(&gate);
        let input = input.clone();
        let submitted = Arc::clone(&submitted);
        let start = Arc::clone(&start);
        workers.push(std::thread::spawn(move || {
            let out = Arc::new(Mutex::new(Vec::new()));
            let spec = keyed_spec("zipfed", &input, &runs, Some(gate), 4, false, &out);
            start.wait();
            let handle = service.submit(spec).expect("submit");
            submitted.fetch_add(1, Ordering::SeqCst);
            let result = handle.join();
            (result, out)
        }));
    }
    // Open the gate only once every thread has submitted: with the one run
    // parked, none of them can be answered from the LRU, so the split must
    // be exactly 1 miss + (N-1) coalesces.
    wait_until("all submissions to land", || {
        submitted.load(Ordering::SeqCst) == N as u64
    });
    gate.store(true, Ordering::Release);

    for worker in workers {
        let (result, out) = worker.join().expect("worker thread");
        assert!(result.is_completed(), "coalesced handle got {result:?}");
        assert_eq!(*out.lock().unwrap(), reference, "subscriber output differs");
    }
    assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one pipeline runs");
    let stats = service.cache_stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.coalesced, (N - 1) as u64);
    assert_eq!(stats.hits, 0);
    assert_eq!(service.inner().metrics().jobs_submitted, 1);

    // And the run's output was cached: one more submission is a pure hit.
    let out = Arc::new(Mutex::new(Vec::new()));
    let hit = service
        .submit(simple_keyed("zipfed", &input, &runs, &out))
        .expect("post-run submit");
    assert!(hit.join().is_completed());
    assert_eq!(*out.lock().unwrap(), reference);
    assert_eq!(runs.load(Ordering::SeqCst), 1);
}

/// Mixed cancel/join subscribers: cancelling some (not all) coalesced
/// handles detaches only those subscribers — the pipeline keeps running for
/// the rest, cancelled sinks receive nothing further, and no frames leak.
#[test]
fn cancelling_some_coalesced_subscribers_keeps_the_run_alive() {
    const N: usize = 6;
    let service = CachedService::new(PipeService::builder().num_threads(2).build());
    let runs = Arc::new(AtomicU64::new(0));
    let gate = Arc::new(AtomicBool::new(false));
    let input = b"mixed cancel and join subscribers".to_vec();
    let reference = transform(&input);
    let head_len = 8usize;

    let mut handles = Vec::new();
    let mut outs = Vec::new();
    for _ in 0..N {
        let out = Arc::new(Mutex::new(Vec::new()));
        let spec = keyed_spec(
            "mixed",
            &input,
            &runs,
            Some(Arc::clone(&gate)),
            head_len,
            false,
            &out,
        );
        handles.push(service.submit(spec).expect("submit"));
        outs.push(out);
    }
    // Wait for the head bytes to reach every subscriber (attach catch-up or
    // tee), so the cancelled sinks' final contents are deterministic.
    wait_until("head bytes to reach every sink", || {
        outs.iter().all(|o| o.lock().unwrap().len() >= head_len)
    });
    for handle in &handles[..N / 2] {
        handle.cancel();
    }
    // A cancelled subscriber resolves immediately, without the pipeline.
    for handle in &handles[..N / 2] {
        assert!(matches!(handle.join(), JobResult::Cancelled(None)));
    }
    gate.store(true, Ordering::Release);
    for handle in &handles[N / 2..] {
        assert!(handle.join().is_completed());
    }
    service.drain();

    for (i, out) in outs.iter().enumerate() {
        let out = out.lock().unwrap();
        if i < N / 2 {
            assert_eq!(
                *out,
                reference[..head_len],
                "cancelled sink {i} must receive nothing past the cancel"
            );
        } else {
            assert_eq!(*out, reference, "live sink {i} output differs");
        }
    }
    assert_eq!(runs.load(Ordering::SeqCst), 1);
    // The one pipeline completed (nobody aborted it) and released its
    // frames; the completed output was cached despite the cancellations.
    let inner = service.inner().metrics();
    assert_eq!(inner.jobs_completed, 1);
    assert_eq!(inner.jobs_cancelled, 0);
    assert_eq!(inner.frames_in_use, 0, "coalesced cancels leaked frames");
    assert_eq!(inner.running, 0);
    assert_eq!(service.cache_stats().entries, 1);
}

/// Cancelling the *last* live subscriber aborts the underlying pipeline,
/// unregisters the in-flight entry, and caches nothing — a later identical
/// submission starts a fresh run.
#[test]
fn last_subscriber_cancel_aborts_the_underlying_job_and_caches_nothing() {
    let service = CachedService::new(PipeService::builder().num_threads(2).build());
    let runs = Arc::new(AtomicU64::new(0));
    let gate = Arc::new(AtomicBool::new(false));
    let input = b"abort on last cancel".to_vec();

    let out_a = Arc::new(Mutex::new(Vec::new()));
    let out_b = Arc::new(Mutex::new(Vec::new()));
    let first = service
        .submit(keyed_spec(
            "abort",
            &input,
            &runs,
            Some(Arc::clone(&gate)),
            4,
            false,
            &out_a,
        ))
        .expect("first");
    let second = service
        .submit(keyed_spec(
            "abort",
            &input,
            &runs,
            Some(Arc::clone(&gate)),
            4,
            false,
            &out_b,
        ))
        .expect("second");
    wait_until("the run to start", || runs.load(Ordering::SeqCst) == 1);

    first.cancel();
    assert!(matches!(first.join(), JobResult::Cancelled(None)));
    // Still one live subscriber: the underlying job must not be cancelled.
    assert_eq!(service.inner().metrics().jobs_cancelled, 0);

    second.cancel();
    assert!(matches!(second.join(), JobResult::Cancelled(None)));
    // Let the parked iteration drain so the cancel can take effect.
    gate.store(true, Ordering::Release);
    service.drain();
    wait_until("the underlying job to cancel", || {
        service.inner().metrics().jobs_cancelled == 1
    });

    let stats = service.cache_stats();
    assert_eq!(stats.entries, 0, "an aborted run must not be cached");
    assert_eq!(service.inner().metrics().frames_in_use, 0);

    // The entry was unregistered: an identical submission runs afresh.
    let out = Arc::new(Mutex::new(Vec::new()));
    let again = service
        .submit(simple_keyed("abort", &input, &runs, &out))
        .expect("fresh submit");
    assert!(again.join().is_completed());
    assert_eq!(*out.lock().unwrap(), transform(&input));
    assert_eq!(runs.load(Ordering::SeqCst), 2, "fresh run after abort");
}

/// LRU eviction under byte-budget pressure: inserting past the budget
/// evicts the least-recently-used entry (a hit refreshes recency), and the
/// stored byte total never exceeds the budget.
#[test]
fn lru_evicts_least_recently_used_under_budget_pressure() {
    // 256-byte inputs produce 512-byte outputs; a 4096-byte budget holds
    // exactly 8 of them (max_entry_bytes = 512, so they are all cacheable).
    let service = CachedService::with_capacity(PipeService::builder().num_threads(2).build(), 4096);
    let runs = Arc::new(AtomicU64::new(0));
    let input_for = |tag: u8| vec![tag; 256];

    for tag in 0..8u8 {
        let out = Arc::new(Mutex::new(Vec::new()));
        let handle = service
            .submit(simple_keyed("lru", &input_for(tag), &runs, &out))
            .expect("fill submit");
        assert!(handle.join().is_completed());
    }
    let stats = service.cache_stats();
    assert_eq!((stats.entries, stats.evictions), (8, 0), "budget fits 8");
    assert_eq!(stats.bytes, 4096);

    // Touch key 0 so key 1 becomes the least recently used...
    let out = Arc::new(Mutex::new(Vec::new()));
    let hit = service
        .submit(simple_keyed("lru", &input_for(0), &runs, &out))
        .expect("refresh submit");
    assert!(hit.join().is_completed());
    assert_eq!(runs.load(Ordering::SeqCst), 8, "refresh was a hit");

    // ...then push one more entry over the budget: key 1 must fall out.
    let out = Arc::new(Mutex::new(Vec::new()));
    let push = service
        .submit(simple_keyed("lru", &input_for(8), &runs, &out))
        .expect("overflow submit");
    assert!(push.join().is_completed());
    let stats = service.cache_stats();
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.entries, 8);
    assert!(stats.bytes <= stats.capacity_bytes);

    // Key 0 survived (recently used)…
    let out = Arc::new(Mutex::new(Vec::new()));
    let hit = service
        .submit(simple_keyed("lru", &input_for(0), &runs, &out))
        .expect("survivor submit");
    assert!(hit.join().is_completed());
    assert_eq!(runs.load(Ordering::SeqCst), 9, "key 0 still cached");
    // …and key 1 was evicted: resubmitting it runs a fresh pipeline.
    let out = Arc::new(Mutex::new(Vec::new()));
    let miss = service
        .submit(simple_keyed("lru", &input_for(1), &runs, &out))
        .expect("evicted submit");
    assert!(miss.join().is_completed());
    assert_eq!(*out.lock().unwrap(), transform(&input_for(1)));
    assert_eq!(runs.load(Ordering::SeqCst), 10, "evicted key re-runs");
}

/// Outputs above the per-entry ceiling (an eighth of the budget) are served
/// correctly but never stored — one oversized job cannot wipe the cache.
#[test]
fn oversized_outputs_are_never_cached() {
    let service = CachedService::with_capacity(PipeService::builder().num_threads(2).build(), 1024);
    let runs = Arc::new(AtomicU64::new(0));
    let input = vec![7u8; 256]; // 512-byte output > 1024/8 ceiling
    for round in 1..=2u64 {
        let out = Arc::new(Mutex::new(Vec::new()));
        let handle = service
            .submit(simple_keyed("big", &input, &runs, &out))
            .expect("submit oversized");
        assert!(handle.join().is_completed());
        assert_eq!(*out.lock().unwrap(), transform(&input));
        assert_eq!(runs.load(Ordering::SeqCst), round, "each round re-runs");
    }
    assert_eq!(service.cache_stats().entries, 0);
}

/// A panicked job surfaces `Panicked` to every subscriber and is never
/// cached; the key stays usable and a later clean run is cached normally.
#[test]
fn panicked_jobs_are_never_cached() {
    let service = CachedService::new(PipeService::builder().num_threads(2).build());
    let runs = Arc::new(AtomicU64::new(0));
    let input = b"panics on its first run".to_vec();

    let out = Arc::new(Mutex::new(Vec::new()));
    let poisoned = service
        .submit(keyed_spec("flaky", &input, &runs, None, 4, true, &out))
        .expect("poisoned submit");
    assert!(matches!(poisoned.join(), JobResult::Panicked(_)));
    assert_eq!(service.cache_stats().entries, 0, "panic must not be cached");

    // The second run completes and is cached; the third is a pure hit.
    let out = Arc::new(Mutex::new(Vec::new()));
    let clean = service
        .submit(keyed_spec("flaky", &input, &runs, None, 4, true, &out))
        .expect("clean submit");
    assert!(clean.join().is_completed());
    assert_eq!(*out.lock().unwrap(), transform(&input));

    let out = Arc::new(Mutex::new(Vec::new()));
    let hit = service
        .submit(keyed_spec("flaky", &input, &runs, None, 4, true, &out))
        .expect("hit submit");
    assert!(hit.join().is_completed());
    assert_eq!(*out.lock().unwrap(), transform(&input));
    assert_eq!(runs.load(Ordering::SeqCst), 2);
    let stats = service.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 2));
}

/// `QueueFull` through the cache layer hands back a keyed spec that is
/// still intact: same content key, and resubmitting it later runs the job
/// and caches its output normally.
#[test]
fn queue_full_hands_the_keyed_spec_back_intact() {
    let service = CachedService::new(
        PipeService::builder()
            .num_threads(1)
            .frame_budget(2)
            .max_queue(1)
            .build(),
    );
    let runs = Arc::new(AtomicU64::new(0));
    let gate = Arc::new(AtomicBool::new(false));

    // Exhaust the budget with a parked keyed job, then fill the one queue
    // slot with a plain job that cannot be admitted.
    let blocker_out = Arc::new(Mutex::new(Vec::new()));
    let blocker = service
        .submit(keyed_spec(
            "blocker",
            b"hold the budget",
            &runs,
            Some(Arc::clone(&gate)),
            0,
            false,
            &blocker_out,
        ))
        .expect("blocker submit");
    wait_until("the blocker to start", || runs.load(Ordering::SeqCst) == 1);
    let filler = service
        .submit(JobSpec::new(PipeOptions::with_throttle(2), |_| {
            piper::Stage0::<Emit>::Stop
        }))
        .expect("filler fits the queue");

    let input = b"rejected then resubmitted".to_vec();
    let key = ContentKey::new("bounce", &input);
    let out = Arc::new(Mutex::new(Vec::new()));
    let spec = keyed_spec("bounce", &input, &runs, None, 0, false, &out)
        .priority(pipeserve::Priority::Batch);
    let err = service.try_submit(spec).expect_err("queue is full");
    let returned = match err {
        SubmitError::QueueFull(spec) => *spec,
        other => panic!("expected QueueFull, got {other}"),
    };
    assert_eq!(returned.content_key(), Some(&key), "key survives rejection");
    // try_submit counts nothing; the rejection never reached a counter
    // (the 1 miss on record is the keyed blocker itself).
    assert_eq!(service.inner().metrics().jobs_rejected, 0);
    assert_eq!(service.cache_stats().misses, 1);

    // Free capacity and re-offer the *returned* spec: it must still run,
    // stream to the original sink, and cache normally.
    gate.store(true, Ordering::Release);
    assert!(blocker.join().is_completed());
    assert!(filler.join().is_completed());
    service.drain();
    let handle = service.submit(returned).expect("re-offer");
    assert!(handle.join().is_completed());
    assert_eq!(*out.lock().unwrap(), transform(&input));
    assert_eq!(service.cache_stats().misses, 2);

    let out2 = Arc::new(Mutex::new(Vec::new()));
    let hit = service
        .submit(simple_keyed("bounce", &input, &runs, &out2))
        .expect("hit after re-offer");
    assert!(hit.join().is_completed());
    assert_eq!(*out2.lock().unwrap(), transform(&input));
    assert_eq!(service.cache_stats().hits, 1);
}

/// Late subscribers that race the terminal hook (entry still registered,
/// result already terminal) resolve exactly like hits, and subscribers
/// attaching mid-stream are caught up on everything produced so far.
#[test]
fn mid_stream_subscribers_catch_up_on_captured_bytes() {
    let service = CachedService::new(PipeService::builder().num_threads(2).build());
    let runs = Arc::new(AtomicU64::new(0));
    let gate = Arc::new(AtomicBool::new(false));
    let input = b"late subscribers catch up".to_vec();
    let reference = transform(&input);
    let head_len = 10usize;

    let out_a = Arc::new(Mutex::new(Vec::new()));
    let first = service
        .submit(keyed_spec(
            "late",
            &input,
            &runs,
            Some(Arc::clone(&gate)),
            head_len,
            false,
            &out_a,
        ))
        .expect("first");
    // Wait until the head has streamed, then attach: the new subscriber
    // must be caught up synchronously from the capture buffer.
    wait_until("head bytes to stream", || {
        out_a.lock().unwrap().len() >= head_len
    });
    let out_b = Arc::new(Mutex::new(Vec::new()));
    let second = service
        .submit(keyed_spec(
            "late",
            &input,
            &runs,
            Some(Arc::clone(&gate)),
            head_len,
            false,
            &out_b,
        ))
        .expect("second");
    assert_eq!(*out_b.lock().unwrap(), reference[..head_len]);

    gate.store(true, Ordering::Release);
    assert!(first.join().is_completed());
    assert!(second.join().is_completed());
    assert_eq!(*out_a.lock().unwrap(), reference);
    assert_eq!(*out_b.lock().unwrap(), reference);
    assert_eq!(runs.load(Ordering::SeqCst), 1);
    assert_eq!(service.cache_stats().coalesced, 1);
}
