//! Sharded-executor integration tests: placement under concurrent
//! submissions must lose no job, respect every shard's frame budget, and
//! leave workload outputs byte-identical to their serial references.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use piper::PipeOptions;
use pipeserve::{JobSpec, Priority, ShardedService, Submit, SubmitError};

/// Mixed fleet from several submitter threads: every accepted job must
/// reach a terminal state, the per-shard ledgers must add up to the offered
/// totals, and each shard's peak frame usage must respect its own budget.
#[test]
fn concurrent_submissions_lose_no_job_and_respect_shard_budgets() {
    let shards = 3;
    let per_shard_budget = 8;
    let service = Arc::new(
        ShardedService::builder()
            .shards(shards)
            .workers_per_shard(2)
            .total_frame_budget(shards * per_shard_budget)
            .max_queue_per_shard(4)
            .build(),
    );
    let accepted = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let completed_iterations = Arc::new(AtomicU64::new(0));

    let mut submitters = Vec::new();
    for t in 0..4u64 {
        let service = Arc::clone(&service);
        let accepted = Arc::clone(&accepted);
        let rejected = Arc::clone(&rejected);
        let completed_iterations = Arc::clone(&completed_iterations);
        submitters.push(std::thread::spawn(move || {
            let mut handles = Vec::new();
            for i in 0..30u64 {
                let iters = 20 + (i % 5);
                let sink = Arc::clone(&completed_iterations);
                let spec = JobSpec::new(PipeOptions::with_throttle(2), move |j| {
                    if j >= iters {
                        return piper::Stage0::Stop;
                    }
                    struct Count(Arc<AtomicU64>);
                    impl piper::PipelineIteration for Count {
                        fn run_node(&mut self, _stage: u64) -> piper::NodeOutcome {
                            self.0.fetch_add(1, Ordering::SeqCst);
                            piper::NodeOutcome::Done
                        }
                    }
                    piper::Stage0::wait(Count(Arc::clone(&sink)))
                })
                .named(format!("job-{t}-{i}"))
                .priority(
                    [Priority::Interactive, Priority::Normal, Priority::Batch][i as usize % 3],
                );
                match service.submit(spec) {
                    Ok(handle) => {
                        accepted.fetch_add(1, Ordering::SeqCst);
                        handles.push((handle, iters));
                    }
                    Err(SubmitError::QueueFull(_)) => {
                        rejected.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(e) => panic!("unexpected rejection: {e}"),
                }
            }
            let mut expected = 0u64;
            for (handle, iters) in handles {
                assert!(
                    handle.join().is_completed(),
                    "accepted job ended non-completed"
                );
                expected += iters;
            }
            expected
        }));
    }
    let expected_iterations: u64 = submitters.into_iter().map(|t| t.join().unwrap()).sum();
    service.drain();

    // No lost jobs: the shard ledgers account for every accepted one, and
    // every iteration of every accepted job ran exactly once.
    let snapshot = service.sharded_metrics();
    assert_eq!(
        accepted.load(Ordering::SeqCst) + rejected.load(Ordering::SeqCst),
        120
    );
    assert_eq!(
        snapshot.aggregate.jobs_completed,
        accepted.load(Ordering::SeqCst)
    );
    assert_eq!(
        completed_iterations.load(Ordering::SeqCst),
        expected_iterations
    );
    assert_eq!(snapshot.shards.len(), shards);
    assert!(snapshot.placements.iter().sum::<u64>() >= 120);

    // Per-shard budgets: each shard's peak reserved frames stayed within
    // its own budget (the invariant sharding must not dilute).
    for (i, shard) in snapshot.shards.iter().enumerate() {
        assert_eq!(shard.frame_budget, per_shard_budget as u64, "shard {i}");
        assert!(
            shard.peak_frames_in_use <= shard.frame_budget,
            "shard {i} exceeded its frame budget: {} > {}",
            shard.peak_frames_in_use,
            shard.frame_budget
        );
    }
}

/// Real workloads through a sharded elastic service: outputs must be
/// byte-identical (or structurally identical) to the serial references, no
/// matter which shard ran them or how the pools breathed meanwhile.
#[test]
fn sharded_outputs_match_serial_references() {
    let service = ShardedService::builder()
        .shards(2)
        .workers_per_shard(2)
        .elastic_workers(1)
        .supervise_every(Duration::from_millis(2))
        .build();

    let dedup_config = workloads::dedup::DedupConfig::tiny();
    let dedup_input = dedup_config.generate_input();
    let dedup_expected = workloads::dedup::run_serial(&dedup_config, &dedup_input);
    let fib_config = workloads::pipefib::PipeFibConfig::tiny();
    let fib_expected = workloads::pipefib::run_serial(&fib_config);

    // Several rounds of both workloads so placement spreads them around.
    let mut dedup_jobs = Vec::new();
    let mut fib_jobs = Vec::new();
    for _ in 0..6 {
        let (launch, sink) = workloads::dedup::piper_launch(&dedup_config, &dedup_input);
        let handle = service
            .submit(JobSpec::from_launch(PipeOptions::with_throttle(3), launch).named("dedup"))
            .expect("submit dedup");
        dedup_jobs.push((handle, sink));
        let (launch, extract) = workloads::pipefib::piper_launch(&fib_config);
        let handle = service
            .submit(JobSpec::from_launch(PipeOptions::with_throttle(3), launch).named("pipefib"))
            .expect("submit pipefib");
        fib_jobs.push((handle, extract));
    }
    for (handle, sink) in dedup_jobs {
        assert!(handle.join().is_completed());
        assert_eq!(
            *sink.lock().unwrap(),
            dedup_expected,
            "dedup archive differs from the serial reference"
        );
    }
    for (handle, extract) in fib_jobs {
        assert!(handle.join().is_completed());
        assert_eq!(
            extract(),
            fib_expected,
            "pipe-fib bits differ from the serial reference"
        );
    }
    // join() wakes as the terminal result lands, which is a hair before
    // the completion counters are bumped; drain() is ordered after both.
    service.drain();
    let snapshot = service.sharded_metrics();
    assert_eq!(snapshot.aggregate.jobs_completed, 12);
    let active_shards = snapshot
        .shards
        .iter()
        .filter(|s| s.jobs_completed > 0)
        .count();
    assert!(active_shards >= 1, "no shard recorded completions");
}

/// Cancellation and handle bookkeeping still work through the shard layer:
/// a cancelled queued job never runs, and its shard releases the frames.
#[test]
fn cancellation_through_the_shard_layer_releases_frames() {
    let service = ShardedService::builder()
        .shards(2)
        .workers_per_shard(1)
        .total_frame_budget(4) // 2 per shard: one job per shard at K=2
        .max_queue_per_shard(8)
        .build();
    let ran = Arc::new(Mutex::new(Vec::<u64>::new()));
    let mut handles = Vec::new();
    for i in 0..6u64 {
        let sink = Arc::clone(&ran);
        let spec = JobSpec::new(PipeOptions::with_throttle(2), move |j| {
            if j >= 40 {
                return piper::Stage0::Stop;
            }
            struct Push(u64, Arc<Mutex<Vec<u64>>>);
            impl piper::PipelineIteration for Push {
                fn run_node(&mut self, _stage: u64) -> piper::NodeOutcome {
                    self.1.lock().unwrap().push(self.0);
                    piper::NodeOutcome::Done
                }
            }
            piper::Stage0::wait(Push(i, Arc::clone(&sink)))
        });
        handles.push(service.submit(spec).expect("queues are deep enough"));
    }
    // Cancel the tail half while the head half runs.
    for handle in &handles[3..] {
        handle.cancel();
    }
    for (i, handle) in handles.iter().enumerate() {
        let result = handle.join();
        if i < 3 {
            assert!(result.is_completed(), "job {i}: {result:?}");
        }
    }
    service.drain();
    // A cancelled-while-queued job's counter bump trails the finalize its
    // join() observes (and drain() is no barrier for never-admitted jobs),
    // so give the last bumps a bounded moment to land.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let snapshot = loop {
        let snapshot = service.sharded_metrics();
        if snapshot.aggregate.jobs_completed + snapshot.aggregate.jobs_cancelled == 6 {
            break snapshot;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "terminal counters never added up to 6: {:?}",
            snapshot.aggregate
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    for (i, shard) in snapshot.shards.iter().enumerate() {
        assert_eq!(shard.frames_in_use, 0, "shard {i} leaked reserved frames");
        assert_eq!(shard.running, 0, "shard {i} still shows running jobs");
    }
}
