//! Integration tests for the multi-tenant pipeline executor.
//!
//! These cover the service-level contracts: a single shared pool sustaining
//! many concurrent mixed-workload jobs with per-job output order preserved,
//! frame-budget admission, bounded-queue backpressure, weighted-fair
//! dispatch, queue deadlines, cooperative cancellation observed within one
//! iteration frame, and the drop-safety regression (a dropped `JobHandle`
//! mid-flight — including a panicking stage — must leak no frames and leave
//! the pool fully reusable).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use piper::{NodeOutcome, PipeOptions, PipelineIteration, Stage0};
use pipeserve::{JobResult, JobSpec, JobStatus, PipeService, Priority, Submit, SubmitError};

/// A simple serial-output iteration: burns a little work, then appends its
/// index to the shared sink in a final serial stage. An optional gate makes
/// the iteration block at stage 1 until released (used to pin workers /
/// job lifetimes deterministically).
struct SpsItem {
    i: u64,
    spin: u64,
    gate: Option<Arc<AtomicBool>>,
    out: Arc<Mutex<Vec<u64>>>,
}

impl PipelineIteration for SpsItem {
    fn run_node(&mut self, stage: u64) -> NodeOutcome {
        match stage {
            1 => {
                if let Some(gate) = &self.gate {
                    while !gate.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }
                let mut acc = self.i;
                for k in 0..self.spin {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                std::hint::black_box(acc);
                NodeOutcome::WaitFor(2)
            }
            2 => {
                self.out.lock().unwrap().push(self.i);
                NodeOutcome::Done
            }
            _ => unreachable!(),
        }
    }
}

/// An SPS job of `n` iterations writing to `out` (order-checkable).
fn sps_job(n: u64, spin: u64, k: usize, out: Arc<Mutex<Vec<u64>>>) -> JobSpec {
    sps_job_gated(n, spin, k, out, None)
}

/// Like [`sps_job`], but iteration 0 blocks at stage 1 until `first_gate`
/// opens (all later iterations run freely).
fn sps_job_gated(
    n: u64,
    spin: u64,
    k: usize,
    out: Arc<Mutex<Vec<u64>>>,
    first_gate: Option<Arc<AtomicBool>>,
) -> JobSpec {
    JobSpec::new(PipeOptions::with_throttle(k), move |i| {
        if i == n {
            return Stage0::Stop;
        }
        Stage0::proceed(SpsItem {
            i,
            spin,
            gate: if i == 0 { first_gate.clone() } else { None },
            out: Arc::clone(&out),
        })
    })
}

/// A one-iteration job whose single node spins until `gate` is raised —
/// used to pin frame budget / workers deterministically.
struct Gated {
    gate: Arc<AtomicBool>,
}

impl PipelineIteration for Gated {
    fn run_node(&mut self, _stage: u64) -> NodeOutcome {
        while !self.gate.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_micros(50));
        }
        NodeOutcome::Done
    }
}

fn blocker_job(k: usize, gate: Arc<AtomicBool>) -> JobSpec {
    let mut produced = false;
    JobSpec::new(PipeOptions::with_throttle(k), move |_i| {
        if produced {
            return Stage0::Stop;
        }
        produced = true;
        Stage0::wait(Gated {
            gate: Arc::clone(&gate),
        })
    })
}

/// Waits (bounded) until `cond` holds.
fn wait_for(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    false
}

#[test]
fn eight_concurrent_mixed_workload_jobs_preserve_per_job_order() {
    // 8 jobs × K = 4 exactly fills the frame budget, so peak_frames_in_use
    // reaching 32 proves all eight were admitted simultaneously. The four
    // SPS jobs gate their first iteration, pinning the workers (and
    // therefore every job's lifetime) until all eight are admitted.
    let mut service = PipeService::builder()
        .num_threads(4)
        .frame_budget(32)
        .max_queue(64)
        .build();

    // Prepare everything (including the serial reference outputs) before
    // submitting anything, so admission is one tight burst.
    let fib_config = workloads::pipefib::PipeFibConfig::tiny();
    let fib_expected = workloads::pipefib::run_serial(&fib_config);
    let (fib_launch, fib_extract) = workloads::pipefib::piper_launch(&fib_config);
    let dedup_config = workloads::dedup::DedupConfig::tiny();
    let dedup_input = dedup_config.generate_input();
    let dedup_expected = workloads::dedup::run_serial(&dedup_config, &dedup_input);
    let (dedup_launch, dedup_sink) = workloads::dedup::piper_launch(&dedup_config, &dedup_input);
    let ferret_config = workloads::ferret::FerretConfig::tiny();
    let ferret_index = workloads::ferret::build_index(&ferret_config);
    let ferret_expected = workloads::ferret::run_serial(&ferret_config, &ferret_index);
    let (ferret_launch, ferret_sink) =
        workloads::ferret::piper_launch(&ferret_config, &ferret_index);
    let x264_config = workloads::x264::X264Config::tiny();
    let x264_expected = workloads::x264::run_serial(&x264_config);
    let (x264_launch, x264_sink) = workloads::x264::piper_launch(&x264_config);

    // Four hand-written SPS jobs with distinct lengths, first iterations
    // gated...
    let gate = Arc::new(AtomicBool::new(false));
    let sinks: Vec<Arc<Mutex<Vec<u64>>>> =
        (0..4).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
    let mut handles = Vec::new();
    for (j, sink) in sinks.iter().enumerate() {
        handles.push(
            service
                .submit(sps_job_gated(
                    400 + 50 * j as u64,
                    2_000,
                    4,
                    Arc::clone(sink),
                    Some(Arc::clone(&gate)),
                ))
                .expect("submit sps"),
        );
    }

    // ...plus the four PARSEC-analogue workloads as real mixed tenants.
    let fib_handle = service
        .submit(JobSpec::from_launch(PipeOptions::with_throttle(4), fib_launch).named("pipefib"))
        .expect("submit pipefib");
    let dedup_handle = service
        .submit(JobSpec::from_launch(PipeOptions::with_throttle(4), dedup_launch).named("dedup"))
        .expect("submit dedup");
    let ferret_handle = service
        .submit(JobSpec::from_launch(PipeOptions::with_throttle(4), ferret_launch).named("ferret"))
        .expect("submit ferret");
    let x264_handle = service
        .submit(JobSpec::from_launch(PipeOptions::with_throttle(4), x264_launch).named("x264"))
        .expect("submit x264");

    // All eight must be admitted onto the shared pool at once (admission
    // does not need free workers, only frame budget).
    assert!(
        wait_for(Duration::from_secs(10), || {
            service.metrics().jobs_admitted == 8
        }),
        "not all jobs admitted: {:?}",
        service.metrics()
    );
    assert_eq!(service.metrics().frames_in_use, 32);
    gate.store(true, Ordering::Release);

    // Join everything and verify per-job outputs.
    for (j, h) in handles.iter().enumerate() {
        let result = h.join();
        let stats = result.stats().expect("sps job has stats");
        assert!(result.is_completed(), "sps job {j}: {result:?}");
        assert_eq!(stats.iterations, 400 + 50 * j as u64);
        assert!(stats.peak_active_iterations <= 4);
        // The final serial stage has cross edges: outputs in order.
        assert_eq!(
            *sinks[j].lock().unwrap(),
            (0..400 + 50 * j as u64).collect::<Vec<_>>(),
            "sps job {j} output out of order"
        );
    }
    assert!(fib_handle.join().is_completed());
    assert_eq!(fib_extract(), fib_expected, "pipe-fib result mismatch");
    assert!(dedup_handle.join().is_completed());
    assert_eq!(
        *dedup_sink.lock().unwrap(),
        dedup_expected,
        "dedup archive mismatch"
    );
    assert!(ferret_handle.join().is_completed());
    assert_eq!(
        *ferret_sink.lock().unwrap(),
        ferret_expected,
        "ferret results mismatch"
    );
    assert!(x264_handle.join().is_completed());
    assert_eq!(
        *x264_sink.lock().unwrap(),
        x264_expected,
        "x264 output mismatch"
    );

    // Counters are bumped by the finishing worker after joiners wake:
    // drain() orders this thread after every release.
    service.drain();
    let m = service.metrics();
    assert_eq!(m.jobs_submitted, 8);
    assert_eq!(m.jobs_admitted, 8);
    assert_eq!(m.jobs_completed, 8);
    assert_eq!(m.jobs_rejected, 0);
    assert_eq!(
        m.peak_frames_in_use, 32,
        "all eight jobs must have been admitted concurrently (Σ K_j = 32)"
    );
    assert_eq!(m.queue_depth, 0);
    assert_eq!(m.frames_in_use, 0);

    service.shutdown();
}

#[test]
fn bounded_queue_applies_backpressure() {
    let service = PipeService::builder()
        .num_threads(2)
        .frame_budget(2)
        .max_queue(2)
        .build();
    let gate = Arc::new(AtomicBool::new(false));
    // Occupies the whole frame budget until the gate opens.
    let blocker = service
        .submit(blocker_job(2, Arc::clone(&gate)))
        .expect("submit blocker");
    assert!(wait_for(Duration::from_secs(5), || {
        service.metrics().frames_in_use == 2
    }));

    let out = Arc::new(Mutex::new(Vec::new()));
    let q1 = service
        .submit(sps_job(10, 100, 2, Arc::clone(&out)))
        .expect("first queued job fits the queue");
    let q2 = service
        .submit(sps_job(10, 100, 2, Arc::clone(&out)))
        .expect("second queued job fits the queue");
    let rejected = service.submit(sps_job(10, 100, 2, Arc::clone(&out)));
    assert!(matches!(rejected, Err(SubmitError::QueueFull(_))));
    // The transient verdict hands the spec back intact for re-offering.
    let spec = rejected
        .err()
        .and_then(SubmitError::into_spec)
        .expect("QueueFull returns the spec");
    assert_eq!(spec.frame_window(4), 2);
    assert_eq!(q1.try_status(), JobStatus::Queued);

    let m = service.metrics();
    assert_eq!(m.jobs_rejected, 1);
    assert_eq!(m.queue_depth, 2);
    assert!(m.rejection_rate() > 0.0);

    gate.store(true, Ordering::Release);
    assert!(blocker.join().is_completed());
    assert!(q1.join().is_completed());
    assert!(q2.join().is_completed());
    service.drain();
    assert_eq!(service.metrics().jobs_completed, 3);
}

#[test]
fn oversized_frame_window_is_rejected_outright() {
    let service = PipeService::builder()
        .num_threads(2)
        .frame_budget(8)
        .build();
    let out = Arc::new(Mutex::new(Vec::new()));
    let err = service.submit(sps_job(5, 10, 64, out)).err();
    assert!(matches!(
        err,
        Some(SubmitError::FrameWindowExceedsBudget {
            window: 64,
            budget: 8
        })
    ));
    assert_eq!(service.metrics().jobs_rejected, 1);
}

#[test]
fn interactive_jobs_jump_ahead_of_batch_backlog_without_starving_it() {
    let mut service = PipeService::builder()
        .num_threads(2)
        .frame_budget(2) // one K=2 job at a time: admission order is visible
        .max_queue(64)
        .build();
    let gate = Arc::new(AtomicBool::new(false));
    let blocker = service
        .submit(blocker_job(2, Arc::clone(&gate)))
        .expect("submit blocker");
    assert!(wait_for(Duration::from_secs(5), || {
        service.metrics().frames_in_use == 2
    }));

    // Admission order is recorded by each job's Stage-0 producer.
    let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let logged_job = |name: &str, priority: Priority| {
        let log = Arc::clone(&log);
        let name = name.to_string();
        let in_producer = name.clone();
        let mut produced = 0u64;
        JobSpec::new(PipeOptions::with_throttle(2), move |_i| {
            if produced == 0 {
                log.lock().unwrap().push(in_producer.clone());
            }
            if produced == 3 {
                return Stage0::Stop;
            }
            produced += 1;
            Stage0::wait(SpsItem {
                i: produced - 1,
                spin: 100,
                gate: None,
                out: Arc::new(Mutex::new(Vec::new())),
            })
        })
        .named(name)
        .priority(priority)
    };

    // Four batch jobs queued first, one interactive job queued last.
    let mut all = Vec::new();
    for b in 0..4 {
        all.push(
            service
                .submit(logged_job(&format!("batch-{b}"), Priority::Batch))
                .unwrap(),
        );
    }
    all.push(
        service
            .submit(logged_job("interactive", Priority::Interactive))
            .unwrap(),
    );

    gate.store(true, Ordering::Release);
    assert!(blocker.join().is_completed());
    for h in &all {
        assert!(h.join().is_completed(), "{} failed", h.name());
    }

    let order = log.lock().unwrap().clone();
    let pos = |name: &str| order.iter().position(|n| n == name).unwrap();
    // The interactive job was submitted after the whole batch backlog but
    // must be dispatched ahead of most of it (weighted round-robin gives
    // its class 4 of every 7 slots) — at worst one batch job slips ahead.
    assert!(
        pos("interactive") <= 1,
        "interactive job starved: admission order {order:?}"
    );
    // And the batch backlog still ran (no starvation the other way).
    assert_eq!(order.len(), 5);
    service.shutdown();
}

#[test]
fn large_job_is_not_starved_by_a_stream_of_small_jobs() {
    // Budget 4; a sustained stream of K = 2 Interactive jobs can keep
    // frames_in_use oscillating between 2 and 4, so the K = 4 Batch job
    // never fits at its scan slot. The bounded-bypass reservation must
    // still admit it well before the stream drains.
    let mut service = PipeService::builder()
        .num_threads(2)
        .frame_budget(4)
        .max_queue(128)
        .build();

    let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let logged_sps = |name: String, n: u64, spin: u64, k: usize, priority: Priority| {
        let log = Arc::clone(&log);
        let mut logged = false;
        JobSpec::new(PipeOptions::with_throttle(k), move |i| {
            if !logged {
                log.lock().unwrap().push(name.clone());
                logged = true;
            }
            if i == n {
                return Stage0::Stop;
            }
            Stage0::proceed(SpsItem {
                i,
                spin,
                gate: None,
                out: Arc::new(Mutex::new(Vec::new())),
            })
        })
        .priority(priority)
    };

    let big = service
        .submit(logged_sps("big".into(), 20, 2_000, 4, Priority::Batch))
        .unwrap();
    let mut smalls = Vec::new();
    for j in 0..50 {
        smalls.push(
            service
                .submit(logged_sps(
                    format!("small-{j}"),
                    30,
                    2_000,
                    2,
                    Priority::Interactive,
                ))
                .unwrap(),
        );
    }

    // Liveness: the big job completes even though small jobs keep arriving
    // ahead of it in dispatch weight.
    assert!(big.join().is_completed());
    for s in &smalls {
        assert!(s.join().is_completed());
    }
    let order = log.lock().unwrap().clone();
    let big_pos = order
        .iter()
        .position(|n| n == "big")
        .expect("big job must have started");
    // First registration costs at most one RR cycle (~5 admissions), then
    // BYPASS_LIMIT (16) more admissions may pass before the reservation
    // kicks in; well under the 50-job stream with margin.
    assert!(
        big_pos <= 30,
        "large job bypassed too long: admitted at position {big_pos} of {:?}",
        order.len()
    );
    service.shutdown();
}

#[test]
fn cancel_queued_job_never_runs_and_cancel_running_job_stops_within_one_frame() {
    let service = PipeService::builder()
        .num_threads(2)
        .frame_budget(2)
        .max_queue(16)
        .build();
    let gate = Arc::new(AtomicBool::new(false));
    let blocker = service
        .submit(blocker_job(2, Arc::clone(&gate)))
        .expect("submit blocker");
    assert!(wait_for(Duration::from_secs(5), || {
        service.metrics().frames_in_use == 2
    }));

    // Cancel while queued: the job must never start.
    let out = Arc::new(Mutex::new(Vec::new()));
    let queued = service
        .submit(sps_job(10, 100, 2, Arc::clone(&out)))
        .unwrap();
    assert_eq!(queued.try_status(), JobStatus::Queued);
    queued.cancel();
    assert_eq!(queued.try_status(), JobStatus::Cancelled);
    match queued.join() {
        JobResult::Cancelled(None) => {}
        other => panic!("queued cancel must yield Cancelled(None), got {other:?}"),
    }
    assert!(out.lock().unwrap().is_empty(), "cancelled queued job ran");

    // Cancel while running: producer stops within one iteration frame.
    let produced = Arc::new(AtomicU64::new(0));
    let release = Arc::new(AtomicBool::new(false));
    let p = Arc::clone(&produced);
    let r = Arc::clone(&release);
    let running = service
        .submit(JobSpec::new(PipeOptions::with_throttle(2), move |_i| {
            p.fetch_add(1, Ordering::SeqCst);
            Stage0::wait(Gated {
                gate: Arc::clone(&r),
            })
        }))
        .unwrap();
    gate.store(true, Ordering::Release);
    assert!(blocker.join().is_completed());
    assert!(wait_for(Duration::from_secs(5), || {
        produced.load(Ordering::SeqCst) > 0
    }));
    running.cancel();
    release.store(true, Ordering::Release);
    match running.join() {
        JobResult::Cancelled(Some(stats)) => {
            // K = 2: at most the already-started frames plus one more
            // control step can slip in after the cancel request.
            assert!(
                stats.iterations <= 3,
                "cancellation observed too late: {} iterations",
                stats.iterations
            );
        }
        other => panic!("running cancel must yield Cancelled(Some(_)), got {other:?}"),
    }
    assert_eq!(running.try_status(), JobStatus::Cancelled);
    service.drain();
    let m = service.metrics();
    assert_eq!(m.jobs_cancelled, 2);
    assert_eq!(m.frames_in_use, 0, "cancelled job must release its frames");
}

#[test]
fn queue_deadline_expires_jobs_that_never_got_admitted() {
    let service = PipeService::builder()
        .num_threads(2)
        .frame_budget(2)
        .max_queue(16)
        .build();
    let gate = Arc::new(AtomicBool::new(false));
    let blocker = service
        .submit(blocker_job(2, Arc::clone(&gate)))
        .expect("submit blocker");
    assert!(wait_for(Duration::from_secs(5), || {
        service.metrics().frames_in_use == 2
    }));

    let out = Arc::new(Mutex::new(Vec::new()));
    let doomed = service
        .submit(sps_job(10, 100, 2, Arc::clone(&out)).queue_deadline(Duration::from_millis(30)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(80));
    // Opening the gate wakes the dispatcher, which purges the expired job
    // before admitting anything else.
    gate.store(true, Ordering::Release);
    assert!(blocker.join().is_completed());
    match doomed.join() {
        JobResult::Expired => {}
        other => panic!("expected Expired, got {other:?}"),
    }
    assert_eq!(doomed.try_status(), JobStatus::Expired);
    assert!(out.lock().unwrap().is_empty(), "expired job ran");
    service.drain();
    assert_eq!(service.metrics().jobs_expired, 1);
}

#[test]
fn dropped_handles_leak_no_frames_even_when_a_stage_panics() {
    let service = PipeService::builder()
        .num_threads(2)
        .frame_budget(8)
        .max_queue(16)
        .build();
    let before = service.pool_metrics();

    // A long job whose handle is dropped mid-flight.
    let gate = Arc::new(AtomicBool::new(false));
    {
        let g = Arc::clone(&gate);
        let mut produced = 0u64;
        let handle = service
            .submit(JobSpec::new(PipeOptions::with_throttle(2), move |_i| {
                if produced == 10 {
                    return Stage0::Stop;
                }
                produced += 1;
                // Only the first iteration blocks; the rest see an open gate.
                let gate = if produced == 1 {
                    Arc::clone(&g)
                } else {
                    Arc::new(AtomicBool::new(true))
                };
                Stage0::wait(Gated { gate })
            }))
            .unwrap();
        assert!(wait_for(Duration::from_secs(5), || {
            service.metrics().frames_in_use > 0
        }));
        drop(handle); // mid-flight
    }

    // A job whose every stage panics, handle dropped immediately.
    struct Boom;
    impl PipelineIteration for Boom {
        fn run_node(&mut self, _stage: u64) -> NodeOutcome {
            panic!("stage blew up");
        }
    }
    {
        let handle = service
            .submit(JobSpec::new(PipeOptions::with_throttle(2), move |i| {
                if i == 5 {
                    return Stage0::Stop;
                }
                Stage0::wait(Boom)
            }))
            .unwrap();
        drop(handle);
    }

    gate.store(true, Ordering::Release);
    service.drain();

    let after = service.pool_metrics();
    let delta = after.since(&before);
    // No frame leaked: every started iteration completed its frame and
    // every pipeline fully retired.
    assert_eq!(delta.iterations_started, delta.iterations_completed);
    assert_eq!(delta.pipes_started, 2);
    assert_eq!(delta.pipes_completed, 2);
    // Frame accounting is reuse-consistent: both jobs allocated exactly
    // their K = 2 ring slots once, and every iteration past the first K
    // recycled a slot (10 - 2) + (5 - 2) — zero per-iteration allocation.
    assert_eq!(delta.frame_allocations, 4);
    assert_eq!(delta.frame_reuses, (10 - 2) + (5 - 2));
    let m = service.metrics();
    assert_eq!(m.frames_in_use, 0);
    assert_eq!(m.jobs_completed, 1);
    assert_eq!(m.jobs_panicked, 1);

    // The pool is fully reusable afterwards.
    let out = Arc::new(Mutex::new(Vec::new()));
    let fresh = service
        .submit(sps_job(50, 100, 4, Arc::clone(&out)))
        .unwrap();
    assert!(fresh.join().is_completed());
    assert_eq!(*out.lock().unwrap(), (0..50).collect::<Vec<_>>());
}

#[test]
fn panicking_launch_closure_fails_the_job_not_the_dispatcher() {
    let service = PipeService::builder()
        .num_threads(2)
        .frame_budget(8)
        .build();
    let boom = JobSpec::from_launch(
        PipeOptions::with_throttle(2),
        Box::new(|_pool, _opts| panic!("launch closure blew up")),
    );
    let handle = service.submit(boom).unwrap();
    match handle.join() {
        JobResult::Panicked(msg) => assert!(msg.contains("launch closure blew up")),
        other => panic!("expected Panicked, got {other:?}"),
    }
    assert_eq!(handle.try_status(), JobStatus::Failed);
    // The dispatcher survived: frames were released and later jobs run.
    let out = Arc::new(Mutex::new(Vec::new()));
    let next = service
        .submit(sps_job(20, 100, 2, Arc::clone(&out)))
        .unwrap();
    assert!(next.join().is_completed());
    service.drain();
    let m = service.metrics();
    assert_eq!(m.jobs_panicked, 1);
    assert_eq!(m.jobs_completed, 1);
    assert_eq!(m.frames_in_use, 0);
}

#[test]
fn shutdown_cancels_queued_jobs_and_drains_running_ones() {
    let mut service = PipeService::builder()
        .num_threads(2)
        .frame_budget(2)
        .max_queue(16)
        .build();
    let gate = Arc::new(AtomicBool::new(false));
    let blocker = service
        .submit(blocker_job(2, Arc::clone(&gate)))
        .expect("submit blocker");
    assert!(wait_for(Duration::from_secs(5), || {
        service.metrics().frames_in_use == 2
    }));
    let out = Arc::new(Mutex::new(Vec::new()));
    let queued = service
        .submit(sps_job(10, 100, 2, Arc::clone(&out)))
        .unwrap();

    // Shutdown must not hang on the gated blocker; its single in-flight
    // iteration is released here while shutdown runs on this thread.
    let g = Arc::clone(&gate);
    let opener = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        g.store(true, Ordering::Release);
    });
    service.shutdown();
    opener.join().unwrap();

    match queued.join() {
        JobResult::Cancelled(None) => {}
        other => panic!("queued job must be cancelled by shutdown, got {other:?}"),
    }
    assert!(matches!(
        blocker.join(),
        JobResult::Completed(_) | JobResult::Cancelled(Some(_))
    ));
    assert!(out.lock().unwrap().is_empty());
    // New submissions are rejected after shutdown.
    let err = service.submit(sps_job(1, 1, 1, out)).err();
    assert!(matches!(err, Some(SubmitError::ShutDown)));
}

#[test]
fn join_timeout_elapses_on_a_blocked_job_and_returns_the_result_once_done() {
    let service = PipeService::builder().num_threads(2).build();
    let gate = Arc::new(AtomicBool::new(false));
    let handle = service
        .submit(blocker_job(1, Arc::clone(&gate)))
        .expect("submit");

    // Elapsed path: the job is gated, so a short bounded wait must time out
    // without producing a result (and leave the job running).
    assert!(handle.join_timeout(Duration::from_millis(50)).is_none());
    assert!(!matches!(
        handle.try_status(),
        JobStatus::Completed | JobStatus::Failed
    ));

    // Completed path: open the gate; a generous bounded wait now returns
    // the terminal result well before the timeout.
    gate.store(true, Ordering::Release);
    let result = handle
        .join_timeout(Duration::from_secs(10))
        .expect("job completes once the gate opens");
    assert!(result.is_completed());
    // And a bounded wait on an already-terminal job returns immediately,
    // even with a zero timeout.
    assert!(handle.join_timeout(Duration::ZERO).is_some());
}

#[test]
fn on_terminal_hook_fires_once_with_the_terminal_result() {
    let service = PipeService::builder().num_threads(2).build();
    let out = Arc::new(Mutex::new(Vec::new()));
    let fired = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicBool::new(false));
    let fired_cl = Arc::clone(&fired);
    let completed_cl = Arc::clone(&completed);
    let spec = sps_job(4, 10, 2, Arc::clone(&out)).on_terminal(move |result| {
        fired_cl.fetch_add(1, Ordering::SeqCst);
        completed_cl.store(result.is_completed(), Ordering::SeqCst);
    });
    let handle = service.submit(spec).expect("submit");
    assert!(handle.join().is_completed());
    // The hook runs on the finalizing pool thread *after* joiners are
    // woken, so join() returning does not order it; wait for it.
    assert!(
        wait_for(Duration::from_secs(10), || fired.load(Ordering::SeqCst)
            == 1),
        "terminal hook never fired"
    );
    assert_eq!(fired.load(Ordering::SeqCst), 1);
    assert!(completed.load(Ordering::SeqCst));
}

#[test]
fn on_terminal_hook_fires_for_cancelled_queued_jobs() {
    let service = PipeService::builder()
        .num_threads(2)
        .frame_budget(1)
        .build();
    let gate = Arc::new(AtomicBool::new(false));
    // Fill the frame budget so the second job stays queued.
    let blocker = service
        .submit(blocker_job(1, Arc::clone(&gate)))
        .expect("submit blocker");
    let saw_cancelled = Arc::new(AtomicBool::new(false));
    let saw = Arc::clone(&saw_cancelled);
    let out = Arc::new(Mutex::new(Vec::new()));
    let queued = service
        .submit(sps_job(1, 1, 1, out).on_terminal(move |result| {
            saw.store(matches!(result, JobResult::Cancelled(_)), Ordering::SeqCst);
        }))
        .expect("submit queued job");
    queued.cancel();
    assert!(matches!(queued.join(), JobResult::Cancelled(None)));
    // (A queued cancel finalizes synchronously inside cancel(), so the
    // hook has run by now — but don't rely on that detail.)
    assert!(wait_for(Duration::from_secs(10), || saw_cancelled
        .load(Ordering::SeqCst)));
    gate.store(true, Ordering::Release);
    assert!(blocker.join().is_completed());
}
