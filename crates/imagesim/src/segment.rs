//! Image segmentation: the first processing stage of the real ferret
//! pipeline.
//!
//! PARSEC's ferret runs each query image through *segmentation* before
//! feature extraction: the image is split into a handful of regions and a
//! feature vector is extracted per region, so that the similarity measure
//! can match pictures region by region. This module provides a
//! deterministic, dependency-free equivalent: k-means clustering on
//! intensity over a coarse grid of cells, followed by extraction of a
//! per-region summary ([`Region`]).

use crate::Image;

/// A segmented region of an image.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// Number of pixels assigned to the region.
    pub area: usize,
    /// Mean intensity of the region's pixels.
    pub mean_intensity: f32,
    /// Normalised centroid (x, y) of the region in `[0, 1]²`.
    pub centroid: (f32, f32),
    /// Fraction of the image's pixels in this region (the region's weight in
    /// the Earth-Mover's-Distance signature).
    pub weight: f32,
}

/// Result of segmenting one image.
#[derive(Debug, Clone, PartialEq)]
pub struct Segmentation {
    /// The regions, ordered by decreasing area. Never empty for a non-empty
    /// image.
    pub regions: Vec<Region>,
    /// Number of k-means iterations actually performed.
    pub iterations: usize,
}

/// Segments `image` into at most `max_regions` regions with k-means on pixel
/// intensity (deterministic: centroids are initialised from evenly spaced
/// quantiles, and ties break towards the lower cluster index).
pub fn segment(image: &Image, max_regions: usize) -> Segmentation {
    let k = max_regions.clamp(1, 16);
    let pixels = &image.pixels;
    assert!(!pixels.is_empty(), "cannot segment an empty image");

    // Initialise centroids at evenly spaced intensity quantiles.
    let mut sorted: Vec<u8> = pixels.clone();
    sorted.sort_unstable();
    let mut centroids: Vec<f32> = (0..k)
        .map(|c| sorted[(c * (sorted.len() - 1)) / k.max(1)] as f32)
        .collect();
    centroids.dedup_by(|a, b| (*a - *b).abs() < f32::EPSILON);
    let k = centroids.len();

    let mut assignment = vec![0usize; pixels.len()];
    let mut iterations = 0usize;
    const MAX_ITERATIONS: usize = 12;
    loop {
        iterations += 1;
        // Assign each pixel to the nearest centroid.
        let mut changed = false;
        for (i, &p) in pixels.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f32::MAX;
            for (c, &centre) in centroids.iter().enumerate() {
                let d = (p as f32 - centre).abs();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Recompute centroids.
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for (i, &p) in pixels.iter().enumerate() {
            sums[assignment[i]] += p as f64;
            counts[assignment[i]] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                centroids[c] = (sums[c] / counts[c] as f64) as f32;
            }
        }
        if !changed || iterations >= MAX_ITERATIONS {
            break;
        }
    }

    // Build the per-region summaries.
    let total = pixels.len() as f32;
    let mut regions: Vec<Region> = (0..k)
        .filter_map(|c| {
            let mut area = 0usize;
            let mut sum = 0.0f64;
            let mut cx = 0.0f64;
            let mut cy = 0.0f64;
            for (i, &p) in pixels.iter().enumerate() {
                if assignment[i] == c {
                    area += 1;
                    sum += p as f64;
                    cx += (i % image.width) as f64;
                    cy += (i / image.width) as f64;
                }
            }
            if area == 0 {
                return None;
            }
            Some(Region {
                area,
                mean_intensity: (sum / area as f64) as f32,
                centroid: (
                    (cx / area as f64 / image.width.max(1) as f64) as f32,
                    (cy / area as f64 / image.height.max(1) as f64) as f32,
                ),
                weight: area as f32 / total,
            })
        })
        .collect();
    regions.sort_by(|a, b| {
        b.area.cmp(&a.area).then(
            a.mean_intensity
                .partial_cmp(&b.mean_intensity)
                .unwrap_or(std::cmp::Ordering::Equal),
        )
    });

    Segmentation {
        regions,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segmentation_is_deterministic() {
        let image = Image::synthetic(11, 6, 48, 48);
        let a = segment(&image, 4);
        let b = segment(&image, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn region_weights_sum_to_one_and_areas_to_the_pixel_count() {
        let image = Image::synthetic(3, 6, 40, 56);
        let seg = segment(&image, 5);
        let total_area: usize = seg.regions.iter().map(|r| r.area).sum();
        assert_eq!(total_area, image.pixels.len());
        let total_weight: f32 = seg.regions.iter().map(|r| r.weight).sum();
        assert!(
            (total_weight - 1.0).abs() < 1e-4,
            "weights sum to {total_weight}"
        );
    }

    #[test]
    fn regions_are_ordered_by_decreasing_area() {
        let image = Image::synthetic(9, 6, 64, 64);
        let seg = segment(&image, 6);
        for pair in seg.regions.windows(2) {
            assert!(pair[0].area >= pair[1].area);
        }
    }

    #[test]
    fn centroids_and_means_are_in_range() {
        let image = Image::synthetic(21, 6, 32, 32);
        for region in segment(&image, 4).regions {
            assert!(region.mean_intensity >= 0.0 && region.mean_intensity <= 255.0);
            assert!(region.centroid.0 >= 0.0 && region.centroid.0 <= 1.0);
            assert!(region.centroid.1 >= 0.0 && region.centroid.1 <= 1.0);
            assert!(region.weight > 0.0 && region.weight <= 1.0);
        }
    }

    #[test]
    fn a_flat_image_yields_a_single_region() {
        let image = Image {
            width: 16,
            height: 16,
            pixels: vec![77u8; 256],
        };
        let seg = segment(&image, 8);
        assert_eq!(seg.regions.len(), 1);
        assert_eq!(seg.regions[0].area, 256);
        assert!((seg.regions[0].mean_intensity - 77.0).abs() < 1e-3);
    }

    #[test]
    fn a_two_tone_image_yields_two_dominant_regions() {
        let mut pixels = vec![20u8; 512];
        pixels.extend(vec![230u8; 512]);
        let image = Image {
            width: 32,
            height: 32,
            pixels,
        };
        let seg = segment(&image, 4);
        assert!(seg.regions.len() >= 2);
        // The two largest regions carry (almost) all the weight and sit near
        // the two tones.
        let top: f32 = seg.regions.iter().take(2).map(|r| r.weight).sum();
        assert!(top > 0.95, "two regions should dominate, weight {top}");
        let means: Vec<f32> = seg
            .regions
            .iter()
            .take(2)
            .map(|r| r.mean_intensity)
            .collect();
        assert!(means.iter().any(|&m| (m - 20.0).abs() < 15.0));
        assert!(means.iter().any(|&m| (m - 230.0).abs() < 15.0));
    }

    #[test]
    fn max_regions_is_respected() {
        let image = Image::synthetic(2, 6, 48, 48);
        for k in [1usize, 2, 3, 8] {
            let seg = segment(&image, k);
            assert!(!seg.regions.is_empty());
            assert!(seg.regions.len() <= k);
        }
    }
}
