//! Image-similarity substrate: the work done by the stages of the ferret
//! workload.
//!
//! PARSEC's ferret is a content-based similarity search: for each query
//! image it extracts features, probes an index of a large image database,
//! and ranks candidates to produce the top-k most similar images. Its
//! pipeline shape (Figure 1 of the paper) is serial–parallel–serial: a
//! serial input stage, a heavy parallel stage doing
//! segmentation/extraction/indexing/ranking, and a serial output stage.
//!
//! The real ferret depends on proprietary image data and the `cass` library;
//! this crate provides a synthetic but structurally equivalent substitute:
//!
//! * [`Image`] — deterministic pseudo-random grayscale images,
//! * [`features`] — block-histogram feature extraction (the "vectorization"
//!   step),
//! * [`Index`] — an in-memory database of feature vectors with approximate
//!   candidate probing and exact top-k ranking.
//!
//! The amount of work per query is configurable so the benchmark harness
//! can reproduce a heavy parallel stage (`r ≫ 1` in the paper's analysis).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod emd;
pub mod segment;

/// A synthetic grayscale image.
#[derive(Debug, Clone)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major pixel data.
    pub pixels: Vec<u8>,
}

impl Image {
    /// Generates a deterministic synthetic image for `id`. Images with the
    /// same `class` (id modulo `classes`) share low-frequency structure, so
    /// that similarity search has actual structure to find.
    pub fn synthetic(id: u64, classes: u64, width: usize, height: usize) -> Image {
        let class = id % classes.max(1);
        let mut rng = StdRng::seed_from_u64(0xFE44E7 ^ (class.wrapping_mul(0x9E3779B97F4A7C15)));
        // Class-dependent structure: a low-frequency pattern plus a
        // class-specific brightness/contrast signature (block histograms
        // capture the latter very reliably, giving the index real classes to
        // discover).
        let fx = rng.gen_range(1..6) as f64;
        let fy = rng.gen_range(1..6) as f64;
        let phase = rng.gen_range(0.0..std::f64::consts::TAU);
        let brightness = rng.gen_range(-70.0..70.0);
        let amplitude = rng.gen_range(30.0..110.0);
        // Instance-dependent noise.
        let mut noise = StdRng::seed_from_u64(0xA11CE ^ id.wrapping_mul(0x2545F4914F6CDD1D));
        let mut pixels = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                let u = x as f64 / width as f64;
                let v = y as f64 / height as f64;
                let base = ((u * fx + v * fy) * std::f64::consts::TAU + phase).sin();
                let value = 128.0 + brightness + amplitude * base + noise.gen_range(-15.0..15.0);
                pixels.push(value.clamp(0.0, 255.0) as u8);
            }
        }
        Image {
            width,
            height,
            pixels,
        }
    }
}

/// Number of blocks per image side used by feature extraction.
pub const FEATURE_GRID: usize = 4;
/// Number of histogram bins per block.
pub const FEATURE_BINS: usize = 8;
/// Total feature-vector dimensionality.
pub const FEATURE_DIM: usize = FEATURE_GRID * FEATURE_GRID * FEATURE_BINS;

/// A feature vector extracted from an image.
pub type Features = Vec<f32>;

/// Extracts block-histogram features: the image is divided into a
/// `FEATURE_GRID`×`FEATURE_GRID` grid and each block contributes a
/// normalised `FEATURE_BINS`-bin intensity histogram.
pub fn features(image: &Image) -> Features {
    let mut feats = vec![0.0f32; FEATURE_DIM];
    let bw = (image.width / FEATURE_GRID).max(1);
    let bh = (image.height / FEATURE_GRID).max(1);
    for y in 0..image.height {
        for x in 0..image.width {
            let bx = (x / bw).min(FEATURE_GRID - 1);
            let by = (y / bh).min(FEATURE_GRID - 1);
            let p = image.pixels[y * image.width + x] as usize;
            let bin = p * FEATURE_BINS / 256;
            feats[(by * FEATURE_GRID + bx) * FEATURE_BINS + bin] += 1.0;
        }
    }
    let block = (bw * bh) as f32;
    for f in &mut feats {
        *f /= block;
    }
    feats
}

/// Squared Euclidean distance between two feature vectors.
pub fn distance(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// An in-memory feature database with bucketed candidate probing.
#[derive(Debug, Clone)]
pub struct Index {
    entries: Vec<(u64, Features)>,
    /// Coarse buckets keyed by a quantised projection of the feature vector,
    /// which narrows the candidate set before exact ranking (an LSH-style
    /// shortcut, standing in for ferret's `cass` index).
    buckets: Vec<Vec<usize>>,
    num_buckets: usize,
}

impl Index {
    /// Builds an index over `database_size` synthetic images.
    pub fn build_synthetic(
        database_size: usize,
        classes: u64,
        width: usize,
        height: usize,
    ) -> Index {
        let num_buckets = 64;
        let mut entries = Vec::with_capacity(database_size);
        let mut buckets = vec![Vec::new(); num_buckets];
        for id in 0..database_size as u64 {
            let image = Image::synthetic(id, classes, width, height);
            let feats = features(&image);
            let b = Self::bucket_of(&feats, num_buckets);
            buckets[b].push(entries.len());
            entries.push((id, feats));
        }
        Index {
            entries,
            buckets,
            num_buckets,
        }
    }

    fn bucket_of(feats: &[f32], num_buckets: usize) -> usize {
        // Project onto a fixed pattern and quantise.
        let mut acc = 0.0f32;
        for (i, f) in feats.iter().enumerate() {
            let sign = if i % 3 == 0 { 1.0 } else { -0.5 };
            acc += f * sign;
        }
        ((acc.abs() * 8.0) as usize) % num_buckets
    }

    /// Number of indexed images.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finds the `k` most similar database images to the query features.
    /// `probe_factor` controls how many extra buckets are probed (more work,
    /// better recall), which is how the benchmark harness tunes the weight
    /// of ferret's parallel stage.
    pub fn query(&self, query: &[f32], k: usize, probe_factor: usize) -> Vec<(u64, f32)> {
        let home = Self::bucket_of(query, self.num_buckets);
        let mut candidates: Vec<usize> = Vec::new();
        let probes = (1 + probe_factor).min(self.num_buckets);
        for offset in 0..probes {
            let b = (home + offset) % self.num_buckets;
            candidates.extend_from_slice(&self.buckets[b]);
        }
        // Fall back to scanning everything when probing found too little.
        if candidates.len() < k {
            candidates = (0..self.entries.len()).collect();
        }
        let mut scored: Vec<(u64, f32)> = candidates
            .into_iter()
            .map(|idx| {
                let (id, feats) = &self.entries[idx];
                (*id, distance(query, feats))
            })
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_images_are_deterministic() {
        let a = Image::synthetic(5, 10, 32, 32);
        let b = Image::synthetic(5, 10, 32, 32);
        assert_eq!(a.pixels, b.pixels);
        let c = Image::synthetic(6, 10, 32, 32);
        assert_ne!(a.pixels, c.pixels);
    }

    #[test]
    fn features_have_expected_dimension_and_normalisation() {
        let image = Image::synthetic(1, 4, 64, 64);
        let f = features(&image);
        assert_eq!(f.len(), FEATURE_DIM);
        // Each block's histogram sums to ~1 after normalisation.
        for block in f.chunks(FEATURE_BINS) {
            let sum: f32 = block.iter().sum();
            assert!((sum - 1.0).abs() < 1e-3, "block sum {sum}");
        }
    }

    #[test]
    fn distance_is_zero_for_identical_vectors() {
        let image = Image::synthetic(7, 4, 32, 32);
        let f = features(&image);
        assert_eq!(distance(&f, &f), 0.0);
    }

    #[test]
    fn query_returns_self_as_best_match() {
        let index = Index::build_synthetic(200, 10, 32, 32);
        for id in [0u64, 17, 63, 150] {
            let image = Image::synthetic(id, 10, 32, 32);
            let f = features(&image);
            let top = index.query(&f, 5, 64);
            assert_eq!(top[0].0, id, "query {id} should match itself first");
            assert!(top[0].1 <= top[1].1);
        }
    }

    #[test]
    fn same_class_images_rank_higher_than_other_classes() {
        let classes = 8u64;
        let index = Index::build_synthetic(160, classes, 32, 32);
        // A fresh image of class 3 (id beyond the database range).
        let query_img = Image::synthetic(3 + 10 * classes, classes, 32, 32);
        let f = features(&query_img);
        let top = index.query(&f, 10, 64);
        let same_class = top.iter().filter(|(id, _)| id % classes == 3).count();
        assert!(
            same_class >= 6,
            "expected most of the top-10 to be class 3, got {same_class}"
        );
    }

    #[test]
    fn query_respects_k() {
        let index = Index::build_synthetic(50, 5, 16, 16);
        let f = features(&Image::synthetic(1, 5, 16, 16));
        assert_eq!(index.query(&f, 3, 2).len(), 3);
        assert_eq!(index.query(&f, 100, 2).len(), 50);
    }

    #[test]
    fn probe_factor_increases_work_but_keeps_correct_top1() {
        let index = Index::build_synthetic(300, 10, 32, 32);
        let f = features(&Image::synthetic(42, 10, 32, 32));
        let narrow = index.query(&f, 1, 64);
        let wide = index.query(&f, 1, 0);
        assert_eq!(narrow[0].0, 42);
        // With few probes the best match may differ, but it must still be a
        // valid database id.
        assert!(wide[0].0 < 300);
    }
}
