//! Earth Mover's Distance between region signatures.
//!
//! The real ferret ranks candidate images with the Earth Mover's Distance
//! (EMD) between their segmented-region signatures: each image is a set of
//! weighted regions, and the distance is the minimum cost of transporting
//! one image's region weights onto the other's. Solving the transportation
//! problem exactly requires an LP; ferret (and this module) use the standard
//! greedy approximation, which is deterministic, cheap, and admits the exact
//! closed form in one dimension (used by the tests as an oracle).

use crate::segment::Region;

/// A weighted point in feature space: the projection of a [`Region`] used by
/// the transportation problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignaturePoint {
    /// Feature value (here: mean intensity, normalised to `[0, 1]`).
    pub value: f32,
    /// Weight (the region's share of the image's pixels). Weights of one
    /// signature sum to 1.
    pub weight: f32,
}

/// An image signature: the weighted regions produced by segmentation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Signature {
    /// The signature's weighted points, in any order.
    pub points: Vec<SignaturePoint>,
}

impl Signature {
    /// Builds a signature from segmentation regions (intensity normalised to
    /// `[0, 1]`).
    pub fn from_regions(regions: &[Region]) -> Signature {
        Signature {
            points: regions
                .iter()
                .map(|r| SignaturePoint {
                    value: r.mean_intensity / 255.0,
                    weight: r.weight,
                })
                .collect(),
        }
    }

    /// Total weight of the signature (≈ 1 for a full segmentation).
    pub fn total_weight(&self) -> f32 {
        self.points.iter().map(|p| p.weight).sum()
    }
}

/// Greedy Earth Mover's Distance between two signatures: repeatedly moves as
/// much weight as possible along the cheapest remaining (source, sink) pair.
/// In one dimension (scalar `value`s) the greedy solution of the
/// transportation problem is optimal, so this equals the true EMD.
pub fn emd(a: &Signature, b: &Signature) -> f32 {
    if a.points.is_empty() || b.points.is_empty() {
        return if a.points.is_empty() && b.points.is_empty() {
            0.0
        } else {
            f32::MAX
        };
    }
    // Sort both sides by value; sweeping in order is the optimal 1-D
    // transportation plan.
    let mut supply: Vec<SignaturePoint> = a.points.clone();
    let mut demand: Vec<SignaturePoint> = b.points.clone();
    supply.sort_by(|x, y| x.value.partial_cmp(&y.value).unwrap());
    demand.sort_by(|x, y| x.value.partial_cmp(&y.value).unwrap());

    let total_flow = a.total_weight().min(b.total_weight());
    let mut cost = 0.0f64;
    let mut moved = 0.0f64;
    let (mut i, mut j) = (0usize, 0usize);
    let mut remaining_supply = supply[0].weight;
    let mut remaining_demand = demand[0].weight;
    while i < supply.len() && j < demand.len() {
        let flow = remaining_supply.min(remaining_demand);
        if flow > 0.0 {
            cost += flow as f64 * (supply[i].value - demand[j].value).abs() as f64;
            moved += flow as f64;
        }
        remaining_supply -= flow;
        remaining_demand -= flow;
        if remaining_supply <= f32::EPSILON {
            i += 1;
            if i < supply.len() {
                remaining_supply = supply[i].weight;
            }
        }
        if remaining_demand <= f32::EPSILON {
            j += 1;
            if j < demand.len() {
                remaining_demand = demand[j].weight;
            }
        }
    }
    if moved <= 0.0 || total_flow <= 0.0 {
        return 0.0;
    }
    (cost / moved) as f32
}

/// Exact 1-D EMD between two *histograms* with equal total mass: the L1
/// distance between their cumulative distributions (used as a test oracle
/// and for histogram-feature ranking).
pub fn emd_histogram(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "histograms must have the same length");
    let mut cumulative = 0.0f64;
    let mut total = 0.0f64;
    for (x, y) in a.iter().zip(b.iter()) {
        cumulative += (*x - *y) as f64;
        total += cumulative.abs();
    }
    total as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::segment;
    use crate::Image;

    fn sig(points: &[(f32, f32)]) -> Signature {
        Signature {
            points: points
                .iter()
                .map(|&(value, weight)| SignaturePoint { value, weight })
                .collect(),
        }
    }

    #[test]
    fn identical_signatures_have_zero_distance() {
        let s = sig(&[(0.2, 0.5), (0.8, 0.5)]);
        assert!(emd(&s, &s).abs() < 1e-6);
    }

    #[test]
    fn emd_is_symmetric() {
        let a = sig(&[(0.1, 0.3), (0.5, 0.7)]);
        let b = sig(&[(0.4, 0.6), (0.9, 0.4)]);
        assert!((emd(&a, &b) - emd(&b, &a)).abs() < 1e-6);
    }

    #[test]
    fn single_point_signatures_reduce_to_absolute_difference() {
        let a = sig(&[(0.25, 1.0)]);
        let b = sig(&[(0.75, 1.0)]);
        assert!((emd(&a, &b) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn moving_mass_further_costs_more() {
        let base = sig(&[(0.5, 1.0)]);
        let near = sig(&[(0.6, 1.0)]);
        let far = sig(&[(0.9, 1.0)]);
        assert!(emd(&base, &near) < emd(&base, &far));
    }

    #[test]
    fn split_mass_matches_the_hand_computed_plan() {
        // Supply: 0.5 at 0.0 and 0.5 at 1.0; demand: all at 0.5.
        // Optimal plan moves each half a distance of 0.5: EMD = 0.5.
        let a = sig(&[(0.0, 0.5), (1.0, 0.5)]);
        let b = sig(&[(0.5, 1.0)]);
        assert!((emd(&a, &b) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn histogram_emd_matches_cumulative_formula() {
        let a = [0.5f32, 0.5, 0.0, 0.0];
        let b = [0.0f32, 0.0, 0.5, 0.5];
        // Cumulative differences: 0.5, 1.0, 0.5, 0.0 → EMD = 2.0.
        assert!((emd_histogram(&a, &b) - 2.0).abs() < 1e-6);
        assert!(emd_histogram(&a, &a).abs() < 1e-6);
    }

    #[test]
    fn empty_signatures_are_handled() {
        let empty = Signature::default();
        let s = sig(&[(0.3, 1.0)]);
        assert_eq!(emd(&empty, &empty), 0.0);
        assert_eq!(emd(&empty, &s), f32::MAX);
    }

    #[test]
    fn segmented_images_of_the_same_class_are_closer_than_other_classes() {
        let classes = 6u64;
        let base = Image::synthetic(2, classes, 32, 32);
        let same_class = Image::synthetic(2 + classes, classes, 32, 32);
        let other_class = Image::synthetic(3, classes, 32, 32);

        let to_sig = |img: &Image| Signature::from_regions(&segment(img, 4).regions);
        let base_sig = to_sig(&base);
        let near = emd(&base_sig, &to_sig(&same_class));
        let far = emd(&base_sig, &to_sig(&other_class));
        assert!(
            near <= far,
            "same-class EMD {near} should not exceed cross-class EMD {far}"
        );
    }
}
