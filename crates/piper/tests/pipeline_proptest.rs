//! Property-based tests of the PIPER scheduler itself: for *arbitrary*
//! on-the-fly pipeline structures (random stage counts, stage skipping and
//! serial/parallel decisions per node), the runtime must
//!
//! * call `run_node` with exactly the stages the iteration asked for,
//! * never start a node before its cross-edge predecessor (with the paper's
//!   null-node collapsing rule) has completed,
//! * execute every node exactly once, and
//! * keep the number of simultaneously live iterations within the throttling
//!   limit `K` (Theorem 11).
//!
//! The dependency check is done from inside the running nodes against shared
//! atomic "last completed stage" cells, so any violation shows up as a panic
//! that `pipe_while` propagates back to the test.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use piper::{NodeOutcome, PipeOptions, PipelineIteration, Stage0, ThreadPool};
use proptest::prelude::*;

/// One generated node: the gap to the previous stage number and whether it
/// is entered with `pipe_wait`.
#[derive(Debug, Clone)]
struct NodePlan {
    stage: u64,
    wait: bool,
}

/// The full generated pipeline: per iteration, the list of nodes after
/// Stage 0.
#[derive(Debug, Clone)]
struct PipelinePlan {
    iterations: Vec<Vec<NodePlan>>,
}

fn plan_strategy() -> impl Strategy<Value = PipelinePlan> {
    let node = (1u64..4, any::<bool>());
    let iteration = proptest::collection::vec(node, 1..6);
    proptest::collection::vec(iteration, 1..14).prop_map(|raw| {
        let iterations = raw
            .into_iter()
            .map(|nodes| {
                let mut stage = 0u64;
                nodes
                    .into_iter()
                    .map(|(gap, wait)| {
                        stage += gap;
                        NodePlan { stage, wait }
                    })
                    .collect()
            })
            .collect();
        PipelinePlan { iterations }
    })
}

/// Shared verification state: for every iteration, the highest stage whose
/// node has *completed* (−1 = nothing yet, 0 = Stage 0 done).
struct Tracker {
    completed: Vec<AtomicI64>,
    nodes_executed: AtomicU64,
}

impl Tracker {
    fn new(iterations: usize) -> Self {
        Tracker {
            completed: (0..iterations).map(|_| AtomicI64::new(-1)).collect(),
            nodes_executed: AtomicU64::new(0),
        }
    }
}

struct PlannedIteration {
    index: usize,
    nodes: Vec<NodePlan>,
    position: usize,
    plan: Arc<PipelinePlan>,
    tracker: Arc<Tracker>,
}

impl PipelineIteration for PlannedIteration {
    fn run_node(&mut self, stage: u64) -> NodeOutcome {
        let expected = &self.nodes[self.position];
        assert_eq!(
            stage, expected.stage,
            "iteration {} was resumed at stage {stage}, expected {}",
            self.index, expected.stage
        );

        // Cross-edge check: if this node was entered with pipe_wait, the
        // source node in the previous iteration (stage `stage`, collapsed
        // onto the last real node before it if skipped) must have completed.
        if expected.wait && self.index > 0 {
            let prev = &self.plan.iterations[self.index - 1];
            // Stages of the previous iteration include the implicit Stage 0.
            let required: i64 = std::iter::once(0u64)
                .chain(prev.iter().map(|n| n.stage))
                .filter(|&s| s <= stage)
                .max()
                .map(|s| s as i64)
                .unwrap_or(0);
            let seen = self.tracker.completed[self.index - 1].load(Ordering::SeqCst);
            assert!(
                seen >= required,
                "iteration {} stage {stage} started before ({}, {required}) completed (last completed: {seen})",
                self.index,
                self.index - 1
            );
        }

        self.tracker.nodes_executed.fetch_add(1, Ordering::SeqCst);
        // Mark this node completed *after* doing its (empty) work.
        self.tracker.completed[self.index].store(expected.stage as i64, Ordering::SeqCst);

        self.position += 1;
        match self.nodes.get(self.position) {
            None => NodeOutcome::Done,
            Some(next) if next.wait => NodeOutcome::WaitFor(next.stage),
            Some(next) => NodeOutcome::ContinueTo(next.stage),
        }
    }
}

fn run_plan(plan: &PipelinePlan, workers: usize, options: PipeOptions) -> piper::PipeStats {
    let plan = Arc::new(plan.clone());
    let tracker = Arc::new(Tracker::new(plan.iterations.len()));
    let pool = ThreadPool::new(workers);
    let total_nodes: u64 = plan.iterations.iter().map(|it| it.len() as u64).sum();

    let producer_plan = Arc::clone(&plan);
    let producer_tracker = Arc::clone(&tracker);
    let stats = pool.pipe_while(options, move |i| {
        let index = i as usize;
        if index >= producer_plan.iterations.len() {
            return Stage0::Stop;
        }
        // Stage 0 runs here, in the serial producer contour.
        producer_tracker.completed[index].store(0, Ordering::SeqCst);
        let nodes = producer_plan.iterations[index].clone();
        let first = &nodes[0];
        Stage0::into_stage(
            PlannedIteration {
                index,
                position: 0,
                nodes: nodes.clone(),
                plan: Arc::clone(&producer_plan),
                tracker: Arc::clone(&producer_tracker),
            },
            first.stage,
            first.wait,
        )
    });

    assert_eq!(stats.iterations, plan.iterations.len() as u64);
    assert_eq!(
        tracker.nodes_executed.load(Ordering::SeqCst),
        total_nodes,
        "every planned node must execute exactly once"
    );
    // Every iteration finished at its last planned stage.
    for (i, nodes) in plan.iterations.iter().enumerate() {
        assert_eq!(
            tracker.completed[i].load(Ordering::SeqCst),
            nodes.last().unwrap().stage as i64,
            "iteration {i} did not run to completion"
        );
    }
    stats
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_pipelines_respect_cross_edges_and_throttling(
        plan in plan_strategy(),
        workers in 1usize..4,
        throttle in 1usize..6,
    ) {
        let stats = run_plan(&plan, workers, PipeOptions::with_throttle(throttle));
        prop_assert!(stats.peak_active_iterations <= throttle as u64);
    }

    #[test]
    fn optimizations_do_not_change_observable_behaviour(plan in plan_strategy(), workers in 1usize..4) {
        for options in [
            PipeOptions::default(),
            PipeOptions::default().lazy_enabling(false),
            PipeOptions::default().dependency_folding(false),
            PipeOptions::default().lazy_enabling(false).dependency_folding(false),
        ] {
            let stats = run_plan(&plan, workers, options);
            let planned_nodes: u64 = plan.iterations.iter().map(|it| it.len() as u64).sum();
            prop_assert_eq!(stats.nodes, planned_nodes);
        }
    }
}

#[test]
fn single_iteration_single_node_pipeline_works() {
    let plan = PipelinePlan {
        iterations: vec![vec![NodePlan {
            stage: 1,
            wait: true,
        }]],
    };
    let stats = run_plan(&plan, 2, PipeOptions::default());
    assert_eq!(stats.iterations, 1);
    assert_eq!(stats.nodes, 1);
}

#[test]
fn deep_stage_skipping_pipeline_works() {
    // Iterations enter at ever-higher stages (the x264 pattern) with cross
    // edges that always collapse onto earlier real nodes.
    let iterations = (0..10usize)
        .map(|i| {
            vec![
                NodePlan {
                    stage: 1 + 3 * i as u64,
                    wait: true,
                },
                NodePlan {
                    stage: 2 + 3 * i as u64,
                    wait: true,
                },
            ]
        })
        .collect();
    let plan = PipelinePlan { iterations };
    let stats = run_plan(&plan, 3, PipeOptions::with_throttle(4));
    assert_eq!(stats.nodes, 20);
    assert!(stats.peak_active_iterations <= 4);
}
