//! Stress tests for the recycled iteration-frame ring.
//!
//! The ring (see `crates/piper/DESIGN.md`) replaces per-iteration
//! `Arc<Mutex<…>>` frames with `K` recycled slots, so its specific hazards
//! are slot reuse: a cross-edge check attributing a recycled slot's fresh
//! stage counter to the old occupant, a check-right resuming the wrong
//! occupant, or the throttling gate recycling a slot before its previous
//! occupant fully retired. These tests drive random on-the-fly structures
//! (stage skipping, `pipe_wait` patterns, panics) across small and large
//! throttle windows `K ∈ {1, 2, 3, 4·P}` and assert
//!
//! * outputs of a final serial stage appear in iteration order,
//! * `peak_active ≤ K` (Theorem 11),
//! * the frame-allocation metric stays bounded by `K` while every
//!   iteration beyond the first `K` recycles a slot — i.e. zero
//!   per-iteration frame allocation in steady state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use piper::{NodeOutcome, PipeOptions, PipelineIteration, Stage0, ThreadPool};
use proptest::prelude::*;

/// The common final stage number, larger than any generated stage so that
/// every iteration's output node carries a cross edge onto the *same* stage
/// of its left neighbour, forcing in-order output.
const OUTPUT_STAGE: u64 = 1_000;

/// One generated node: its stage number and whether it is entered with
/// `pipe_wait`.
#[derive(Debug, Clone)]
struct NodePlan {
    stage: u64,
    wait: bool,
}

#[derive(Debug, Clone)]
struct RingPlan {
    iterations: Vec<Vec<NodePlan>>,
    /// Iterations whose second-to-last node panics instead of continuing.
    panics: Vec<bool>,
}

fn plan_strategy(max_iterations: usize) -> impl Strategy<Value = RingPlan> {
    let node = (1u64..5, any::<bool>());
    let iteration = proptest::collection::vec(node, 1..5);
    (
        proptest::collection::vec(iteration, 1..max_iterations),
        proptest::collection::vec(any::<bool>(), 1..max_iterations),
    )
        .prop_map(|(raw, panic_bits)| {
            let iterations: Vec<Vec<NodePlan>> = raw
                .into_iter()
                .map(|nodes| {
                    let mut stage = 0u64;
                    let mut plan: Vec<NodePlan> = nodes
                        .into_iter()
                        .map(|(gap, wait)| {
                            stage += gap;
                            NodePlan { stage, wait }
                        })
                        .collect();
                    // Every iteration ends with the common serial output
                    // stage, so outputs must appear in iteration order.
                    plan.push(NodePlan {
                        stage: OUTPUT_STAGE,
                        wait: true,
                    });
                    plan
                })
                .collect();
            let panics = (0..iterations.len())
                .map(|i| *panic_bits.get(i % panic_bits.len()).unwrap_or(&false))
                .collect();
            RingPlan { iterations, panics }
        })
}

struct RingIteration {
    index: u64,
    nodes: Vec<NodePlan>,
    position: usize,
    panics: bool,
    output: Arc<Mutex<Vec<u64>>>,
    nodes_run: Arc<AtomicU64>,
}

impl PipelineIteration for RingIteration {
    fn run_node(&mut self, stage: u64) -> NodeOutcome {
        let expected = &self.nodes[self.position];
        assert_eq!(
            stage, expected.stage,
            "iteration {} resumed at stage {stage}, expected {}",
            self.index, expected.stage
        );
        self.nodes_run.fetch_add(1, Ordering::Relaxed);
        if self.panics && self.position + 2 == self.nodes.len() {
            panic!("planned panic in iteration {}", self.index);
        }
        if stage == OUTPUT_STAGE {
            self.output.lock().unwrap().push(self.index);
        }
        self.position += 1;
        match self.nodes.get(self.position) {
            None => NodeOutcome::Done,
            Some(next) if next.wait => NodeOutcome::WaitFor(next.stage),
            Some(next) => NodeOutcome::ContinueTo(next.stage),
        }
    }
}

/// Runs `plan`; returns (output log, stats) when no iteration panicked, or
/// the output log alone when the expected panic propagated.
fn run_ring_plan(
    plan: &RingPlan,
    workers: usize,
    options: PipeOptions,
) -> (Vec<u64>, Option<piper::PipeStats>) {
    let pool = ThreadPool::new(workers);
    let output = Arc::new(Mutex::new(Vec::new()));
    let nodes_run = Arc::new(AtomicU64::new(0));
    let expects_panic = plan.panics.iter().any(|p| *p);

    let plan_arc = Arc::new(plan.clone());
    let out = Arc::clone(&output);
    let counter = Arc::clone(&nodes_run);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.pipe_while(options, move |i| {
            let index = i as usize;
            if index >= plan_arc.iterations.len() {
                return Stage0::Stop;
            }
            let nodes = plan_arc.iterations[index].clone();
            let first = &nodes[0];
            let (first_stage, first_wait) = (first.stage, first.wait);
            Stage0::into_stage(
                RingIteration {
                    index: i,
                    nodes,
                    position: 0,
                    panics: plan_arc.panics[index],
                    output: Arc::clone(&out),
                    nodes_run: Arc::clone(&counter),
                },
                first_stage,
                first_wait,
            )
        })
    }));

    let log = output.lock().unwrap().clone();
    match result {
        Ok(stats) => {
            assert!(!expects_panic, "a planned panic did not propagate");
            assert_eq!(stats.iterations, plan.iterations.len() as u64);
            (log, Some(stats))
        }
        Err(_) => {
            assert!(expects_panic, "unplanned panic escaped the pipeline");
            // The pool must stay usable after a drained panic.
            assert_eq!(pool.install(|| 41 + 1), 42);
            (log, None)
        }
    }
}

/// The K values the ring must survive: degenerate (1), tiny, odd, and the
/// paper's default 4·P.
fn throttle_windows(workers: usize) -> [usize; 4] {
    [1, 2, 3, 4 * workers]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ring_reuse_preserves_order_and_space_bound(
        plan in plan_strategy(12),
        workers in 1usize..4,
    ) {
        let mut no_panics = plan.clone();
        no_panics.panics.iter_mut().for_each(|p| *p = false);
        let n = no_panics.iterations.len() as u64;
        for k in throttle_windows(workers) {
            let (log, stats) = run_ring_plan(&no_panics, workers, PipeOptions::with_throttle(k));
            let stats = stats.expect("panic-free plan must return stats");
            // Outputs of the common serial final stage are in order.
            prop_assert_eq!(&log, &(0..n).collect::<Vec<_>>());
            // Theorem 11: live iterations bounded by the throttle window.
            prop_assert!(stats.peak_active_iterations <= k as u64);
            // Frame recycling: allocations bounded by K, all later
            // iterations reuse.
            prop_assert!(stats.frame_allocations <= k as u64);
            prop_assert_eq!(stats.frame_reuses, n.saturating_sub(k as u64));
        }
    }

    #[test]
    fn ring_survives_panicking_iterations(
        plan in plan_strategy(10),
        workers in 1usize..4,
    ) {
        for k in throttle_windows(workers) {
            let (log, _) = run_ring_plan(&plan, workers, PipeOptions::with_throttle(k));
            // Exactly the non-panicking iterations emit output (a panic
            // kills its iteration before the output stage), each once.
            let mut expected: Vec<u64> = plan
                .panics
                .iter()
                .enumerate()
                .filter(|(_, p)| !**p)
                .map(|(i, _)| i as u64)
                .collect();
            let mut sorted = log.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&sorted, &expected);
            // Up to the first panicking iteration the serial output chain
            // is unbroken, so those iterations must appear in order
            // *relative to each other* (iterations after the panic may
            // interleave anywhere: the panic completes its iteration early,
            // releasing its successor's output edge immediately).
            let first_panic = plan.panics.iter().position(|p| *p).unwrap_or(plan.panics.len());
            expected.truncate(first_panic);
            let pre_panic: Vec<u64> = log
                .iter()
                .copied()
                .filter(|&i| i < first_panic as u64)
                .collect();
            prop_assert_eq!(&pre_panic, &expected);
        }
    }

    #[test]
    fn ring_matches_under_all_optimization_switches(
        plan in plan_strategy(10),
        workers in 1usize..4,
    ) {
        let mut no_panics = plan.clone();
        no_panics.panics.iter_mut().for_each(|p| *p = false);
        let n = no_panics.iterations.len() as u64;
        for options in [
            PipeOptions::with_throttle(2),
            PipeOptions::with_throttle(2).lazy_enabling(false),
            PipeOptions::with_throttle(2).dependency_folding(false),
            PipeOptions::with_throttle(2).lazy_enabling(false).dependency_folding(false),
        ] {
            let (log, stats) = run_ring_plan(&no_panics, workers, options);
            prop_assert_eq!(&log, &(0..n).collect::<Vec<_>>());
            prop_assert!(stats.expect("no panic").peak_active_iterations <= 2);
        }
    }
}

/// The acceptance criterion for the recycled ring: a long pipeline performs
/// no per-iteration frame allocation — after warm-up the allocation counter
/// stays ≤ K while every further iteration recycles.
#[test]
fn hundred_thousand_iterations_allocate_at_most_k_frames() {
    const N: u64 = 100_000;
    const K: usize = 8;
    struct TwoStage {
        i: u64,
        last: Arc<AtomicU64>,
    }
    impl PipelineIteration for TwoStage {
        fn run_node(&mut self, stage: u64) -> NodeOutcome {
            match stage {
                1 => NodeOutcome::WaitFor(2),
                2 => {
                    self.last.store(self.i, Ordering::Relaxed);
                    NodeOutcome::Done
                }
                _ => unreachable!(),
            }
        }
    }
    let pool = ThreadPool::new(2);
    let last = Arc::new(AtomicU64::new(u64::MAX));
    let sink = Arc::clone(&last);
    let stats = pool.pipe_while(PipeOptions::with_throttle(K), move |i| {
        if i == N {
            return Stage0::Stop;
        }
        Stage0::wait(TwoStage {
            i,
            last: Arc::clone(&sink),
        })
    });
    assert_eq!(stats.iterations, N);
    assert_eq!(
        last.load(Ordering::Relaxed),
        N - 1,
        "final serial stage ran in order"
    );
    assert!(
        stats.frame_allocations <= K as u64,
        "steady state must not allocate frames: {} allocations for {N} iterations",
        stats.frame_allocations
    );
    assert_eq!(stats.frame_reuses, N - K as u64);
    assert!(stats.peak_active_iterations <= K as u64);
}

/// `K = 1` degenerates to serial execution: the throttling edge orders
/// every iteration entirely after its predecessor, including slot reuse.
#[test]
fn throttle_of_one_is_fully_serial() {
    let pool = ThreadPool::new(3);
    let log = Arc::new(Mutex::new(Vec::new()));
    struct Logger {
        i: u64,
        log: Arc<Mutex<Vec<u64>>>,
    }
    impl PipelineIteration for Logger {
        fn run_node(&mut self, stage: u64) -> NodeOutcome {
            self.log.lock().unwrap().push(self.i * 10 + stage);
            if stage < 3 {
                NodeOutcome::ContinueTo(stage + 1)
            } else {
                NodeOutcome::Done
            }
        }
    }
    let sink = Arc::clone(&log);
    let stats = pool.pipe_while(PipeOptions::with_throttle(1), move |i| {
        if i == 50 {
            return Stage0::Stop;
        }
        Stage0::proceed(Logger {
            i,
            log: Arc::clone(&sink),
        })
    });
    assert_eq!(stats.peak_active_iterations, 1);
    let expected: Vec<u64> = (0..50u64)
        .flat_map(|i| (1..=3u64).map(move |s| i * 10 + s))
        .collect();
    assert_eq!(*log.lock().unwrap(), expected);
}
