//! Property tests for *concurrent* `pipe_while` interleaving on one pool.
//!
//! PR 3's `pipeserve` executor multiplexes many detached pipelines over a
//! single `ThreadPool`; the hazards specific to that regime are cross-
//! pipeline interference: a worker interleaving nodes of several rings must
//! never mix up their cross edges, throttling gates, or control tokens
//! (each of which is per-pipeline state). These tests run 2–8 jobs
//! concurrently with throttle windows `K ∈ {1, 2, 3, 4·P}` and assert, per
//! job,
//!
//! * the final serial stage's outputs appear in iteration order (per-job
//!   output order is preserved under interleaving),
//! * `peak_active ≤ K_j` (each pipeline's throttle holds independently),
//!   hence the pool-wide live-frame total is bounded by `Σ K_j`,
//! * frame accounting stays reuse-consistent (allocations `= K_j`, reuses
//!   `= max(0, n_j − K_j)`): zero per-iteration allocation even with many
//!   tenants.

use std::sync::{Arc, Mutex};

use piper::{NodeOutcome, PipeOptions, PipelineIteration, Stage0, ThreadPool};
use proptest::prelude::*;

/// One job of a concurrent fleet.
#[derive(Debug, Clone)]
struct JobPlan {
    /// Index into the throttle-window menu {1, 2, 3, 4P}.
    k_choice: usize,
    /// Number of iterations.
    iterations: u64,
    /// Per-node busy-work rounds.
    spin: u64,
    /// Whether the middle stage is entered with `pipe_wait`.
    serial_middle: bool,
}

fn fleet_strategy() -> impl Strategy<Value = Vec<JobPlan>> {
    let job = (0usize..4, 10u64..60, 0u64..300, any::<bool>()).prop_map(
        |(k_choice, iterations, spin, serial_middle)| JobPlan {
            k_choice,
            iterations,
            spin,
            serial_middle,
        },
    );
    proptest::collection::vec(job, 2..9)
}

struct FleetItem {
    i: u64,
    spin: u64,
    out: Arc<Mutex<Vec<u64>>>,
}

impl PipelineIteration for FleetItem {
    fn run_node(&mut self, stage: u64) -> NodeOutcome {
        match stage {
            1 => {
                let mut acc = self.i;
                for k in 0..self.spin {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                std::hint::black_box(acc);
                NodeOutcome::WaitFor(2)
            }
            2 => {
                self.out.lock().unwrap().push(self.i);
                NodeOutcome::Done
            }
            _ => unreachable!(),
        }
    }
}

fn run_fleet(pool: &ThreadPool, fleet: &[JobPlan]) {
    let p = pool.num_threads();
    let k_menu = [1usize, 2, 3, 4 * p];
    let before = pool.metrics();

    let mut handles = Vec::new();
    let mut sinks = Vec::new();
    for plan in fleet {
        let out = Arc::new(Mutex::new(Vec::new()));
        sinks.push(Arc::clone(&out));
        let n = plan.iterations;
        let spin = plan.spin;
        let serial_middle = plan.serial_middle;
        let k = k_menu[plan.k_choice];
        let sink = Arc::clone(&out);
        let producer = move |i| {
            if i == n {
                return Stage0::Stop;
            }
            Stage0::Proceed {
                state: FleetItem {
                    i,
                    spin,
                    out: Arc::clone(&sink),
                },
                first_stage: 1,
                wait: serial_middle,
            }
        };
        handles.push(pool.spawn_pipe(PipeOptions::with_throttle(k), producer));
    }

    let mut total_expected_reuses = 0u64;
    let mut total_k = 0u64;
    for ((plan, handle), sink) in fleet.iter().zip(handles).zip(&sinks) {
        let k = k_menu[plan.k_choice] as u64;
        let stats = handle.join().expect("no job panics in this fleet");
        assert_eq!(stats.iterations, plan.iterations);
        assert!(
            stats.peak_active_iterations <= k,
            "job K={k}: peak {} exceeds its throttle window",
            stats.peak_active_iterations
        );
        // Per-job output order: the final stage is serial (cross edges), so
        // outputs must be exactly 0..n in order.
        assert_eq!(
            *sink.lock().unwrap(),
            (0..plan.iterations).collect::<Vec<_>>(),
            "per-job output order violated (K={k})"
        );
        assert_eq!(stats.frame_allocations, k);
        assert_eq!(stats.frame_reuses, plan.iterations.saturating_sub(k));
        total_expected_reuses += plan.iterations.saturating_sub(k);
        total_k += k;
    }

    // Pool-wide accounting: the fleet allocated exactly Σ K_j ring slots
    // and recycled everything else; nothing leaked across pipelines.
    let delta = pool.metrics().since(&before);
    assert_eq!(delta.iterations_started, delta.iterations_completed);
    assert_eq!(delta.frame_allocations, total_k);
    assert_eq!(delta.frame_reuses, total_expected_reuses);
    assert_eq!(delta.pipes_started, fleet.len() as u64);
    assert_eq!(delta.pipes_completed, fleet.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_fleets_preserve_per_job_order_and_throttles(fleet in fleet_strategy()) {
        let pool = ThreadPool::new(4);
        run_fleet(&pool, &fleet);
    }

    #[test]
    fn concurrent_fleets_on_a_small_pool(fleet in fleet_strategy()) {
        // P = 2 maximizes contention between control frames and nodes.
        let pool = ThreadPool::new(2);
        run_fleet(&pool, &fleet);
    }
}
