//! Detached pipeline execution: [`spawn_pipe`] and [`PipeHandle`].
//!
//! [`pipe_while`](super::pipe_while) blocks the calling thread until the
//! pipeline drains, which is the right shape for reproducing the paper's
//! figures but not for a long-lived service that multiplexes many pipelines
//! over one pool (the `pipeserve` crate). This module provides the
//! non-blocking launch: the control frame is injected into the pool and a
//! [`PipeHandle`] is returned immediately. The handle supports
//!
//! * [`join`](PipeHandle::join) — block until the pipeline completes and
//!   return its [`PipeStats`] (or the first panic payload);
//! * [`try_join`](PipeHandle::try_join) / [`is_finished`](PipeHandle::is_finished)
//!   — non-blocking status probes;
//! * [`cancel`](PipeHandle::cancel) — cooperative cancellation: the control
//!   frame observes the request at its next step (at most one iteration
//!   frame later), stops producing, and the in-flight iterations drain
//!   through the normal completion path so no frame is leaked;
//! * [`on_complete`](PipeHandle::on_complete) — a completion callback, used
//!   by `pipeserve` for frame-budget accounting and job-table updates.
//!
//! Any number of detached pipelines may be in flight on one pool; each is
//! bounded by its own throttle window `K` (its recycled-frame ring), and the
//! work-stealing substrate interleaves their nodes.

use std::sync::Arc;

use crate::latch::{Latch, LockLatch};
use crate::metrics::{Metrics, PipeStats};
use crate::pool::{Registry, Task, ThreadPool, WorkerThread};

use super::{PipeOptions, PipelineIteration, Stage0};

/// A handle on a detached pipeline launched with [`spawn_pipe`].
///
/// Dropping the handle does **not** cancel the pipeline: it keeps running to
/// completion on the pool (its iteration frames are owned by the ring, not
/// by the handle, so nothing leaks). The pool must outlive the pipeline's
/// execution; dropping the [`ThreadPool`] drains all outstanding detached
/// pipelines before its workers exit.
///
/// The handle is cheaply cloneable; clones observe the same pipeline
/// (cancellation is shared, and the first panic payload goes to whichever
/// clone joins first).
pub struct PipeHandle {
    core: Arc<super::control::ControlCore>,
    registry: Arc<Registry>,
    done: Arc<LockLatch>,
}

impl Clone for PipeHandle {
    fn clone(&self) -> Self {
        PipeHandle {
            core: Arc::clone(&self.core),
            registry: Arc::clone(&self.registry),
            done: Arc::clone(&self.done),
        }
    }
}

impl PipeHandle {
    /// True once every iteration has completed and the producer has stopped
    /// (normally, by panic, or after cancellation).
    pub fn is_finished(&self) -> bool {
        self.core.completion_latch().probe()
    }

    /// Requests cooperative cancellation. The control frame stops spawning
    /// iterations at its next step — i.e. within one iteration frame — and
    /// in-flight iterations drain cleanly. Idempotent.
    pub fn cancel(&self) {
        if self.core.cancel() {
            Metrics::bump(&self.registry.metrics.pipes_cancelled);
        }
        // Make sure a sleeping pool observes the request promptly.
        self.registry.wake_workers();
    }

    /// True if cancellation has been requested (the pipeline may still be
    /// draining; combine with [`is_finished`](Self::is_finished)).
    pub fn is_cancelled(&self) -> bool {
        self.core.is_cancelled()
    }

    /// A live snapshot of the pipeline's statistics. Counters are monotone;
    /// after [`is_finished`](Self::is_finished) returns true the snapshot is
    /// final.
    pub fn stats(&self) -> PipeStats {
        self.core.stats()
    }

    /// Returns the final statistics if the pipeline has completed, without
    /// blocking.
    pub fn try_join(&self) -> Option<PipeStats> {
        if self.is_finished() {
            Some(self.core.stats())
        } else {
            None
        }
    }

    /// Registers a callback to run when the pipeline completes. If it has
    /// already completed, the callback runs immediately on this thread.
    pub fn on_complete(&self, hook: impl FnOnce() + Send + 'static) {
        self.core.add_completion_hook(Box::new(hook));
    }

    /// Blocks until the pipeline completes. A worker of the same pool helps
    /// execute pool work while it waits (so joining from inside a stage of
    /// another pipeline cannot deadlock); an external thread blocks on a
    /// condvar.
    pub fn wait(&self) {
        if let Some(worker) = WorkerThread::current() {
            if Arc::ptr_eq(worker.registry(), &self.registry) {
                worker.wait_until(self.core.completion_latch());
                return;
            }
        }
        self.done.wait();
    }

    /// Blocks until the pipeline completes and returns its statistics, or
    /// the payload of the first panic raised by the producer or a node.
    ///
    /// A cancelled pipeline completes *normally* with the statistics of the
    /// iterations that ran; use [`is_cancelled`](Self::is_cancelled) to
    /// distinguish.
    pub fn join(self) -> std::thread::Result<PipeStats> {
        self.wait();
        match self.core.take_panic() {
            Some(payload) => Err(payload),
            None => Ok(self.core.stats()),
        }
    }
}

impl std::fmt::Debug for PipeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipeHandle")
            .field("finished", &self.is_finished())
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

/// Launches an on-the-fly pipeline on `pool` without blocking: the control
/// frame is injected into the pool's scheduler and a [`PipeHandle`] is
/// returned immediately. See [`pipe_while`](super::pipe_while) for the
/// programming model; `producer` and the iteration type behave identically.
pub fn spawn_pipe<F, I>(pool: &ThreadPool, options: PipeOptions, producer: F) -> PipeHandle
where
    F: FnMut(u64) -> Stage0<I> + Send + 'static,
    I: PipelineIteration,
{
    let (shared, core) = super::prepare_pipeline(pool, &options, producer);
    let registry = Arc::clone(pool.registry());
    let done = Arc::new(LockLatch::new());
    {
        // Finalizer, not an ordinary hook: the done latch must release
        // external waiters only after every completion hook (metrics,
        // service bookkeeping, user callbacks) has run.
        let done = Arc::clone(&done);
        core.set_completion_finalizer(Box::new(move || done.set()));
    }
    registry.inject(Task::Control(shared));
    PipeHandle {
        core,
        registry,
        done,
    }
}

impl ThreadPool {
    /// Method form of [`spawn_pipe`].
    pub fn spawn_pipe<F, I>(&self, options: PipeOptions, producer: F) -> PipeHandle
    where
        F: FnMut(u64) -> Stage0<I> + Send + 'static,
        I: PipelineIteration,
    {
        spawn_pipe(self, options, producer)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{NodeOutcome, PipelineIteration, Stage0};
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    struct Push {
        i: u64,
        out: Arc<Mutex<Vec<u64>>>,
    }

    impl PipelineIteration for Push {
        fn run_node(&mut self, _stage: u64) -> NodeOutcome {
            self.out.lock().unwrap().push(self.i);
            NodeOutcome::Done
        }
    }

    fn counting_producer(
        n: u64,
        out: Arc<Mutex<Vec<u64>>>,
    ) -> impl FnMut(u64) -> Stage0<Push> + Send + 'static {
        move |i| {
            if i == n {
                return Stage0::Stop;
            }
            Stage0::wait(Push {
                i,
                out: Arc::clone(&out),
            })
        }
    }

    #[test]
    fn spawn_and_join_returns_stats() {
        let pool = ThreadPool::new(2);
        let out = Arc::new(Mutex::new(Vec::new()));
        let handle = pool.spawn_pipe(PipeOptions::default(), counting_producer(50, out.clone()));
        let stats = handle.join().unwrap();
        assert_eq!(stats.iterations, 50);
        assert_eq!(*out.lock().unwrap(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn many_detached_pipelines_share_one_pool() {
        let pool = ThreadPool::new(3);
        let mut handles = Vec::new();
        let mut outs = Vec::new();
        for j in 0..6u64 {
            let out = Arc::new(Mutex::new(Vec::new()));
            outs.push(Arc::clone(&out));
            handles.push(pool.spawn_pipe(
                PipeOptions::with_throttle(1 + j as usize % 3),
                counting_producer(40 + j, out),
            ));
        }
        for (j, h) in handles.into_iter().enumerate() {
            let stats = h.join().unwrap();
            assert_eq!(stats.iterations, 40 + j as u64);
            assert_eq!(
                *outs[j].lock().unwrap(),
                (0..40 + j as u64).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn try_join_and_is_finished_track_completion() {
        let pool = ThreadPool::new(2);
        let out = Arc::new(Mutex::new(Vec::new()));
        let handle = pool.spawn_pipe(PipeOptions::default(), counting_producer(20, out));
        handle.wait();
        assert!(handle.is_finished());
        let stats = handle.try_join().expect("finished pipeline must report");
        assert_eq!(stats.iterations, 20);
    }

    #[test]
    fn cancel_stops_producing_within_one_frame() {
        let pool = ThreadPool::new(2);
        let produced = Arc::new(AtomicU64::new(0));
        let gate = Arc::new(AtomicU64::new(0));

        struct Spin {
            gate: Arc<AtomicU64>,
        }
        impl PipelineIteration for Spin {
            fn run_node(&mut self, _stage: u64) -> NodeOutcome {
                // Park until the test releases us, so the pipeline is
                // guaranteed to be mid-flight when cancel() arrives.
                while self.gate.load(Ordering::Acquire) == 0 {
                    std::thread::sleep(Duration::from_micros(50));
                }
                NodeOutcome::Done
            }
        }

        let p = Arc::clone(&produced);
        let g = Arc::clone(&gate);
        let handle = pool.spawn_pipe(PipeOptions::with_throttle(2), move |_i| {
            p.fetch_add(1, Ordering::SeqCst);
            Stage0::wait(Spin {
                gate: Arc::clone(&g),
            })
        });
        // Wait until at least one iteration has started.
        while produced.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_micros(50));
        }
        handle.cancel();
        assert!(handle.is_cancelled());
        gate.store(1, Ordering::Release);
        let stats = handle.join().unwrap();
        // The producer ran at most once more after the cancel was issued
        // (the control frame observes the flag at its next step); with
        // K = 2 the hard bound here is the throttle window itself.
        assert!(
            stats.iterations <= 3,
            "cancel took too long: {} iterations ran",
            stats.iterations
        );
        // Pool remains fully usable.
        let out = Arc::new(Mutex::new(Vec::new()));
        let h = pool.spawn_pipe(PipeOptions::default(), counting_producer(10, out.clone()));
        assert_eq!(h.join().unwrap().iterations, 10);
    }

    #[test]
    fn panic_payload_is_returned_not_resumed() {
        let pool = ThreadPool::new(2);
        struct Boom;
        impl PipelineIteration for Boom {
            fn run_node(&mut self, _stage: u64) -> NodeOutcome {
                panic!("detached boom");
            }
        }
        let handle = pool.spawn_pipe(PipeOptions::default(), move |i| {
            if i == 3 {
                return Stage0::Stop;
            }
            Stage0::wait(Boom)
        });
        let err = handle.join().expect_err("panic must surface through join");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "detached boom");
        assert_eq!(pool.install(|| 7), 7);
    }

    #[test]
    fn on_complete_fires_exactly_once() {
        let pool = ThreadPool::new(2);
        let fired = Arc::new(AtomicU64::new(0));
        let out = Arc::new(Mutex::new(Vec::new()));
        let handle = pool.spawn_pipe(PipeOptions::default(), counting_producer(30, out));
        let f = Arc::clone(&fired);
        handle.on_complete(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        handle.wait();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        // Registering after completion runs immediately.
        let f2 = Arc::clone(&fired);
        handle.on_complete(move || {
            f2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn join_from_inside_a_stage_helps_instead_of_deadlocking() {
        // A pipeline stage that joins another detached pipeline on the same
        // pool: the worker must help with pool work while waiting.
        let pool = Arc::new(ThreadPool::new(2));
        let total = Arc::new(AtomicU64::new(0));
        struct Nested {
            pool: Arc<ThreadPool>,
            total: Arc<AtomicU64>,
        }
        impl PipelineIteration for Nested {
            fn run_node(&mut self, _stage: u64) -> NodeOutcome {
                let out = Arc::new(Mutex::new(Vec::new()));
                let inner = self
                    .pool
                    .spawn_pipe(PipeOptions::with_throttle(2), counting_producer(8, out));
                let stats = inner.join().unwrap();
                self.total.fetch_add(stats.iterations, Ordering::SeqCst);
                NodeOutcome::Done
            }
        }
        let p = Arc::clone(&pool);
        let t = Arc::clone(&total);
        let handle = pool.spawn_pipe(PipeOptions::default(), move |i| {
            if i == 5 {
                return Stage0::Stop;
            }
            Stage0::proceed(Nested {
                pool: Arc::clone(&p),
                total: Arc::clone(&t),
            })
        });
        handle.join().unwrap();
        assert_eq!(total.load(Ordering::SeqCst), 5 * 8);
    }
}
