//! The recycled iteration-frame ring and the PIPER execution of pipeline
//! nodes.
//!
//! Each `pipe_while` owns an [`IterRing`]: a fixed array of `K` frame
//! *slots*, where `K` is the throttling limit. Iteration `i` lives in slot
//! `i % K` for its whole lifetime, so the left neighbour (iteration `i-1`)
//! and the right neighbour (iteration `i+1`) are found by index arithmetic
//! instead of locked `prev`/`next` pointers, and frame shells are reused
//! across `K`-strided iterations: after warm-up the runtime performs **no
//! per-iteration heap allocation**. This representation is justified by the
//! paper's Theorem 11 — throttling bounds the number of live iterations by
//! `K` — and by the throttling edge of Section 9, which orders the start of
//! iteration `i` after the end of iteration `i-K` (exactly the condition
//! under which slot `i % K` is reusable).
//!
//! ## Slot lifecycle: the `seq` word
//!
//! Recycling is arbitrated by a per-slot sequence word in the style of
//! Vyukov's bounded queue. For the occupant iteration `i`, define the
//! *round* `r = i / K`; then
//!
//! * `seq == 2r`     — the slot is **free** for iteration `i` (its previous
//!   occupant, iteration `i - K` of round `r - 1`, has retired; the initial
//!   value `0` makes every slot free for round 0);
//! * `seq == 2r + 1` — the slot is **live**: iteration `i`'s user state is
//!   present and `progress`/`status` describe it;
//! * completion stores `2r + 2 = 2(r + 1)`, which *is* the free value for
//!   the next occupant `i + K`.
//!
//! `seq` is monotone, so a reader that knows which iteration it expects can
//! classify a slot with one load: a value below the expected live word means
//! "not started", equal means "live", above means "completed". This removes
//! the ABA hazard of slot reuse without per-iteration allocation.
//!
//! ## The cross-edge protocol
//!
//! The stage counter (`progress`) of a live slot holds the smallest stage
//! that has not yet completed in the occupant iteration; a completed
//! iteration stores `u64::MAX` before retiring the slot. The cross edge
//! into node `(i, j)` is satisfied exactly when `progress(i-1) > j` — or
//! when slot `(i-1) % K` has moved past iteration `i-1` entirely.
//!
//! Suspension and resumption race benignly, as in the paper: the consumer
//! publishes its SUSPENDED status *before* re-reading the producer's
//! counter, and the producer advances its counter *before* reading the
//! consumer's status, so at least one side observes the other; an
//! epoch-tagged CAS on the status word then decides which side owns the
//! frame and schedules it. Both sides of this store→load (Dekker) pattern
//! need sequential consistency, which is provided by two explicit
//! `fence(SeqCst)` calls (the same discipline as the Chase–Lev deque in
//! `wsdeque`); every other access is `Acquire`/`Release`/`Relaxed` — the
//! per-node hot path takes no lock and performs no `SeqCst` read-modify-
//! write.
//!
//! ## Memory-ordering map
//!
//! | access | ordering | why |
//! |---|---|---|
//! | `seq` store to live/retired | `Release` | publishes the slot init (resp. the final `progress = MAX`) to `Acquire` readers of `seq` |
//! | `seq` load (gate, cross check, check-right) | `Acquire` | pairs with the stores above; the throttle gate additionally needs the retiring iteration's writes to happen-before slot reuse |
//! | `seq` validation re-load in [`IterRing::cross_satisfied`] | `Relaxed` | ordered after the `Acquire` load of `progress`; see below |
//! | `progress` store (install, advance, complete) | `Release` | a reader that observes the value also observes everything the owner did before it — in particular, the install store pairs with the validation read so a recycled value can never be attributed to the old iteration |
//! | `progress` load (own slot) | `Relaxed` | single-owner: scheduling handoffs (deque push/steal, status CAS) already order them |
//! | `progress` load (neighbour slot) | `Acquire` | pairs with the neighbour's `Release` stores; also orders the `Relaxed` `seq` validation load after it |
//! | `status` store SUSPENDED | `Release` | the resuming side must see the suspension stage; followed by `fence(SeqCst)` (Dekker, consumer side) |
//! | `status` CAS SUSPENDED→RUNNING | `AcqRel` | the winner acquires the suspending worker's writes and owns scheduling of the frame |
//! | `status` load in check-right | `Acquire` | preceded by `fence(SeqCst)` after the `progress` advance (Dekker, producer side) |
//! | `pending_wait`, `cached_prev_progress` | `Relaxed` | owner-local; ownership transfer is ordered by the handoff edges above |
//!
//! The validation read deserves one more sentence: `cross_satisfied` loads
//! `seq` (`Acquire`), then `progress` (`Acquire`), then `seq` again. If the
//! second `seq` load still returns the neighbour's live word, the
//! `progress` value belongs to the neighbour (it may be stale, but progress
//! is monotone within an epoch, so a stale value can only under-report —
//! which at worst suspends and is then corrected by check-right). If the
//! slot was recycled in between, the `progress` value read was the *new*
//! occupant's install store; acquiring it happens-after the old occupant's
//! retirement, so the validation load is guaranteed to see `seq` past the
//! old live word and the check correctly reports the neighbour completed.

use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};

use crate::metrics::Metrics;
use crate::pool::{ControlTask, NodeTask, Task, WorkerThread};

use super::control::{ControlCore, CONTROL_RUNNABLE, CONTROL_THROTTLED};
use super::{NodeOutcome, PipelineIteration};

/// Status phase: the iteration is runnable or currently executing.
const PHASE_RUNNING: u64 = 0;
/// Status phase: the iteration is suspended on an unsatisfied cross edge.
const PHASE_SUSPENDED: u64 = 1;
/// Status phase: the iteration has completed (slot about to be retired).
const PHASE_DONE: u64 = 2;

/// The status word tags the phase with the occupant iteration index, so a
/// CAS can never act on a recycled slot's new occupant by mistake.
#[inline]
fn status_word(iteration: u64, phase: u64) -> u64 {
    (iteration << 2) | phase
}

/// Per-`node_step` accumulator for the hot-path counters. Even a Relaxed
/// `fetch_add` is a full read-modify-write on x86, and the per-node loop
/// would otherwise pay four of them per node; batching them into plain
/// locals and flushing once per scheduling quantum keeps the counters exact
/// at every observable point (a flush always happens-before the frame is
/// handed off or the iteration completes) while taking the RMWs off the
/// per-node path.
#[derive(Default)]
struct NodeTally {
    nodes: u64,
    cross_checks: u64,
    folded_checks: u64,
    /// Sampled per-stage node timings (1-in-N executions; the sampling
    /// countdown lives on the worker so short quanta do not oversample).
    /// Plain locals like the counters above, flushed per quantum.
    stage_samples: [u64; crate::metrics::STAGE_TIMING_SLOTS],
    stage_total_ns: [u64; crate::metrics::STAGE_TIMING_SLOTS],
    stage_max_ns: [u64; crate::metrics::STAGE_TIMING_SLOTS],
}

impl NodeTally {
    /// Folds one sampled node execution into the stage tallies and the
    /// pool-wide stage histogram. Off the common path by construction: the
    /// worker's countdown admits 1-in-N nodes.
    #[inline]
    fn stage_sample(&mut self, stage: u64, ns: u64, worker: &WorkerThread) {
        let slot = (stage as usize).min(crate::metrics::STAGE_TIMING_SLOTS - 1);
        self.stage_samples[slot] += 1;
        self.stage_total_ns[slot] += ns;
        self.stage_max_ns[slot] = self.stage_max_ns[slot].max(ns);
        worker.metrics().stage_timing[slot].record(ns);
    }

    /// Publishes and zeroes the accumulated counts. Called before any point
    /// where frame ownership can escape this worker (a suspension publish,
    /// an iteration completion), so the global counters are exact whenever
    /// the pipeline can be observed as complete.
    #[inline]
    fn flush(&mut self, core: &ControlCore, worker: &WorkerThread) {
        if self.nodes > 0 {
            core.nodes.fetch_add(self.nodes, Ordering::Relaxed);
            worker
                .metrics()
                .nodes_executed
                .fetch_add(self.nodes, Ordering::Relaxed);
            self.nodes = 0;
        }
        if self.cross_checks > 0 {
            core.cross_checks
                .fetch_add(self.cross_checks, Ordering::Relaxed);
            worker
                .metrics()
                .cross_checks
                .fetch_add(self.cross_checks, Ordering::Relaxed);
            self.cross_checks = 0;
        }
        if self.folded_checks > 0 {
            core.folded_checks
                .fetch_add(self.folded_checks, Ordering::Relaxed);
            worker
                .metrics()
                .folded_checks
                .fetch_add(self.folded_checks, Ordering::Relaxed);
            self.folded_checks = 0;
        }
        for slot in 0..crate::metrics::STAGE_TIMING_SLOTS {
            if self.stage_samples[slot] > 0 {
                core.stage_samples[slot].fetch_add(self.stage_samples[slot], Ordering::Relaxed);
                core.stage_total_ns[slot].fetch_add(self.stage_total_ns[slot], Ordering::Relaxed);
                core.stage_max_ns[slot].fetch_max(self.stage_max_ns[slot], Ordering::Relaxed);
                self.stage_samples[slot] = 0;
                self.stage_total_ns[slot] = 0;
                self.stage_max_ns[slot] = 0;
            }
        }
    }
}

/// One recycled frame shell. Padded to its own cache-line pair so that the
/// per-node traffic of adjacent iterations (which are adjacent slots) does
/// not false-share.
#[repr(align(128))]
struct Slot<I> {
    /// Lifecycle word; see the module docs ("Slot lifecycle").
    seq: AtomicU64,
    /// Stage counter of the occupant: smallest stage not yet completed;
    /// `u64::MAX` once the occupant is done.
    progress: AtomicU64,
    /// Cross-edge protocol status: `(iteration << 2) | phase`.
    status: AtomicU64,
    /// Whether the occupant's next node has an incoming cross edge
    /// (`pipe_wait`). Owner-local.
    pending_wait: AtomicBool,
    /// Dependency folding: cached copy of the left neighbour's stage
    /// counter. Owner-local.
    cached_prev_progress: AtomicU64,
    /// The occupant's user state. Accessed only by the slot's unique
    /// logical owner: the control frame while the slot is free (install),
    /// the executing worker while it is live, the `Drop` impl afterwards.
    state: UnsafeCell<Option<I>>,
}

/// The fixed-capacity ring of `K` recycled iteration frames owned by one
/// `pipe_while`.
pub(crate) struct IterRing<I>
where
    I: PipelineIteration,
{
    slots: Box<[Slot<I>]>,
    /// Shared `pipe_while` state (join counter, options, statistics).
    core: Arc<ControlCore>,
    /// The control frame, needed when an iteration's completion re-enables
    /// it through the throttling edge. Weak to avoid a reference cycle
    /// (control → ring → control); set once right after construction.
    control: OnceLock<Weak<dyn ControlTask>>,
}

// SAFETY: the only non-`Sync` field is the `UnsafeCell` state in each slot,
// and the ring's protocol guarantees a unique logical owner for it at every
// moment: the control token installs it while the slot is free (`seq` even,
// and the single control token is the only writer that claims free slots),
// exactly one scheduled task executes it while live (enforced by the
// epoch-tagged status CAS), and ownership handoffs are ordered by
// release/acquire edges (deque push/steal, `seq`, status CAS).
unsafe impl<I: PipelineIteration> Sync for IterRing<I> {}
unsafe impl<I: PipelineIteration> Send for IterRing<I> {}

impl<I> IterRing<I>
where
    I: PipelineIteration,
{
    /// Allocates the ring with `core.throttle_limit` slots. This is the only
    /// frame allocation the pipeline ever performs (counted in the
    /// `frame_allocations` metric, bounded by `K`).
    pub(crate) fn new(core: Arc<ControlCore>) -> Arc<Self> {
        let k = core.throttle_limit;
        assert!(k >= 1, "throttle limit must be at least 1");
        assert!(
            k <= u32::MAX as usize,
            "throttle limit exceeds slot index range"
        );
        let slots: Box<[Slot<I>]> = (0..k)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                progress: AtomicU64::new(0),
                status: AtomicU64::new(0),
                pending_wait: AtomicBool::new(false),
                cached_prev_progress: AtomicU64::new(0),
                state: UnsafeCell::new(None),
            })
            .collect();
        core.frame_allocations
            .fetch_add(k as u64, Ordering::Relaxed);
        Arc::new(IterRing {
            slots,
            core,
            control: OnceLock::new(),
        })
    }

    /// Wires the weak back-reference to the control frame (called once,
    /// immediately after the control frame is allocated).
    pub(crate) fn set_control(&self, control: Weak<dyn ControlTask>) {
        let _ = self.control.set(control);
    }

    /// The ring capacity `K`.
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn slot_of(&self, iteration: u64) -> &Slot<I> {
        &self.slots[(iteration % self.slots.len() as u64) as usize]
    }

    /// `seq` value at which the slot is free for `iteration` to move in.
    #[inline]
    fn seq_free(&self, iteration: u64) -> u64 {
        2 * (iteration / self.slots.len() as u64)
    }

    /// `seq` value while `iteration` occupies the slot.
    #[inline]
    fn seq_live(&self, iteration: u64) -> u64 {
        self.seq_free(iteration) + 1
    }

    /// True if the throttling edge into `iteration` is satisfied, i.e. its
    /// slot's previous occupant (iteration − K) has retired. `Acquire` pairs
    /// with the retiring `Release` store so that everything the previous
    /// occupant did happens-before the slot's reuse.
    pub(crate) fn slot_is_free(&self, iteration: u64) -> bool {
        self.slot_of(iteration).seq.load(Ordering::Acquire) == self.seq_free(iteration)
    }

    /// Moves `iteration` into its slot. May only be called by the control
    /// token, and only after [`slot_is_free`](Self::slot_is_free) returned
    /// true for it (the single control token is what makes the claim safe).
    pub(crate) fn install(&self, iteration: u64, state: I, first_stage: u64, wait: bool) {
        let slot = self.slot_of(iteration);
        debug_assert_eq!(
            slot.seq.load(Ordering::Relaxed),
            self.seq_free(iteration),
            "install on a slot that is not free (iteration {iteration})"
        );
        // SAFETY: the slot is free and we hold the unique control token, so
        // no other thread reads or writes the state cell (module docs).
        unsafe {
            *slot.state.get() = Some(state);
        }
        // Release: pairs with the Acquire `progress` load of the validation
        // protocol in `cross_satisfied` — a reader that observes this value
        // is guaranteed to also observe the slot's `seq` past the previous
        // occupant's live word.
        slot.progress.store(first_stage, Ordering::Release);
        slot.pending_wait.store(wait, Ordering::Relaxed);
        slot.status
            .store(status_word(iteration, PHASE_RUNNING), Ordering::Relaxed);
        slot.cached_prev_progress.store(0, Ordering::Relaxed);
        // Release-publish the live word: an Acquire reader of `seq` that
        // sees it also sees the initialized progress/status/state.
        slot.seq.store(self.seq_live(iteration), Ordering::Release);
    }

    /// Tests whether the cross edge into stage `stage` of `iteration` is
    /// satisfied, i.e. whether the left neighbour has completed its node
    /// for that stage. `use_cache` selects whether dependency folding may
    /// answer from the cached counter.
    fn cross_satisfied(
        &self,
        iteration: u64,
        stage: u64,
        use_cache: bool,
        tally: &mut NodeTally,
    ) -> bool {
        if iteration == 0 {
            return true;
        }
        let own = self.slot_of(iteration);
        if use_cache && self.core.dependency_folding {
            let cached = own.cached_prev_progress.load(Ordering::Relaxed);
            if cached > stage {
                tally.folded_checks += 1;
                return true;
            }
        }
        tally.cross_checks += 1;

        let left = iteration - 1;
        let lslot = self.slot_of(left);
        let live = self.seq_live(left);
        let observed = lslot.seq.load(Ordering::Acquire);
        if observed != live {
            // The left neighbour already retired its slot (seq is monotone
            // and the neighbour started before this iteration existed, so
            // the only other possibility is "past"). A completed neighbour
            // satisfies every cross edge; cache MAX so that with dependency
            // folding every later check of this iteration folds.
            debug_assert!(
                observed > live,
                "left neighbour {left} observed before it started"
            );
            own.cached_prev_progress.store(u64::MAX, Ordering::Relaxed);
            return true;
        }
        let current = lslot.progress.load(Ordering::Acquire);
        // Validation read (Relaxed: ordered after the Acquire load above;
        // see the module docs for why a recycled value cannot slip through).
        if lslot.seq.load(Ordering::Relaxed) != live {
            own.cached_prev_progress.store(u64::MAX, Ordering::Relaxed);
            return true;
        }
        own.cached_prev_progress.store(current, Ordering::Relaxed);
        current > stage
    }

    /// The *check-right* operation: if the right neighbour is suspended on
    /// a stage `iteration` has now passed, resume it by pushing it onto the
    /// worker's deque.
    ///
    /// The caller must have issued a `fence(SeqCst)` after its last
    /// `progress` store (the producer side of the Dekker pattern).
    fn check_right(self: &Arc<Self>, iteration: u64, worker: &WorkerThread) {
        let right = iteration + 1;
        let rslot = self.slot_of(right);
        if rslot.seq.load(Ordering::Acquire) != self.seq_live(right) {
            // The right neighbour has not started yet (its first cross
            // check will read our fresh progress) or has already completed.
            return;
        }
        let suspended = status_word(right, PHASE_SUSPENDED);
        if rslot.status.load(Ordering::Acquire) != suspended {
            return;
        }
        let wanted = rslot.progress.load(Ordering::Acquire);
        let ours = self.slot_of(iteration).progress.load(Ordering::Relaxed);
        if ours > wanted
            && rslot
                .status
                .compare_exchange(
                    suspended,
                    status_word(right, PHASE_RUNNING),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok()
        {
            // We won the race to resume the neighbour (the epoch tag in the
            // status word guarantees it is still iteration `right`, not a
            // later occupant of the slot); it becomes stealable work on our
            // deque (the PIPER "enabled vertex" push).
            worker.recorder().push(obs::EventKind::Resume, wanted);
            worker.push(Task::Node {
                ring: Arc::clone(self) as Arc<dyn NodeTask>,
                slot: (right % self.slots.len() as u64) as u32,
                epoch: right,
            });
        }
    }

    /// Completes `iteration`: drops its state, wakes the right neighbour,
    /// retires the slot for reuse by iteration + K, updates the join
    /// counter, and — if this completion enables the control frame through
    /// the throttling edge — performs PIPER's tail-swap. Returns the
    /// worker's next assigned task, if any.
    fn complete(self: &Arc<Self>, iteration: u64, worker: &WorkerThread) -> Option<Task> {
        let k = self.slots.len() as u64;
        let slot = self.slot_of(iteration);
        // Drop the user state immediately so that live state is bounded by
        // the throttling limit (the Theorem 11 space bound).
        // SAFETY: we are the slot's unique owner until the `seq` store
        // below retires it.
        unsafe {
            *slot.state.get() = None;
        }
        slot.status
            .store(status_word(iteration, PHASE_DONE), Ordering::Release);
        slot.progress.store(u64::MAX, Ordering::Release);
        // Dekker, producer side: the MAX store must be ordered before the
        // status read inside check_right; the same fence also orders the
        // retirement protocol against the control frame's parking protocol.
        fence(Ordering::SeqCst);

        Metrics::bump(&self.core.iterations);
        Metrics::bump(&worker.metrics().iterations_completed);

        // A completed iteration always checks right (lazy enabling defers
        // intermediate checks, not this one). This must happen before the
        // slot is retired: check_right reads our own progress (= MAX) from
        // the slot.
        self.check_right(iteration, worker);

        // Retire the slot: this is the throttling edge out of `iteration`,
        // enabling iteration + K. Release pairs with the control token's
        // Acquire gate load, so everything this iteration did (including
        // the state drop) happens-before the slot's reuse.
        slot.seq
            .store(self.seq_free(iteration + k), Ordering::Release);
        // Leave the join counter: one fewer active iteration. (SeqCst: this
        // decrement and the producer-done flag form their own store→load
        // pattern inside `maybe_complete`.) The decrement sits *before* the
        // Dekker fence below because under adaptive throttling it is itself
        // a gate input (`active < effective_window`): a parked control
        // token re-reads it after its own fence, so the retirer must fence
        // between this store and the status read or the wake can be lost.
        let previous_active = self.core.active.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(previous_active >= 1);
        // Dekker, retirer side: the seq store and the `active` decrement
        // above must be ordered before the control-status read below; pairs
        // with the control token's fence between its THROTTLED store and
        // its gate re-check.
        fence(Ordering::SeqCst);

        let mut assigned = None;
        // Wake the control frame only if it is parked on *our* throttling
        // edge (it awaits slot `next % K`, which is ours iff `next` is our
        // K-successor). Under adaptive throttling the gate is additionally
        // `active < effective_window`, which any completion can open, so
        // there the retirer re-evaluates the *full* gate with loads
        // sequenced after its SeqCst fence above: of N concurrent
        // retirements, the one whose fence is last in the SC order
        // observes every seq store and `active` decrement (each is
        // sequenced before its thread's fence), so if the gate is truly
        // open at least that retirement sees it and wakes — no lost wake,
        // and no spurious wake inflating `throttle_suspensions` with
        // re-parks. The Acquire load of the status pairs with the control
        // token's Release store when parking, which makes its
        // `next_iteration` value visible.
        let gate_open_for = |next: u64| {
            if self.core.adaptive {
                self.slot_is_free(next)
                    && self.core.active.load(Ordering::SeqCst)
                        < self.core.effective_window.load(Ordering::Relaxed)
            } else {
                next == iteration + k
            }
        };
        if self.core.control_status.load(Ordering::Acquire) == CONTROL_THROTTLED
            && gate_open_for(self.core.next_iteration.load(Ordering::Relaxed))
            && self
                .core
                .control_status
                .compare_exchange(
                    CONTROL_THROTTLED,
                    CONTROL_RUNNABLE,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok()
        {
            // This completion enabled the control frame (the throttling
            // edge of the computation dag). Per PIPER, the enabled vertex
            // becomes the assigned vertex unless the deque is non-empty, in
            // which case it is exchanged with the deque's tail (the
            // tail-swap), keeping consecutive iterations on this worker and
            // exposing the control frame for stealing.
            if let Some(control) = self.control.get().and_then(Weak::upgrade) {
                match worker.swap_tail(Task::Control(control)) {
                    Ok(previous_tail) => {
                        Metrics::bump(&self.core.tail_swaps);
                        Metrics::bump(&worker.metrics().tail_swaps);
                        assigned = Some(previous_tail);
                    }
                    Err(control_task) => assigned = Some(control_task),
                }
            }
        }

        // If the loop has stopped producing and this was the last active
        // iteration, the whole pipe_while is complete.
        self.core.maybe_complete();
        assigned
    }
}

impl<I> NodeTask for IterRing<I>
where
    I: PipelineIteration,
{
    fn node_step(
        self: Arc<Self>,
        slot_index: usize,
        iteration: u64,
        worker: &WorkerThread,
    ) -> Option<Task> {
        debug_assert_eq!(
            slot_index as u64,
            iteration % self.slots.len() as u64,
            "task slot/epoch mismatch for iteration {iteration}"
        );
        let slot = &self.slots[slot_index];
        debug_assert_eq!(
            slot.seq.load(Ordering::Relaxed),
            self.seq_live(iteration),
            "node_step on a slot not owned by iteration {iteration}"
        );
        // Spawn→first-node latency: one relaxed load per scheduling quantum
        // (not per node) until the first quantum records it.
        if self.core.first_node_ns.load(Ordering::Relaxed) == 0 {
            self.core.note_first_node();
        }
        /// How the per-node loop below left the frame.
        enum Exit {
            /// The frame was handed off (suspended, or claimed by the
            /// resuming neighbour): nothing more to do here.
            Released,
            /// The iteration's last node returned [`NodeOutcome::Done`].
            Completed,
        }

        let mut tally = NodeTally::default();
        // One unwind guard around the whole scheduling quantum instead of
        // one per node: `__rust_try` setup is small but real, and the
        // per-node loop is the runtime's hottest path. A panic anywhere in
        // the quantum terminates the iteration exactly as a per-node guard
        // would (stage bookkeeping is already published through the slot
        // atomics before each `run_node` call).
        let exit = panic::catch_unwind(AssertUnwindSafe(|| {
            loop {
                // Owner-local reads: ownership handoffs already order them.
                let stage = slot.progress.load(Ordering::Relaxed);
                let needs_wait = slot.pending_wait.load(Ordering::Relaxed);

                if needs_wait && !self.cross_satisfied(iteration, stage, true, &mut tally) {
                    // Flush before publishing the suspension: the moment the
                    // SUSPENDED store lands, the resuming neighbour may run
                    // this frame to completion on another worker, and the
                    // counters must already be exact if a stats reader
                    // observes that completion.
                    tally.flush(&self.core, worker);
                    // Publish the suspension, then re-check without the cache
                    // to close the race with a concurrently advancing
                    // neighbour (Dekker, consumer side: the fence orders the
                    // status store before the progress re-read).
                    slot.status
                        .store(status_word(iteration, PHASE_SUSPENDED), Ordering::Release);
                    fence(Ordering::SeqCst);
                    if self.cross_satisfied(iteration, stage, false, &mut tally) {
                        if slot
                            .status
                            .compare_exchange(
                                status_word(iteration, PHASE_SUSPENDED),
                                status_word(iteration, PHASE_RUNNING),
                                Ordering::AcqRel,
                                Ordering::Relaxed,
                            )
                            .is_err()
                        {
                            // The left neighbour won the race and has already
                            // re-scheduled this frame; drop our claim to it.
                            tally.flush(&self.core, worker);
                            return Exit::Released;
                        }
                        // We re-claimed the frame; fall through and execute.
                    } else {
                        Metrics::bump(&self.core.cross_suspensions);
                        Metrics::bump(&worker.metrics().cross_suspensions);
                        worker.recorder().push(obs::EventKind::Suspend, stage);
                        tally.flush(&self.core, worker);
                        return Exit::Released;
                    }
                }

                // Execute node (iteration, stage).
                tally.nodes += 1;
                // SAFETY: the slot is live and this task is its unique owner
                // (module docs), so the state cell is ours to borrow. The
                // borrow ends before `complete` or the next handoff.
                let state = unsafe {
                    (*slot.state.get())
                        .as_mut()
                        .expect("iteration state must be present while the iteration is live")
                };

                // Sampled stage timing: the worker's countdown admits 1-in-N
                // nodes, so the common case pays one Cell decrement and the
                // sampled case two clock reads.
                let timer = worker.stage_sample_timer();
                let outcome = state.run_node(stage);
                if let Some(started) = timer {
                    let elapsed = started.elapsed();
                    tally.stage_sample(stage, elapsed.as_nanos() as u64, worker);
                    // Traced jobs also get a span per sampled node,
                    // re-using the elapsed time above: no extra clock
                    // reads, and untraced pipelines pay one Option check
                    // on this already-cold 1-in-64 branch. Best-effort:
                    // stage samples stop once only the buffer's reserved
                    // tail remains, so a long job's samples never crowd
                    // out its lifecycle spans (root, queue wait, run).
                    if let Some(trace) = self.core.trace() {
                        trace.record_elapsed_best_effort(
                            trace.next_span_id(),
                            obs::ROOT_SPAN_ID,
                            obs::SpanKind::Stage,
                            elapsed,
                            stage,
                        );
                    }
                }

                match outcome {
                    NodeOutcome::Done => {
                        return Exit::Completed;
                    }
                    outcome @ (NodeOutcome::ContinueTo(_) | NodeOutcome::WaitFor(_)) => {
                        let (next, is_wait) = match outcome {
                            NodeOutcome::ContinueTo(next) => (next, false),
                            NodeOutcome::WaitFor(next) => (next, true),
                            NodeOutcome::Done => unreachable!(),
                        };
                        assert!(
                            next > stage,
                            "stage numbers must strictly increase within an iteration \
                             (iteration {iteration}, stage {stage} -> {next})"
                        );
                        // Advance the stage counter *before* any check-right,
                        // so a waiting right neighbour observes the new
                        // progress (Dekker pairing with its suspend protocol;
                        // the SeqCst fence lives inside check_right's caller
                        // path below, right before the status read).
                        slot.pending_wait.store(is_wait, Ordering::Relaxed);
                        slot.progress.store(next, Ordering::Release);

                        // Eager enabling checks right at every node boundary;
                        // lazy enabling (the default, per the paper's
                        // work-first principle) defers the check to moments
                        // when it can be amortized against the span: an empty
                        // deque now, or iteration completion later. The fence
                        // is only paid when a check actually happens.
                        if !self.core.lazy_enabling || worker.deque_is_empty() {
                            fence(Ordering::SeqCst);
                            self.check_right(iteration, worker);
                        }
                        // Continue with the next node of this iteration (PIPER
                        // keeps the iteration as its assigned work).
                    }
                }
            }
        }));

        match exit {
            Ok(Exit::Released) => None,
            Ok(Exit::Completed) => {
                // Flush before `complete`: the counters must be exact by the
                // time completion (and any stats reader it unblocks) can
                // observe the pipeline as finished.
                tally.flush(&self.core, worker);
                self.complete(iteration, worker)
            }
            Err(payload) => {
                // A panicking node terminates its iteration; the panic is
                // re-raised from pipe_while once the pipeline drains.
                self.core.record_panic(payload);
                worker.recorder().push(obs::EventKind::Panic, iteration);
                tally.flush(&self.core, worker);
                self.complete(iteration, worker)
            }
        }
    }
}
