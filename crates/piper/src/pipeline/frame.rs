//! Iteration frames and the PIPER execution of pipeline nodes.
//!
//! Each started iteration of a `pipe_while` owns an [`IterFrame`], the
//! analogue of Cilk-P's *iteration frame* (paper, Section 9): it holds the
//! iteration's user state, a **stage counter** tracking progress through the
//! iteration's nodes, and a **status** used by the cross-edge
//! suspend/resume protocol. Frames of adjacent iterations are linked so
//! that iteration `i` can check its left neighbour's progress (the
//! `pipe_wait` test) and wake its right neighbour when it advances
//! (*check-right*, deferred under lazy enabling).
//!
//! ## The cross-edge protocol
//!
//! The stage counter (`progress`) of a frame holds the smallest stage
//! number that has not yet completed in that iteration; a completed
//! iteration stores `u64::MAX`. The cross edge into node `(i, j)` is
//! therefore satisfied exactly when `progress(i-1) > j`.
//!
//! Suspension and resumption race benignly: the consumer publishes its
//! `Suspended` status *before* re-reading the producer's counter, and the
//! producer advances its counter *before* reading the consumer's status
//! (both with sequentially consistent ordering), so at least one side
//! observes the other; the CAS on the status field then decides which side
//! owns the frame and schedules it.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, Weak};

use crate::metrics::Metrics;
use crate::pool::{ControlTask, NodeTask, Task, WorkerThread};

use super::control::{ControlCore, CONTROL_RUNNABLE, CONTROL_THROTTLED};
use super::{NodeOutcome, PipelineIteration};

/// Frame status: the iteration is runnable or currently executing.
const STATUS_RUNNING: u8 = 0;
/// Frame status: the iteration is suspended on an unsatisfied cross edge.
const STATUS_SUSPENDED: u8 = 1;
/// Frame status: the iteration has completed.
const STATUS_DONE: u8 = 2;

/// The runtime frame of one pipeline iteration.
pub(crate) struct IterFrame<I>
where
    I: PipelineIteration,
{
    /// Iteration index `i` (diagnostics only).
    index: u64,
    /// Shared `pipe_while` state (join counter, options, statistics).
    core: Arc<ControlCore>,
    /// The control frame, needed when this iteration's completion re-enables
    /// it through the throttling edge. Weak to avoid a reference cycle
    /// (control → last_frame → control).
    control: Weak<dyn ControlTask>,
    /// Stage counter: smallest stage not yet completed; `u64::MAX` when the
    /// iteration is done.
    progress: AtomicU64,
    /// Whether the next node has an incoming cross edge (`pipe_wait`).
    pending_wait: AtomicBool,
    /// Cross-edge protocol status (RUNNING / SUSPENDED / DONE).
    status: AtomicU8,
    /// The user's iteration state; dropped as soon as the iteration
    /// completes so that live state is bounded by the throttling limit.
    state: Mutex<Option<I>>,
    /// Left neighbour (iteration `i-1`), present until it completes.
    prev: Mutex<Option<Arc<IterFrame<I>>>>,
    /// Right neighbour (iteration `i+1`), set when that iteration starts.
    next: Mutex<Option<Arc<IterFrame<I>>>>,
    /// Dependency folding: cached copy of the left neighbour's stage counter.
    cached_prev_progress: AtomicU64,
}

impl<I> IterFrame<I>
where
    I: PipelineIteration,
{
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        index: u64,
        core: Arc<ControlCore>,
        control: Weak<dyn ControlTask>,
        state: I,
        first_stage: u64,
        wait: bool,
        prev: Option<Arc<IterFrame<I>>>,
    ) -> Self {
        IterFrame {
            index,
            core,
            control,
            progress: AtomicU64::new(first_stage),
            pending_wait: AtomicBool::new(wait),
            status: AtomicU8::new(STATUS_RUNNING),
            state: Mutex::new(Some(state)),
            prev: Mutex::new(prev),
            next: Mutex::new(None),
            cached_prev_progress: AtomicU64::new(0),
        }
    }

    /// Iteration index (used by tests and diagnostics).
    #[allow(dead_code)]
    pub(crate) fn index(&self) -> u64 {
        self.index
    }

    /// Links the right neighbour, so this iteration can wake it.
    pub(crate) fn set_next(&self, next: Arc<IterFrame<I>>) {
        *self.next.lock().unwrap() = Some(next);
    }

    /// Tests whether the cross edge into stage `stage` of this iteration is
    /// satisfied, i.e. whether the left neighbour has completed its node for
    /// that stage. `use_cache` selects whether dependency folding may answer
    /// from the cached counter.
    fn cross_satisfied(&self, worker: &WorkerThread, stage: u64, use_cache: bool) -> bool {
        let prev = self.prev.lock().unwrap().clone();
        let prev = match prev {
            None => return true, // iteration 0, or the left neighbour already completed
            Some(p) => p,
        };
        if use_cache && self.core.dependency_folding {
            let cached = self.cached_prev_progress.load(Ordering::Relaxed);
            if cached > stage {
                Metrics::bump(&self.core.folded_checks);
                Metrics::bump(&worker.metrics().folded_checks);
                return true;
            }
        }
        Metrics::bump(&self.core.cross_checks);
        Metrics::bump(&worker.metrics().cross_checks);
        let current = prev.progress.load(Ordering::SeqCst);
        // Dependency folding's cache: a completed neighbour stores u64::MAX,
        // so after one read every later cross edge of this iteration folds.
        // (The neighbour's frame shell stays linked until *this* iteration
        // completes; its user state was already dropped, so live space is
        // still bounded by the throttling limit.)
        self.cached_prev_progress.store(current, Ordering::Relaxed);
        current > stage
    }

    /// The *check-right* operation: if the right neighbour is suspended on a
    /// stage this iteration has now passed, resume it by pushing it onto the
    /// worker's deque.
    fn check_right(&self, worker: &WorkerThread) {
        let next = self.next.lock().unwrap().clone();
        let next = match next {
            None => return,
            Some(n) => n,
        };
        if next.status.load(Ordering::SeqCst) != STATUS_SUSPENDED {
            return;
        }
        let wanted = next.progress.load(Ordering::SeqCst);
        let ours = self.progress.load(Ordering::SeqCst);
        if ours > wanted
            && next
                .status
                .compare_exchange(
                    STATUS_SUSPENDED,
                    STATUS_RUNNING,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
        {
            // We won the race to resume the neighbour; it becomes stealable
            // work on our deque (the PIPER "enabled vertex" push).
            worker.push(Task::Node(next));
        }
    }

    /// Completes the iteration: releases its state, wakes the right
    /// neighbour, updates the join counter, and — if this completion enables
    /// the control frame through the throttling edge — performs PIPER's
    /// tail-swap. Returns the worker's next assigned task, if any.
    fn complete(&self, worker: &WorkerThread) -> Option<Task> {
        // Publish completion before waking anyone.
        *self.state.lock().unwrap() = None;
        self.progress.store(u64::MAX, Ordering::SeqCst);
        self.status.store(STATUS_DONE, Ordering::SeqCst);
        *self.prev.lock().unwrap() = None;

        Metrics::bump(&self.core.iterations);
        Metrics::bump(&worker.metrics().iterations_completed);

        // A completed iteration always checks right (lazy enabling defers
        // intermediate checks, not this one).
        self.check_right(worker);

        // Leave the throttling edge: one fewer active iteration.
        let previous_active = self.core.active.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(previous_active >= 1);
        let remaining = previous_active - 1;

        let mut assigned = None;
        if remaining < self.core.throttle_limit
            && self.core.control_status.load(Ordering::SeqCst) == CONTROL_THROTTLED
            && self
                .core
                .control_status
                .compare_exchange(
                    CONTROL_THROTTLED,
                    CONTROL_RUNNABLE,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
        {
            // This completion enabled the control frame (the throttling edge
            // of the computation dag). Per PIPER, the enabled vertex becomes
            // the assigned vertex unless the deque is non-empty, in which
            // case it is exchanged with the deque's tail (the tail-swap),
            // keeping consecutive iterations on this worker and exposing the
            // control frame for stealing.
            if let Some(control) = self.control.upgrade() {
                match worker.swap_tail(Task::Control(control)) {
                    Ok(previous_tail) => {
                        Metrics::bump(&self.core.tail_swaps);
                        Metrics::bump(&worker.metrics().tail_swaps);
                        assigned = Some(previous_tail);
                    }
                    Err(control_task) => assigned = Some(control_task),
                }
            }
        }

        // If the loop has stopped producing and this was the last active
        // iteration, the whole pipe_while is complete.
        self.core.maybe_complete();
        assigned
    }
}

impl<I> NodeTask for IterFrame<I>
where
    I: PipelineIteration,
{
    fn node_step(self: Arc<Self>, worker: &WorkerThread) -> Option<Task> {
        loop {
            let stage = self.progress.load(Ordering::SeqCst);
            let needs_wait = self.pending_wait.load(Ordering::SeqCst);

            if needs_wait && !self.cross_satisfied(worker, stage, true) {
                // Publish the suspension, then re-check without the cache to
                // close the race with a concurrently advancing neighbour.
                self.status.store(STATUS_SUSPENDED, Ordering::SeqCst);
                if self.cross_satisfied(worker, stage, false) {
                    if self
                        .status
                        .compare_exchange(
                            STATUS_SUSPENDED,
                            STATUS_RUNNING,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_err()
                    {
                        // The left neighbour won the race and has already
                        // re-scheduled this frame; drop our claim to it.
                        return None;
                    }
                    // We re-claimed the frame; fall through and execute.
                } else {
                    Metrics::bump(&self.core.cross_suspensions);
                    Metrics::bump(&worker.metrics().cross_suspensions);
                    return None;
                }
            }

            // Execute node (i, stage).
            Metrics::bump(&self.core.nodes);
            Metrics::bump(&worker.metrics().nodes_executed);
            let mut state = self
                .state
                .lock()
                .unwrap()
                .take()
                .expect("iteration state must be present while the iteration is live");
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                let o = state.run_node(stage);
                (state, o)
            }));

            match outcome {
                Err(payload) => {
                    // A panicking node terminates its iteration; the panic is
                    // re-raised from pipe_while once the pipeline drains.
                    self.core.record_panic(payload);
                    return self.complete(worker);
                }
                Ok((_state, NodeOutcome::Done)) => {
                    return self.complete(worker);
                }
                Ok((state, outcome @ (NodeOutcome::ContinueTo(_) | NodeOutcome::WaitFor(_)))) => {
                    let (next, is_wait) = match outcome {
                        NodeOutcome::ContinueTo(next) => (next, false),
                        NodeOutcome::WaitFor(next) => (next, true),
                        NodeOutcome::Done => unreachable!(),
                    };
                    assert!(
                        next > stage,
                        "stage numbers must strictly increase within an iteration \
                         (iteration {}, stage {} -> {})",
                        self.index,
                        stage,
                        next
                    );
                    // Put the state back and advance the stage counter
                    // *before* any check-right, so a waiting right neighbour
                    // observes the new progress (Dekker-style pairing with
                    // its suspend protocol).
                    *self.state.lock().unwrap() = Some(state);
                    self.pending_wait.store(is_wait, Ordering::SeqCst);
                    self.progress.store(next, Ordering::SeqCst);

                    // Eager enabling checks right at every node boundary;
                    // lazy enabling (the default, per the paper's work-first
                    // principle) defers the check to moments when it can be
                    // amortized against the span: an empty deque now, or
                    // iteration completion later.
                    if !self.core.lazy_enabling || worker.deque_is_empty() {
                        self.check_right(worker);
                    }
                    // Continue with the next node of this iteration (PIPER
                    // keeps the iteration as its assigned work).
                    continue;
                }
            }
        }
    }
}
