//! A convenience builder for pipelines whose structure is known up front.
//!
//! Many pipelines — ferret's SPS, dedup's SSPS — have a fixed linear
//! sequence of stages, each either *serial* (cross edges between every pair
//! of adjacent iterations) or *parallel* (no cross edges). This is exactly
//! the construct-and-run model of TBB, and it is trivially expressible on
//! top of the on-the-fly machinery: [`StagedPipeline`] packages the common
//! case so that workloads do not have to hand-write a
//! [`PipelineIteration`](super::PipelineIteration) for it. (The x264
//! workload, whose structure is data dependent, cannot use this builder —
//! that is the paper's point — and implements `PipelineIteration` directly.)

use std::sync::Arc;

use crate::metrics::PipeStats;
use crate::pool::ThreadPool;

use super::{
    pipe_while, spawn_pipe, NodeOutcome, PipeHandle, PipeOptions, PipelineIteration, Stage0,
};

/// Whether a stage has cross edges between adjacent iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Iterations execute this stage in order (cross edges everywhere).
    Serial,
    /// Iterations execute this stage independently (no cross edges).
    Parallel,
}

struct StageDef<T> {
    kind: StageKind,
    body: Box<dyn Fn(&mut T) + Send + Sync>,
}

/// A fixed linear pipeline over items of type `T`, executed with PIPER.
///
/// Stage 0 (the producer passed to [`run`](Self::run)) is always serial, as
/// in the paper. Stages added with [`serial`](Self::serial) and
/// [`parallel`](Self::parallel) become stages `1, 2, …` of the pipeline.
pub struct StagedPipeline<T> {
    stages: Vec<StageDef<T>>,
}

impl<T: Send + 'static> Default for StagedPipeline<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + 'static> StagedPipeline<T> {
    /// Creates an empty pipeline (add stages before running it).
    pub fn new() -> Self {
        StagedPipeline { stages: Vec::new() }
    }

    /// Appends a serial stage.
    pub fn serial(mut self, body: impl Fn(&mut T) + Send + Sync + 'static) -> Self {
        self.stages.push(StageDef {
            kind: StageKind::Serial,
            body: Box::new(body),
        });
        self
    }

    /// Appends a parallel stage.
    pub fn parallel(mut self, body: impl Fn(&mut T) + Send + Sync + 'static) -> Self {
        self.stages.push(StageDef {
            kind: StageKind::Parallel,
            body: Box::new(body),
        });
        self
    }

    /// Appends a stage of the given kind.
    pub fn stage(self, kind: StageKind, body: impl Fn(&mut T) + Send + Sync + 'static) -> Self {
        match kind {
            StageKind::Serial => self.serial(body),
            StageKind::Parallel => self.parallel(body),
        }
    }

    /// Number of stages added after Stage 0.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Turns the stage list plus a feeder closure into a `pipe_while`
    /// producer (Stage 0).
    fn into_pipe_producer<P>(
        self,
        mut producer: P,
    ) -> impl FnMut(u64) -> Stage0<StagedItem<T>> + Send + 'static
    where
        P: FnMut() -> Option<T> + Send + 'static,
    {
        assert!(
            !self.stages.is_empty(),
            "a StagedPipeline needs at least one stage besides the producer"
        );
        let stages: Arc<Vec<StageDef<T>>> = Arc::new(self.stages);
        move |_i| match producer() {
            None => Stage0::Stop,
            Some(item) => {
                let wait = stages[0].kind == StageKind::Serial;
                Stage0::Proceed {
                    state: StagedItem {
                        item,
                        stages: Arc::clone(&stages),
                    },
                    first_stage: 1,
                    wait,
                }
            }
        }
    }

    /// Runs the pipeline: `producer` is Stage 0 and is called serially until
    /// it returns `None`; each produced item then flows through the added
    /// stages. Blocks until every item has completed all stages.
    pub fn run<P>(self, pool: &ThreadPool, options: PipeOptions, producer: P) -> PipeStats
    where
        P: FnMut() -> Option<T> + Send + 'static,
    {
        pipe_while(pool, options, self.into_pipe_producer(producer))
    }

    /// Non-blocking form of [`run`](Self::run): launches the pipeline as a
    /// detached job and returns its [`PipeHandle`] immediately (see
    /// [`spawn_pipe`]).
    pub fn spawn<P>(self, pool: &ThreadPool, options: PipeOptions, producer: P) -> PipeHandle
    where
        P: FnMut() -> Option<T> + Send + 'static,
    {
        spawn_pipe(pool, options, self.into_pipe_producer(producer))
    }
}

/// The per-iteration state of a [`StagedPipeline`].
struct StagedItem<T> {
    item: T,
    stages: Arc<Vec<StageDef<T>>>,
}

impl<T: Send + 'static> PipelineIteration for StagedItem<T> {
    fn run_node(&mut self, stage: u64) -> NodeOutcome {
        let idx = (stage - 1) as usize;
        (self.stages[idx].body)(&mut self.item);
        let next = idx + 1;
        if next == self.stages.len() {
            NodeOutcome::Done
        } else if self.stages[next].kind == StageKind::Serial {
            NodeOutcome::WaitFor(stage + 1)
        } else {
            NodeOutcome::ContinueTo(stage + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    #[test]
    fn sps_pipeline_preserves_order_in_final_serial_stage() {
        let pool = ThreadPool::new(4);
        let output = Arc::new(Mutex::new(Vec::new()));
        let out = Arc::clone(&output);
        let mut next = 0u64;
        let n = 250;
        let stats = StagedPipeline::<u64>::new()
            .parallel(|x| {
                *x = x.wrapping_mul(2654435761).rotate_left(7);
            })
            .serial(move |x| {
                out.lock().unwrap().push(*x);
            })
            .run(&pool, PipeOptions::default(), move || {
                if next == n {
                    None
                } else {
                    next += 1;
                    Some(next - 1)
                }
            });
        assert_eq!(stats.iterations, n);
        let expected: Vec<u64> = (0..n)
            .map(|x: u64| x.wrapping_mul(2654435761).rotate_left(7))
            .collect();
        assert_eq!(*output.lock().unwrap(), expected);
    }

    #[test]
    fn all_parallel_stages_process_every_item() {
        let pool = ThreadPool::new(3);
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let mut produced = 0u64;
        StagedPipeline::<u64>::new()
            .parallel(|x| *x += 1)
            .parallel(move |x| {
                c.fetch_add(*x, Ordering::SeqCst);
            })
            .run(&pool, PipeOptions::default(), move || {
                if produced == 100 {
                    None
                } else {
                    produced += 1;
                    Some(produced - 1)
                }
            });
        assert_eq!(count.load(Ordering::SeqCst), (1..=100).sum());
    }

    #[test]
    fn ssps_shape_like_dedup() {
        let pool = ThreadPool::new(4);
        let output = Arc::new(Mutex::new(Vec::new()));
        let out = Arc::clone(&output);
        let mut next = 0u64;
        let n = 120;
        StagedPipeline::<(u64, u64)>::new()
            .serial(|pair| pair.1 = pair.0 * 10) // serial "dedup" stage
            .parallel(|pair| pair.1 += 1) // parallel "compress" stage
            .serial(move |pair| out.lock().unwrap().push(pair.1)) // serial write
            .run(&pool, PipeOptions::with_throttle(8), move || {
                if next == n {
                    None
                } else {
                    next += 1;
                    Some((next - 1, 0))
                }
            });
        let expected: Vec<u64> = (0..n).map(|x| x * 10 + 1).collect();
        assert_eq!(*output.lock().unwrap(), expected);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_pipeline_panics() {
        let pool = ThreadPool::new(1);
        StagedPipeline::<u64>::new().run(&pool, PipeOptions::default(), || None);
    }
}
