//! On-the-fly pipeline parallelism: the `pipe_while` construct and the
//! PIPER scheduling of its iterations.
//!
//! # The programming model
//!
//! A Cilk-P `pipe_while` loop (paper, Section 2) executes iterations of a
//! loop in a pipelined fashion. Each iteration is divided *during its own
//! execution* into **nodes**, one per **stage**; stage numbers must strictly
//! increase within an iteration. Two special statements control how an
//! iteration advances:
//!
//! * `pipe_continue(j)` — move to stage `j` immediately;
//! * `pipe_wait(j)` — move to stage `j`, but only after iteration `i-1` has
//!   finished *its* stage `j` (a *cross edge* in the pipeline dag).
//!
//! Because Rust has no compiler support for suspending an iteration in the
//! middle of a plain loop body, this library reifies the model:
//!
//! * Stage 0 — which in Cilk-P contains the loop test and is always serial —
//!   is the **producer** closure passed to [`pipe_while`]. It is called once
//!   per iteration (never concurrently) and returns [`Stage0::Stop`] to end
//!   the loop or [`Stage0::Proceed`] carrying the iteration's state and how
//!   to enter its next stage.
//! * The rest of the iteration implements [`PipelineIteration`]: the runtime
//!   calls [`run_node`](PipelineIteration::run_node) once per node, and the
//!   returned [`NodeOutcome`] plays the role of `pipe_continue` /
//!   `pipe_wait` / end-of-iteration. The pipeline's structure — how many
//!   stages, which of them wait, how far stages are skipped — can therefore
//!   depend on the input data, which is exactly the paper's *on-the-fly*
//!   property (and what the x264 workload exercises).
//!
//! # Scheduling
//!
//! Iterations are scheduled by PIPER (paper, Section 5) on the pool's
//! work-stealing deques: starting an iteration pushes the *continuation*
//! (the next execution of the control frame) and descends into the
//! iteration; finishing a node may enable the corresponding node of the
//! next iteration; finishing an iteration may re-enable the control frame
//! through the *throttling edge*, in which case the PIPER *tail-swap* is
//! performed. The runtime implements the paper's two optimizations — *lazy
//! enabling* and *dependency folding* — which can be toggled through
//! [`PipeOptions`] for the ablation studies of Figure 9.
//!
//! # Example
//!
//! A three-stage serial–parallel–serial (SPS) pipeline like ferret's:
//!
//! ```
//! use piper::{ThreadPool, PipeOptions, Stage0, NodeOutcome, PipelineIteration};
//! use std::sync::{Arc, Mutex};
//!
//! struct Item { value: u64, out: Arc<Mutex<Vec<u64>>> }
//!
//! impl PipelineIteration for Item {
//!     fn run_node(&mut self, stage: u64) -> NodeOutcome {
//!         match stage {
//!             1 => { self.value = self.value * self.value; NodeOutcome::WaitFor(2) }
//!             2 => { self.out.lock().unwrap().push(self.value); NodeOutcome::Done }
//!             _ => unreachable!(),
//!         }
//!     }
//! }
//!
//! let pool = ThreadPool::new(2);
//! let out = Arc::new(Mutex::new(Vec::new()));
//! let sink = Arc::clone(&out);
//! let mut next = 0u64;
//! pool.pipe_while(PipeOptions::default(), move |_i| {
//!     if next == 10 { return Stage0::Stop; }
//!     next += 1;
//!     Stage0::proceed(Item { value: next, out: Arc::clone(&sink) })
//! });
//! // Stage 2 waits on the previous iteration, so outputs appear in order.
//! assert_eq!(*out.lock().unwrap(), (1..=10).map(|v| v * v).collect::<Vec<_>>());
//! ```

mod control;
mod frame;
mod handle;
mod staged;

pub use handle::{spawn_pipe, PipeHandle};
pub use staged::{StageKind, StagedPipeline};

use crate::metrics::PipeStats;
use crate::pool::{Task, ThreadPool};

use control::{ControlCore, PipeShared};

/// How an iteration leaves Stage 0 (the producer).
#[derive(Debug)]
pub enum Stage0<I> {
    /// The loop-termination condition was reached: no new iteration starts.
    Stop,
    /// A new iteration starts with the given state.
    Proceed {
        /// The iteration's state, handed to [`PipelineIteration::run_node`].
        state: I,
        /// Stage number of the iteration's first node after Stage 0
        /// (must be ≥ 1). Stages `1..first_stage` become *null nodes*.
        first_stage: u64,
        /// If true, the first node has a cross edge from the previous
        /// iteration (i.e. it was entered with `pipe_wait`); if false it was
        /// entered with `pipe_continue`.
        wait: bool,
    },
}

impl<I> Stage0<I> {
    /// Proceed into stage 1 with a cross edge (`pipe_wait(1)`) — the common
    /// case for pipelines whose stage 1 is serial.
    pub fn wait(state: I) -> Self {
        Stage0::Proceed {
            state,
            first_stage: 1,
            wait: true,
        }
    }

    /// Proceed into stage 1 without a cross edge (`pipe_continue(1)`) — the
    /// common case for pipelines whose stage 1 is parallel.
    pub fn proceed(state: I) -> Self {
        Stage0::Proceed {
            state,
            first_stage: 1,
            wait: false,
        }
    }

    /// Proceed into an arbitrary stage, optionally waiting on the previous
    /// iteration (stage skipping on entry, as x264 uses on line 17 of
    /// Figure 2).
    pub fn into_stage(state: I, first_stage: u64, wait: bool) -> Self {
        Stage0::Proceed {
            state,
            first_stage,
            wait,
        }
    }
}

/// What a node decided about the rest of its iteration — the reification of
/// `pipe_continue(j)`, `pipe_wait(j)` and falling off the end of the loop
/// body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeOutcome {
    /// `pipe_continue(j)`: the next node is stage `j` and may start
    /// immediately.
    ContinueTo(u64),
    /// `pipe_wait(j)`: the next node is stage `j` and has a cross edge from
    /// stage `j` of the previous iteration.
    WaitFor(u64),
    /// The iteration is complete.
    Done,
}

/// One iteration of a `pipe_while` loop (everything after Stage 0).
///
/// The runtime calls [`run_node`](Self::run_node) once per node with the
/// node's stage number; the implementation performs the stage's work and
/// says how to continue. Stage numbers must strictly increase across the
/// calls for one iteration. Nodes may use nested fork-join parallelism
/// ([`crate::join`], [`crate::scope`], [`ThreadPool::par_for`]) or even
/// nested pipelines.
pub trait PipelineIteration: Send + 'static {
    /// Executes the node for `stage` and returns how the iteration
    /// continues.
    fn run_node(&mut self, stage: u64) -> NodeOutcome;
}

/// Options controlling a single `pipe_while` execution.
#[derive(Debug, Clone)]
pub struct PipeOptions {
    /// The throttling limit `K`: at most `K` iterations may be simultaneously
    /// active (started but not finished). `None` selects the paper's default
    /// of `4·P` workers.
    pub throttle_limit: Option<usize>,
    /// Enable the *lazy enabling* optimization (paper, Section 9): defer the
    /// check-right operation to iteration completion or an empty deque
    /// instead of performing it at every node boundary.
    pub lazy_enabling: bool,
    /// Enable the *dependency folding* optimization (paper, Section 9):
    /// cache the most recently read stage counter of the left neighbour to
    /// avoid re-reading it for already-satisfied cross edges.
    pub dependency_folding: bool,
    /// Adaptive throttling: `Some(floor)` lets the runtime tune the
    /// *effective* window within `[floor, K]` from observed ring-slot
    /// occupancy and stall counts, instead of always running the full
    /// window `K` chosen at submit time. The ring still allocates `K`
    /// slots (so `K` remains the hard Theorem 11 space bound an admission
    /// controller can budget on); adaptation only gates how many of them
    /// may be simultaneously live. `None` (the default) keeps the paper's
    /// fixed-window behaviour.
    pub adaptive_window: Option<usize>,
    /// Per-job span buffer for distributed tracing: when set, the runtime
    /// records a sampled [`obs::SpanKind::Stage`] span (parented to
    /// [`obs::ROOT_SPAN_ID`]) for each node execution the 1-in-64 stage
    /// timing sampler admits. `None` (the default) records nothing; the
    /// un-sampled hot path is identical either way.
    pub trace: Option<std::sync::Arc<obs::TraceBuffer>>,
}

impl Default for PipeOptions {
    fn default() -> Self {
        PipeOptions {
            throttle_limit: None,
            lazy_enabling: true,
            dependency_folding: true,
            adaptive_window: None,
            trace: None,
        }
    }
}

impl PipeOptions {
    /// Options with an explicit throttling limit `K`.
    ///
    /// `K = 0` is meaningless (a pipeline that may never start an
    /// iteration): debug builds panic on it, release builds clamp it to 1
    /// when the pipeline runs (see [`resolve_throttle`](Self::resolve_throttle)).
    pub fn with_throttle(k: usize) -> Self {
        debug_assert!(
            k >= 1,
            "PipeOptions::with_throttle(0): the throttling limit K must be >= 1 \
             (release builds clamp it to 1)"
        );
        PipeOptions {
            throttle_limit: Some(k),
            ..Default::default()
        }
    }

    /// Sets the throttling limit `K`.
    ///
    /// `K = 0` is meaningless: debug builds panic on it, release builds
    /// clamp it to 1 when the pipeline runs.
    pub fn throttle(mut self, k: usize) -> Self {
        debug_assert!(
            k >= 1,
            "PipeOptions::throttle(0): the throttling limit K must be >= 1 \
             (release builds clamp it to 1)"
        );
        self.throttle_limit = Some(k);
        self
    }

    /// The effective throttling limit for a pool with `num_threads` workers:
    /// the explicit limit if one was set, else the paper's default `4·P`,
    /// clamped to at least 1. This is also the number of recycled frame
    /// slots the pipeline allocates — a pipeline-service admission
    /// controller budgets on exactly this quantity.
    pub fn resolve_throttle(&self, num_threads: usize) -> usize {
        self.throttle_limit
            .unwrap_or_else(|| 4 * num_threads)
            .max(1)
    }

    /// Enables or disables lazy enabling.
    pub fn lazy_enabling(mut self, on: bool) -> Self {
        self.lazy_enabling = on;
        self
    }

    /// Enables or disables dependency folding.
    pub fn dependency_folding(mut self, on: bool) -> Self {
        self.dependency_folding = on;
        self
    }

    /// Enables adaptive throttling with the given window floor (clamped to
    /// at least 1): the effective window starts at the floor and is widened
    /// (multiplicatively, on producer stalls with consumers keeping up) or
    /// narrowed (additively, on sustained under-occupancy) within
    /// `[floor, K]`. See [`PipeOptions::adaptive_window`].
    pub fn adaptive(mut self, floor: usize) -> Self {
        self.adaptive_window = Some(floor.max(1));
        self
    }

    /// Attaches a span buffer for sampled per-stage tracing (see
    /// [`PipeOptions::trace`]).
    pub fn traced(mut self, buffer: std::sync::Arc<obs::TraceBuffer>) -> Self {
        self.trace = Some(buffer);
        self
    }
}

/// Executes an on-the-fly pipeline (`pipe_while`) on `pool`, blocking the
/// calling thread until every iteration has completed, and returns the
/// pipeline's execution statistics.
///
/// `producer` is Stage 0: it is called serially, once per iteration, with
/// the iteration index, and decides whether the loop continues. See the
/// [module documentation](self) for the full model and an example.
pub fn pipe_while<F, I>(pool: &ThreadPool, options: PipeOptions, producer: F) -> PipeStats
where
    F: FnMut(u64) -> Stage0<I> + Send + 'static,
    I: PipelineIteration,
{
    let (shared, core) = prepare_pipeline(pool, &options, producer);
    pool.in_worker(|worker| {
        worker.push(Task::Control(shared));
        worker.wait_until(core.completion_latch());
    });

    if let Some(payload) = core.take_panic() {
        std::panic::resume_unwind(payload);
    }
    core.stats()
}

/// Shared construction and pool-level accounting for both pipeline entry
/// points ([`pipe_while`] and [`spawn_pipe`]): resolves the throttle
/// window, builds the control frame + recycled ring, mirrors the one-time
/// frame allocation into the pool counters (done here, on the calling
/// thread, so the pool and per-pipe counters agree even for a pipeline
/// whose producer stops immediately), and wires the
/// `pipes_started`/`pipes_completed` bookkeeping.
#[allow(clippy::type_complexity)]
fn prepare_pipeline<F, I>(
    pool: &ThreadPool,
    options: &PipeOptions,
    producer: F,
) -> (
    std::sync::Arc<PipeShared<F, I>>,
    std::sync::Arc<ControlCore>,
)
where
    F: FnMut(u64) -> Stage0<I> + Send + 'static,
    I: PipelineIteration,
{
    let throttle = options.resolve_throttle(pool.num_threads());
    let core = ControlCore::new(
        throttle,
        options.lazy_enabling,
        options.dependency_folding,
        options.adaptive_window,
        options.trace.clone(),
    );
    let shared = PipeShared::new(core, producer);
    let core = shared.core_handle();
    pool.registry()
        .metrics
        .frame_allocations
        .fetch_add(throttle as u64, std::sync::atomic::Ordering::Relaxed);
    crate::metrics::Metrics::bump(&pool.registry().metrics.pipes_started);
    {
        let registry = std::sync::Arc::clone(pool.registry());
        core.add_completion_hook(Box::new(move || {
            crate::metrics::Metrics::bump(&registry.metrics.pipes_completed);
        }));
    }
    (shared, core)
}

impl ThreadPool {
    /// Method form of [`pipe_while`].
    pub fn pipe_while<F, I>(&self, options: PipeOptions, producer: F) -> PipeStats
    where
        F: FnMut(u64) -> Stage0<I> + Send + 'static,
        I: PipelineIteration,
    {
        pipe_while(self, options, producer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    /// A configurable test iteration: a fixed sequence of outcomes.
    struct Scripted {
        outcomes: Vec<NodeOutcome>,
        executed: Arc<Mutex<Vec<(u64, u64)>>>, // (iteration, stage)
        index: u64,
        step: usize,
    }

    impl PipelineIteration for Scripted {
        fn run_node(&mut self, stage: u64) -> NodeOutcome {
            self.executed.lock().unwrap().push((self.index, stage));
            let o = self.outcomes[self.step];
            self.step += 1;
            o
        }
    }

    fn run_scripted(
        pool: &ThreadPool,
        opts: PipeOptions,
        n: u64,
        outcomes: Vec<NodeOutcome>,
        first_wait: bool,
    ) -> (Vec<(u64, u64)>, PipeStats) {
        let executed = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&executed);
        let outcomes_arc = outcomes;
        let stats = pool.pipe_while(opts, move |i| {
            if i == n {
                return Stage0::Stop;
            }
            Stage0::Proceed {
                state: Scripted {
                    outcomes: outcomes_arc.clone(),
                    executed: Arc::clone(&sink),
                    index: i,
                    step: 0,
                },
                first_stage: 1,
                wait: first_wait,
            }
        });
        let log = executed.lock().unwrap().clone();
        (log, stats)
    }

    /// Debug builds reject a zero throttle window loudly…
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "the throttling limit K must be >= 1")]
    fn with_throttle_zero_debug_panics() {
        let _ = PipeOptions::with_throttle(0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "the throttling limit K must be >= 1")]
    fn throttle_zero_debug_panics() {
        let _ = PipeOptions::default().throttle(0);
    }

    /// …while release builds clamp it to 1 when the pipeline runs.
    #[test]
    #[cfg(not(debug_assertions))]
    fn throttle_zero_is_clamped_in_release() {
        let opts = PipeOptions::with_throttle(0);
        assert_eq!(opts.resolve_throttle(4), 1);
        let pool = ThreadPool::new(2);
        let (_, stats) = run_scripted(&pool, opts, 8, vec![NodeOutcome::Done], true);
        assert_eq!(stats.iterations, 8);
        assert_eq!(stats.peak_active_iterations, 1);
    }

    #[test]
    fn resolve_throttle_defaults_to_four_p() {
        assert_eq!(PipeOptions::default().resolve_throttle(4), 16);
        assert_eq!(PipeOptions::with_throttle(3).resolve_throttle(4), 3);
    }

    #[test]
    fn empty_pipeline_completes_immediately() {
        let pool = ThreadPool::new(2);
        let stats = pool.pipe_while(PipeOptions::default(), |_i| Stage0::<Scripted>::Stop);
        assert_eq!(stats.iterations, 0);
        assert_eq!(stats.nodes, 0);
    }

    #[test]
    fn single_worker_runs_all_nodes() {
        let pool = ThreadPool::new(1);
        let (log, stats) = run_scripted(
            &pool,
            PipeOptions::default(),
            10,
            vec![
                NodeOutcome::WaitFor(2),
                NodeOutcome::ContinueTo(3),
                NodeOutcome::Done,
            ],
            true,
        );
        assert_eq!(stats.iterations, 10);
        assert_eq!(stats.nodes, 30);
        assert_eq!(log.len(), 30);
        // Every iteration executed stages 1, 2, 3 in order.
        for i in 0..10u64 {
            let stages: Vec<u64> = log
                .iter()
                .filter(|(it, _)| *it == i)
                .map(|(_, s)| *s)
                .collect();
            assert_eq!(stages, vec![1, 2, 3]);
        }
    }

    #[test]
    fn multi_worker_sps_pipeline_preserves_serial_stage_order() {
        let pool = ThreadPool::new(4);
        let out = Arc::new(Mutex::new(Vec::new()));
        struct Sps {
            i: u64,
            out: Arc<Mutex<Vec<u64>>>,
        }
        impl PipelineIteration for Sps {
            fn run_node(&mut self, stage: u64) -> NodeOutcome {
                match stage {
                    1 => {
                        // Parallel middle stage: burn a little work.
                        let mut acc = self.i;
                        for k in 0..200 {
                            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                        }
                        std::hint::black_box(acc);
                        NodeOutcome::WaitFor(2)
                    }
                    2 => {
                        self.out.lock().unwrap().push(self.i);
                        NodeOutcome::Done
                    }
                    _ => unreachable!(),
                }
            }
        }
        let sink = Arc::clone(&out);
        let n = 200;
        let stats = pool.pipe_while(PipeOptions::default(), move |i| {
            if i == n {
                return Stage0::Stop;
            }
            Stage0::proceed(Sps {
                i,
                out: Arc::clone(&sink),
            })
        });
        assert_eq!(stats.iterations, n);
        // The final serial stage has cross edges, so outputs appear in
        // iteration order even though stage 1 ran in parallel.
        assert_eq!(*out.lock().unwrap(), (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn throttling_limits_live_iterations() {
        let pool = ThreadPool::new(4);
        for k in [1usize, 2, 4, 8] {
            let (_, stats) = run_scripted(
                &pool,
                PipeOptions::with_throttle(k),
                64,
                vec![NodeOutcome::ContinueTo(2), NodeOutcome::Done],
                false,
            );
            assert!(
                stats.peak_active_iterations <= k as u64,
                "K={k}: peak {} exceeds throttle",
                stats.peak_active_iterations
            );
            assert_eq!(stats.iterations, 64);
        }
    }

    #[test]
    fn stage_skipping_and_varying_stage_counts() {
        // Iterations alternate between a short script and a long script with
        // skipped stages, exercising null-node semantics.
        let pool = ThreadPool::new(3);
        let executed = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&executed);
        struct Skipper {
            i: u64,
            executed: Arc<Mutex<Vec<(u64, u64)>>>,
        }
        impl PipelineIteration for Skipper {
            fn run_node(&mut self, stage: u64) -> NodeOutcome {
                self.executed.lock().unwrap().push((self.i, stage));
                if self.i.is_multiple_of(2) {
                    // Even iterations: stages 1 -> 5 (skip) -> done.
                    match stage {
                        1 => NodeOutcome::WaitFor(5),
                        5 => NodeOutcome::Done,
                        _ => unreachable!(),
                    }
                } else {
                    // Odd iterations: stages 1 -> 2 -> 9 -> done.
                    match stage {
                        1 => NodeOutcome::ContinueTo(2),
                        2 => NodeOutcome::WaitFor(9),
                        9 => NodeOutcome::Done,
                        _ => unreachable!(),
                    }
                }
            }
        }
        let n = 50;
        let stats = pool.pipe_while(PipeOptions::default(), move |i| {
            if i == n {
                return Stage0::Stop;
            }
            Stage0::Proceed {
                state: Skipper {
                    i,
                    executed: Arc::clone(&sink),
                },
                first_stage: 1,
                wait: i % 3 == 0,
            }
        });
        assert_eq!(stats.iterations, n);
        let log = executed.lock().unwrap();
        assert_eq!(
            log.len() as u64,
            stats.nodes,
            "every executed node is logged"
        );
        for i in 0..n {
            let stages: Vec<u64> = log
                .iter()
                .filter(|(it, _)| *it == i)
                .map(|(_, s)| *s)
                .collect();
            if i % 2 == 0 {
                assert_eq!(stages, vec![1, 5]);
            } else {
                assert_eq!(stages, vec![1, 2, 9]);
            }
        }
    }

    #[test]
    fn serial_stage_with_heavy_waits_is_correct_with_many_workers() {
        // A fully serial pipeline (every stage waits): output order must be
        // exactly the iteration order.
        let pool = ThreadPool::new(4);
        let out = Arc::new(Mutex::new(Vec::new()));
        struct Serial {
            i: u64,
            out: Arc<Mutex<Vec<u64>>>,
        }
        impl PipelineIteration for Serial {
            fn run_node(&mut self, stage: u64) -> NodeOutcome {
                match stage {
                    1 => NodeOutcome::WaitFor(2),
                    2 => NodeOutcome::WaitFor(3),
                    3 => {
                        self.out.lock().unwrap().push(self.i);
                        NodeOutcome::Done
                    }
                    _ => unreachable!(),
                }
            }
        }
        let sink = Arc::clone(&out);
        let n = 300;
        pool.pipe_while(PipeOptions::default(), move |i| {
            if i == n {
                return Stage0::Stop;
            }
            Stage0::wait(Serial {
                i,
                out: Arc::clone(&sink),
            })
        });
        assert_eq!(*out.lock().unwrap(), (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn lazy_and_eager_enabling_produce_same_results() {
        let pool = ThreadPool::new(4);
        for lazy in [true, false] {
            let opts = PipeOptions::default().lazy_enabling(lazy);
            let (log, stats) = run_scripted(
                &pool,
                opts,
                80,
                vec![NodeOutcome::WaitFor(2), NodeOutcome::Done],
                true,
            );
            assert_eq!(stats.iterations, 80);
            assert_eq!(log.len(), 160);
        }
    }

    #[test]
    fn dependency_folding_reduces_cross_checks() {
        // A single worker makes the schedule deterministic: each iteration
        // runs after its predecessor completed, so with folding only the
        // first cross-edge check per iteration needs to read the neighbour's
        // stage counter and the rest are answered from the cache.
        let pool = ThreadPool::new(1);
        let mk_outcomes = || {
            // Many fine-grained serial stages: lots of cross-edge checks.
            let mut v: Vec<NodeOutcome> = (2..40).map(NodeOutcome::WaitFor).collect();
            v.push(NodeOutcome::Done);
            v
        };
        let (_, with_folding) = run_scripted(
            &pool,
            PipeOptions::default().dependency_folding(true),
            40,
            mk_outcomes(),
            true,
        );
        let (_, without_folding) = run_scripted(
            &pool,
            PipeOptions::default().dependency_folding(false),
            40,
            mk_outcomes(),
            true,
        );
        assert_eq!(without_folding.folded_checks, 0);
        assert!(
            with_folding.folded_checks > 0,
            "dependency folding should satisfy some checks from the cache"
        );
        assert!(
            with_folding.cross_checks < without_folding.cross_checks,
            "folding should reduce stage-counter reads ({} vs {})",
            with_folding.cross_checks,
            without_folding.cross_checks
        );
    }

    #[test]
    fn fixed_window_pipelines_report_k_as_effective_window() {
        let pool = ThreadPool::new(2);
        let (_, stats) = run_scripted(
            &pool,
            PipeOptions::with_throttle(3),
            20,
            vec![NodeOutcome::Done],
            false,
        );
        assert_eq!(stats.effective_window, 3);
        assert_eq!(stats.adaptive_widenings, 0);
        assert_eq!(stats.adaptive_narrowings, 0);
    }

    #[test]
    fn adaptive_window_stays_in_band_and_bounds_live_iterations() {
        let pool = ThreadPool::new(4);
        let k = 16;
        for floor in [1usize, 2, 4] {
            let opts = PipeOptions::with_throttle(k).adaptive(floor);
            let (log, stats) = run_scripted(
                &pool,
                opts,
                512,
                vec![NodeOutcome::ContinueTo(2), NodeOutcome::Done],
                false,
            );
            assert_eq!(stats.iterations, 512);
            assert_eq!(log.len(), 1024);
            assert!(
                stats.peak_active_iterations <= k as u64,
                "peak {} exceeds the ring capacity {k}",
                stats.peak_active_iterations
            );
            assert!(
                (floor as u64..=k as u64).contains(&stats.effective_window),
                "effective window {} left the [{floor}, {k}] band",
                stats.effective_window
            );
        }
    }

    #[test]
    fn adaptive_window_widens_under_parallel_demand() {
        // A parallel workload (no cross edges) with a busy producer: the
        // floor-sized window is the bottleneck, so the controller must
        // widen it at least once over many iterations.
        let pool = ThreadPool::new(4);
        struct Spin;
        impl PipelineIteration for Spin {
            fn run_node(&mut self, _stage: u64) -> NodeOutcome {
                let mut acc = 1u64;
                for k in 0..500 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                std::hint::black_box(acc);
                NodeOutcome::Done
            }
        }
        let stats = pool.pipe_while(PipeOptions::with_throttle(16).adaptive(1), move |i| {
            if i == 2000 {
                return Stage0::Stop;
            }
            Stage0::proceed(Spin)
        });
        assert_eq!(stats.iterations, 2000);
        // Widening is driven by *parallel* demand: on a single-core host
        // the lone worker retires each iteration before the producer can
        // stall on the window, so the controller may (correctly) never
        // widen there — only assert it where parallelism exists.
        if std::thread::available_parallelism().map_or(1, |n| n.get()) > 1 {
            assert!(
                stats.adaptive_widenings > 0,
                "window never widened despite sustained parallel demand: {stats:?}"
            );
        }
        // The *final* window is host-dependent (on a saturated or single
        // core the controller legitimately narrows back down), so only the
        // band invariant is asserted here.
        assert!((1..=16).contains(&stats.effective_window));
    }

    #[test]
    fn adaptive_serial_pipeline_is_correct_and_ordered() {
        // Fully serial pipeline under adaptation: whatever the window does,
        // cross edges still force iteration order on the serial stage.
        let pool = ThreadPool::new(4);
        let out = Arc::new(Mutex::new(Vec::new()));
        struct Serial {
            i: u64,
            out: Arc<Mutex<Vec<u64>>>,
        }
        impl PipelineIteration for Serial {
            fn run_node(&mut self, stage: u64) -> NodeOutcome {
                match stage {
                    1 => NodeOutcome::WaitFor(2),
                    2 => {
                        self.out.lock().unwrap().push(self.i);
                        NodeOutcome::Done
                    }
                    _ => unreachable!(),
                }
            }
        }
        let sink = Arc::clone(&out);
        let n = 300;
        let stats = pool.pipe_while(PipeOptions::with_throttle(8).adaptive(1), move |i| {
            if i == n {
                return Stage0::Stop;
            }
            Stage0::wait(Serial {
                i,
                out: Arc::clone(&sink),
            })
        });
        assert_eq!(*out.lock().unwrap(), (0..n).collect::<Vec<_>>());
        assert!(stats.effective_window >= 1 && stats.effective_window <= 8);
    }

    #[test]
    fn nested_fork_join_inside_stage() {
        let pool = ThreadPool::new(4);
        let total = Arc::new(AtomicU64::new(0));
        struct WithCilkFor {
            i: u64,
            total: Arc<AtomicU64>,
        }
        impl PipelineIteration for WithCilkFor {
            fn run_node(&mut self, stage: u64) -> NodeOutcome {
                match stage {
                    1 => {
                        // Nested fork-join, like x264's cilk_for over B-frames.
                        let (a, b) = crate::join(|| self.i * 2, || self.i * 3);
                        self.total.fetch_add(a + b, Ordering::SeqCst);
                        NodeOutcome::WaitFor(2)
                    }
                    2 => NodeOutcome::Done,
                    _ => unreachable!(),
                }
            }
        }
        let sink = Arc::clone(&total);
        let n = 40;
        pool.pipe_while(PipeOptions::default(), move |i| {
            if i == n {
                return Stage0::Stop;
            }
            Stage0::proceed(WithCilkFor {
                i,
                total: Arc::clone(&sink),
            })
        });
        assert_eq!(total.load(Ordering::SeqCst), (0..n).map(|i| i * 5).sum());
    }

    #[test]
    fn nested_pipeline_inside_stage() {
        // A pipe_while whose stages themselves run a small pipe_while
        // (pipe nesting depth D = 2).
        let pool = Arc::new(ThreadPool::new(3));
        let total = Arc::new(AtomicU64::new(0));
        struct Outer {
            i: u64,
            pool: Arc<ThreadPool>,
            total: Arc<AtomicU64>,
        }
        struct Inner {
            j: u64,
            total: Arc<AtomicU64>,
        }
        impl PipelineIteration for Inner {
            fn run_node(&mut self, _stage: u64) -> NodeOutcome {
                self.total.fetch_add(self.j, Ordering::SeqCst);
                NodeOutcome::Done
            }
        }
        impl PipelineIteration for Outer {
            fn run_node(&mut self, stage: u64) -> NodeOutcome {
                match stage {
                    1 => {
                        let total = Arc::clone(&self.total);
                        let m = self.i % 4 + 1;
                        self.pool
                            .pipe_while(PipeOptions::with_throttle(2), move |j| {
                                if j == m {
                                    return Stage0::Stop;
                                }
                                Stage0::wait(Inner {
                                    j,
                                    total: Arc::clone(&total),
                                })
                            });
                        NodeOutcome::WaitFor(2)
                    }
                    2 => NodeOutcome::Done,
                    _ => unreachable!(),
                }
            }
        }
        let sink = Arc::clone(&total);
        let pool2 = Arc::clone(&pool);
        let n = 12;
        pool.pipe_while(PipeOptions::with_throttle(4), move |i| {
            if i == n {
                return Stage0::Stop;
            }
            Stage0::proceed(Outer {
                i,
                pool: Arc::clone(&pool2),
                total: Arc::clone(&sink),
            })
        });
        let expected: u64 = (0..n).map(|i| (0..(i % 4 + 1)).sum::<u64>()).sum();
        assert_eq!(total.load(Ordering::SeqCst), expected);
    }

    #[test]
    fn panic_in_node_propagates_and_pipeline_drains() {
        let pool = ThreadPool::new(2);
        struct Panicky {
            i: u64,
        }
        impl PipelineIteration for Panicky {
            fn run_node(&mut self, _stage: u64) -> NodeOutcome {
                if self.i == 5 {
                    panic!("node panic");
                }
                NodeOutcome::Done
            }
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.pipe_while(PipeOptions::default(), move |i| {
                if i == 10 {
                    return Stage0::Stop;
                }
                Stage0::wait(Panicky { i })
            });
        }));
        assert!(result.is_err());
        // Pool remains usable.
        assert_eq!(pool.install(|| 1), 1);
    }

    #[test]
    fn panic_in_producer_propagates() {
        let pool = ThreadPool::new(2);
        struct Nop;
        impl PipelineIteration for Nop {
            fn run_node(&mut self, _stage: u64) -> NodeOutcome {
                NodeOutcome::Done
            }
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.pipe_while(PipeOptions::default(), move |i| {
                if i == 3 {
                    panic!("producer panic");
                }
                Stage0::wait(Nop)
            });
        }));
        assert!(result.is_err());
        assert_eq!(pool.install(|| 2), 2);
    }

    #[test]
    fn pipe_while_from_external_thread_blocks_until_done() {
        let pool = ThreadPool::new(3);
        let count = Arc::new(AtomicU64::new(0));
        struct Bump {
            count: Arc<AtomicU64>,
        }
        impl PipelineIteration for Bump {
            fn run_node(&mut self, _stage: u64) -> NodeOutcome {
                self.count.fetch_add(1, Ordering::SeqCst);
                NodeOutcome::Done
            }
        }
        let sink = Arc::clone(&count);
        let stats = pool.pipe_while(PipeOptions::default(), move |i| {
            if i == 500 {
                return Stage0::Stop;
            }
            Stage0::proceed(Bump {
                count: Arc::clone(&sink),
            })
        });
        // By the time pipe_while returns, every iteration has run.
        assert_eq!(count.load(Ordering::SeqCst), 500);
        assert_eq!(stats.iterations, 500);
        assert!(stats.peak_active_iterations <= 4 * pool.num_threads() as u64);
    }

    #[test]
    fn first_stage_may_be_large_for_stage_skipping_entry() {
        // Entering iteration i at stage 1 + i (like x264's `pipe_wait(1+skip)`).
        let pool = ThreadPool::new(3);
        let out = Arc::new(Mutex::new(Vec::new()));
        struct SkipEntry {
            i: u64,
            out: Arc<Mutex<Vec<u64>>>,
        }
        impl PipelineIteration for SkipEntry {
            fn run_node(&mut self, stage: u64) -> NodeOutcome {
                assert_eq!(stage, 1 + self.i);
                self.out.lock().unwrap().push(self.i);
                NodeOutcome::Done
            }
        }
        let sink = Arc::clone(&out);
        let n = 60;
        pool.pipe_while(PipeOptions::default(), move |i| {
            if i == n {
                return Stage0::Stop;
            }
            Stage0::into_stage(
                SkipEntry {
                    i,
                    out: Arc::clone(&sink),
                },
                1 + i,
                true,
            )
        });
        let mut got = out.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got, (0..n).collect::<Vec<_>>());
    }
}
