//! The control frame of a `pipe_while` loop.
//!
//! In the paper's computation-dag model (Section 4, Figure 5), the control
//! contour of a `pipe_while` runs the loop test and Stage 0 of each
//! iteration serially, spawns the rest of each iteration, and carries the
//! throttling edge. This module reifies that contour as a schedulable task
//! ([`PipeShared`]) plus the non-generic state shared with the iteration
//! ring ([`ControlCore`]).
//!
//! ## Throttling
//!
//! The paper's Section 9 defines throttling as an edge from the end of
//! iteration `i` to the start of iteration `i + K`. With the recycled
//! iteration ring (see [`super::frame`]), that edge *is* the slot-reuse
//! condition: iteration `i + K` starts by claiming slot `i % K`, which its
//! previous occupant retires on completion. The control token therefore
//! gates on `IterRing::slot_is_free` instead of a join counter; the `active`
//! counter remains for the peak-live statistic (Theorem 11's measured
//! quantity) and for end-of-pipeline detection. The park/wake protocol is a
//! store→load (Dekker) pattern between the control token (store THROTTLED,
//! fence, re-read the slot) and the retiring iteration (store the retired
//! `seq`, fence, read the control status), so at least one side always
//! observes the other and the token is never lost.

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::latch::{Latch, SpinLatch};
use crate::metrics::{Metrics, PipeStats, StageTiming, STAGE_TIMING_SLOTS};
use crate::pool::{ControlTask, NodeTask, Task, WorkerThread};

use super::frame::IterRing;
use super::{PipelineIteration, Stage0};

/// Control-frame status values.
pub(crate) const CONTROL_RUNNABLE: u8 = 0;
pub(crate) const CONTROL_THROTTLED: u8 = 1;

/// The non-generic part of a `pipe_while`'s state, shared between the
/// control frame and the iteration ring.
pub(crate) struct ControlCore {
    /// The throttling limit `K` (also the ring capacity).
    pub(crate) throttle_limit: usize,
    /// Lazy-enabling optimization switch.
    pub(crate) lazy_enabling: bool,
    /// Dependency-folding optimization switch.
    pub(crate) dependency_folding: bool,
    /// Adaptive-throttling switch (see [`super::PipeOptions::adaptive_window`]).
    pub(crate) adaptive: bool,
    /// Floor of the adaptive window band (`1 ≤ floor ≤ K`).
    pub(crate) window_floor: usize,
    /// The *effective* throttle window in `[window_floor, K]`. Written only
    /// by the (single) control token's adaptation step, read by its gate:
    /// Relaxed suffices on both sides. Fixed at `K` when not adaptive.
    pub(crate) effective_window: AtomicUsize,
    /// Join counter: number of started-but-unfinished iterations. Kept for
    /// the peak statistic and completion detection; throttling itself is
    /// gated on slot reuse.
    pub(crate) active: AtomicUsize,
    /// High-water mark of `active` (Theorem 11's measured quantity).
    pub(crate) peak_active: AtomicUsize,
    /// Whether the control token is parked on an unsatisfied throttling edge.
    pub(crate) control_status: AtomicU8,
    /// Index of the next iteration the control token will start. Written
    /// only by the (single) control token; read by retiring iterations to
    /// decide whether their completion is the throttling edge the token is
    /// parked on.
    pub(crate) next_iteration: AtomicU64,
    /// Set once the producer has returned `Stage0::Stop` (or panicked).
    pub(crate) producer_done: AtomicBool,
    /// Cooperative-cancellation request flag (see [`Self::cancel`]).
    pub(crate) cancelled: AtomicBool,
    /// Set when the whole pipeline (producer + all iterations) has finished.
    completion: SpinLatch,
    /// Strong reference keeping the control frame alive while the pipeline
    /// runs. A parked control token exists *only* as the `Weak` in the
    /// ring, so without this anchor a detached pipeline whose last
    /// scheduled control task was consumed (parking returns `None` and
    /// drops the task's `Arc`) could never be revived — the retiring
    /// iteration's `Weak::upgrade` would fail and the token would be lost.
    /// (`pipe_while` was immune only because its stack frame holds a strong
    /// ref for the whole blocking call.) This is a deliberate
    /// `control → ring → control` cycle; `maybe_complete` breaks it exactly
    /// once, at completion.
    control_task: Mutex<Option<Arc<dyn ControlTask>>>,
    /// Callbacks fired exactly once, when the pipeline fully completes
    /// (detached pipelines use these for non-blocking join and service-side
    /// bookkeeping). Guarded by the completion protocol of
    /// [`Self::maybe_complete`]/[`Self::add_completion_hook`].
    completion_hooks: Mutex<Vec<Box<dyn FnOnce() + Send>>>,
    /// Runs after every completion hook has fired — the handle's done
    /// latch, so an external `wait()` cannot return before the hooks
    /// (metrics bumps, service bookkeeping, user callbacks) have run.
    completion_finalizer: Mutex<Option<Box<dyn FnOnce() + Send>>>,
    /// First panic raised by the producer or any node.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    // Per-pipeline statistics (see `PipeStats`).
    pub(crate) iterations: AtomicU64,
    pub(crate) nodes: AtomicU64,
    pub(crate) cross_suspensions: AtomicU64,
    pub(crate) throttle_suspensions: AtomicU64,
    pub(crate) cross_checks: AtomicU64,
    pub(crate) folded_checks: AtomicU64,
    pub(crate) tail_swaps: AtomicU64,
    pub(crate) frame_allocations: AtomicU64,
    pub(crate) frame_reuses: AtomicU64,
    pub(crate) adaptive_widenings: AtomicU64,
    pub(crate) adaptive_narrowings: AtomicU64,
    /// When the pipeline was spawned, the origin of the first-node latency.
    spawned_at: Instant,
    /// Nanoseconds from spawn to the first node execution (0 = not yet;
    /// real measurements are clamped up to 1). Written at most a handful of
    /// times under a benign race (concurrent first quanta store near-equal
    /// values), checked with one relaxed load per scheduling quantum.
    pub(crate) first_node_ns: AtomicU64,
    /// Sampled per-stage node-latency tallies (counts / summed ns / max
    /// ns), flushed from the per-quantum `NodeTally` like every other
    /// per-pipe counter. Slot layout as in [`StageTiming`].
    pub(crate) stage_samples: [AtomicU64; STAGE_TIMING_SLOTS],
    pub(crate) stage_total_ns: [AtomicU64; STAGE_TIMING_SLOTS],
    pub(crate) stage_max_ns: [AtomicU64; STAGE_TIMING_SLOTS],
    /// Per-job span buffer, when the submitter asked for tracing
    /// (see [`crate::PipeOptions::trace`]). Sampled node executions record
    /// stage spans into it; untraced pipelines pay one `Option` check on
    /// the (already cold) sampled path only.
    trace: Option<Arc<obs::TraceBuffer>>,
}

impl ControlCore {
    pub(crate) fn new(
        throttle_limit: usize,
        lazy_enabling: bool,
        dependency_folding: bool,
        adaptive_window: Option<usize>,
        trace: Option<Arc<obs::TraceBuffer>>,
    ) -> Arc<Self> {
        let window_floor = adaptive_window
            .unwrap_or(throttle_limit)
            .clamp(1, throttle_limit);
        let initial_window = match adaptive_window {
            // Start at the floor and let demand widen the window: memory
            // stays minimal for pipelines that never need the headroom.
            Some(_) => window_floor,
            None => throttle_limit,
        };
        Arc::new(ControlCore {
            throttle_limit,
            lazy_enabling,
            dependency_folding,
            adaptive: adaptive_window.is_some(),
            window_floor,
            effective_window: AtomicUsize::new(initial_window),
            active: AtomicUsize::new(0),
            peak_active: AtomicUsize::new(0),
            control_status: AtomicU8::new(CONTROL_RUNNABLE),
            next_iteration: AtomicU64::new(0),
            producer_done: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            completion: SpinLatch::new(),
            control_task: Mutex::new(None),
            completion_hooks: Mutex::new(Vec::new()),
            completion_finalizer: Mutex::new(None),
            panic: Mutex::new(None),
            iterations: AtomicU64::new(0),
            nodes: AtomicU64::new(0),
            cross_suspensions: AtomicU64::new(0),
            throttle_suspensions: AtomicU64::new(0),
            cross_checks: AtomicU64::new(0),
            folded_checks: AtomicU64::new(0),
            tail_swaps: AtomicU64::new(0),
            frame_allocations: AtomicU64::new(0),
            frame_reuses: AtomicU64::new(0),
            adaptive_widenings: AtomicU64::new(0),
            adaptive_narrowings: AtomicU64::new(0),
            spawned_at: Instant::now(),
            first_node_ns: AtomicU64::new(0),
            stage_samples: std::array::from_fn(|_| AtomicU64::new(0)),
            stage_total_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            stage_max_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            trace,
        })
    }

    /// The pipeline's span buffer, if the submitter attached one.
    #[inline]
    pub(crate) fn trace(&self) -> Option<&Arc<obs::TraceBuffer>> {
        self.trace.as_ref()
    }

    /// Records the spawn→first-node latency; called from the first
    /// scheduling quantum of the pipeline (`first_node_ns` still 0). The
    /// race between near-simultaneous first quanta is benign: both store
    /// essentially the same elapsed time.
    #[cold]
    pub(crate) fn note_first_node(&self) {
        let ns = self.spawned_at.elapsed().as_nanos().max(1) as u64;
        self.first_node_ns.store(ns, Ordering::Relaxed);
    }

    /// The latch set when the pipeline has fully completed.
    pub(crate) fn completion_latch(&self) -> &SpinLatch {
        &self.completion
    }

    /// Records a panic from the producer or a node (keeping only the first).
    pub(crate) fn record_panic(&self, payload: Box<dyn Any + Send>) {
        self.panic.lock().unwrap().get_or_insert(payload);
    }

    /// Takes the recorded panic, if any.
    pub(crate) fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().unwrap().take()
    }

    /// Raises the peak-active high-water mark to at least `current`.
    pub(crate) fn update_peak(&self, current: usize) {
        // In the steady state the peak is reached early and never raised
        // again, so check with a plain load before paying for the RMW; a
        // racing reader may transiently see a lower peak either way (the
        // counter is advisory until completion).
        if self.peak_active.load(Ordering::Relaxed) < current {
            self.peak_active.fetch_max(current, Ordering::Relaxed);
        }
    }

    /// Signals completion if the producer has stopped and no iteration is
    /// still active. (SeqCst: the `producer_done` store + `active` load on
    /// the control side and the `active` decrement + `producer_done` load
    /// on the completing-iteration side form a store→load pattern; at
    /// least one caller must observe the terminal state.)
    /// Anchors the control frame for the pipeline's lifetime (see the
    /// `control_task` field). Called once, right after construction.
    pub(crate) fn set_control_task(&self, task: Arc<dyn ControlTask>) {
        *self.control_task.lock().unwrap() = Some(task);
    }

    pub(crate) fn maybe_complete(&self) {
        if self.producer_done.load(Ordering::SeqCst) && self.active.load(Ordering::SeqCst) == 0 {
            self.completion.set();
            // Break the control → ring → control cycle now that nothing can
            // need to reschedule the control frame again.
            self.control_task.lock().unwrap().take();
            // Fire the completion hooks exactly once: the latch is set
            // *before* the hook list is drained, and `add_completion_hook`
            // re-checks the latch under the same mutex, so a hook registered
            // concurrently with completion either lands in the list we
            // drain here or runs immediately on the registering thread.
            let hooks = std::mem::take(&mut *self.completion_hooks.lock().unwrap());
            for hook in hooks {
                hook();
            }
            // The finalizer (the handle's done latch) runs strictly after
            // the hooks, so an external `wait()` observes them all.
            if let Some(finalizer) = self.completion_finalizer.lock().unwrap().take() {
                finalizer();
            }
        }
    }

    /// Registers a callback to run when the pipeline fully completes
    /// (producer stopped and every iteration drained). If the pipeline has
    /// already completed, the callback runs immediately on this thread.
    pub(crate) fn add_completion_hook(&self, hook: Box<dyn FnOnce() + Send>) {
        let mut hooks = self.completion_hooks.lock().unwrap();
        if self.completion.probe() {
            drop(hooks);
            hook();
        } else {
            hooks.push(hook);
        }
    }

    /// Registers the hook that runs *after* every completion hook — the
    /// detached handle's done latch. Called once, before the control frame
    /// is injected (so it cannot race completion).
    pub(crate) fn set_completion_finalizer(&self, hook: Box<dyn FnOnce() + Send>) {
        let prev = self.completion_finalizer.lock().unwrap().replace(hook);
        debug_assert!(prev.is_none(), "completion finalizer set twice");
    }

    /// Requests cooperative cancellation: the control frame stops producing
    /// new iterations at its next step (i.e. within one iteration frame) and
    /// the pipeline drains its in-flight iterations cleanly. Returns true if
    /// this call was the first cancellation request.
    pub(crate) fn cancel(&self) -> bool {
        !self.cancelled.swap(true, Ordering::AcqRel)
    }

    /// True if cancellation has been requested.
    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Collects the pipeline statistics.
    pub(crate) fn stats(&self) -> PipeStats {
        PipeStats {
            iterations: self.iterations.load(Ordering::Relaxed),
            nodes: self.nodes.load(Ordering::Relaxed),
            peak_active_iterations: self.peak_active.load(Ordering::Relaxed) as u64,
            cross_suspensions: self.cross_suspensions.load(Ordering::Relaxed),
            throttle_suspensions: self.throttle_suspensions.load(Ordering::Relaxed),
            cross_checks: self.cross_checks.load(Ordering::Relaxed),
            folded_checks: self.folded_checks.load(Ordering::Relaxed),
            tail_swaps: self.tail_swaps.load(Ordering::Relaxed),
            frame_allocations: self.frame_allocations.load(Ordering::Relaxed),
            frame_reuses: self.frame_reuses.load(Ordering::Relaxed),
            adaptive_widenings: self.adaptive_widenings.load(Ordering::Relaxed),
            adaptive_narrowings: self.adaptive_narrowings.load(Ordering::Relaxed),
            effective_window: self.effective_window.load(Ordering::Relaxed) as u64,
            time_to_first_node_ns: self.first_node_ns.load(Ordering::Relaxed),
            stage_timing: std::array::from_fn(|i| StageTiming {
                samples: self.stage_samples[i].load(Ordering::Relaxed),
                total_ns: self.stage_total_ns[i].load(Ordering::Relaxed),
                max_ns: self.stage_max_ns[i].load(Ordering::Relaxed),
            }),
        }
    }
}

/// How many iterations the adaptive controller lets pass between window
/// adjustments. Short enough to track phase changes in a pipeline's load,
/// long enough that the sampled stall/occupancy deltas mean something.
const ADAPT_PERIOD: u64 = 16;

/// Sampling state of the adaptive-throttling controller. Owned by the
/// producer (accessed under the producer mutex, once per iteration — never
/// on the per-node hot path).
#[derive(Default)]
struct AdaptState {
    /// Sum of ring occupancy (`active`) sampled at each iteration start.
    occupancy_accum: u64,
    /// `throttle_suspensions` at the last adjustment.
    last_throttle_stalls: u64,
    /// `cross_suspensions` at the last adjustment.
    last_cross_stalls: u64,
}

/// The producer-side state of a `pipe_while` (everything that is generic
/// over the user's closure type).
struct ProducerState<F> {
    /// The Stage-0 closure; dropped as soon as the loop stops.
    producer: Option<F>,
    /// Index of the next iteration to start (mirrored in
    /// `ControlCore::next_iteration` for lock-free readers).
    next_index: u64,
    /// Adaptive-throttling samples (unused when the pipeline is not
    /// adaptive).
    adapt: AdaptState,
}

/// The control frame, schedulable as [`Task::Control`].
pub(crate) struct PipeShared<F, I>
where
    I: PipelineIteration,
{
    core: Arc<ControlCore>,
    ring: Arc<IterRing<I>>,
    producer: Mutex<ProducerState<F>>,
}

impl<F, I> PipeShared<F, I>
where
    F: FnMut(u64) -> Stage0<I> + Send + 'static,
    I: PipelineIteration,
{
    pub(crate) fn new(core: Arc<ControlCore>, producer: F) -> Arc<Self> {
        let ring = IterRing::new(Arc::clone(&core));
        let shared = Arc::new(PipeShared {
            core,
            ring,
            producer: Mutex::new(ProducerState {
                producer: Some(producer),
                next_index: 0,
                adapt: AdaptState::default(),
            }),
        });
        shared
            .ring
            .set_control(Arc::downgrade(&(shared.clone() as Arc<dyn ControlTask>)));
        // Keep the control frame alive until the pipeline completes, no
        // matter how the caller holds (or drops) its handles.
        shared
            .core
            .set_control_task(shared.clone() as Arc<dyn ControlTask>);
        shared
    }

    /// Handle on the shared, non-generic core.
    pub(crate) fn core_handle(&self) -> Arc<ControlCore> {
        Arc::clone(&self.core)
    }

    /// One adaptive-throttling bookkeeping step, run as iteration `index`
    /// starts. Single-writer: only the control token calls this, under the
    /// producer mutex, so plain arithmetic on `AdaptState` and Relaxed
    /// accesses to the window are sound. Policy (MI/AD, TCP-flavoured):
    ///
    /// * **widen ×2** when the control token stalled on the throttle gate
    ///   during the last period while consumers kept up (few cross-edge
    ///   suspensions): the window, not the pipeline, was the bottleneck;
    /// * **narrow −1** when the gate never stalled and the ring ran less
    ///   than half-occupied on average: the window is oversized and the
    ///   unused slots are dead memory.
    fn adapt_window(&self, adapt: &mut AdaptState, index: u64) {
        let core = &self.core;
        adapt.occupancy_accum += core.active.load(Ordering::Relaxed) as u64;
        if index == 0 || !index.is_multiple_of(ADAPT_PERIOD) {
            return;
        }
        let throttle_stalls = core.throttle_suspensions.load(Ordering::Relaxed);
        let cross_stalls = core.cross_suspensions.load(Ordering::Relaxed);
        let stalls = throttle_stalls - adapt.last_throttle_stalls;
        let cross = cross_stalls - adapt.last_cross_stalls;
        adapt.last_throttle_stalls = throttle_stalls;
        adapt.last_cross_stalls = cross_stalls;
        let mean_occupancy = adapt.occupancy_accum / ADAPT_PERIOD;
        adapt.occupancy_accum = 0;
        let window = core.effective_window.load(Ordering::Relaxed);
        if stalls > 0 && cross <= ADAPT_PERIOD / 4 && window < core.throttle_limit {
            core.effective_window
                .store((window * 2).min(core.throttle_limit), Ordering::Relaxed);
            Metrics::bump(&core.adaptive_widenings);
        } else if stalls == 0 && mean_occupancy * 2 < window as u64 && window > core.window_floor {
            core.effective_window.store(window - 1, Ordering::Relaxed);
            Metrics::bump(&core.adaptive_narrowings);
        }
    }

    /// Finishes the loop: drops the producer, marks the producer done and
    /// completes the pipeline if nothing is active.
    fn finish_loop(&self, prod: &mut ProducerState<F>) {
        prod.producer = None;
        self.core.producer_done.store(true, Ordering::SeqCst);
        self.core.maybe_complete();
    }
}

impl<F, I> ControlTask for PipeShared<F, I>
where
    F: FnMut(u64) -> Stage0<I> + Send + 'static,
    I: PipelineIteration,
{
    fn control_step(self: Arc<Self>, worker: &WorkerThread) -> Option<Task> {
        let core = &self.core;

        // Cooperative cancellation: checked once per control step, i.e. a
        // cancel request is observed before the next iteration would start
        // (at most one iteration-frame of delay). The loop simply stops
        // producing; in-flight iterations drain through the normal
        // completion path, which keeps every invariant of the ring.
        if core.is_cancelled() && !core.producer_done.load(Ordering::SeqCst) {
            let mut prod = self.producer.lock().unwrap();
            if prod.producer.is_some() {
                self.finish_loop(&mut prod);
            }
            return None;
        }

        // Throttling gate (paper, Section 9): iteration `i` may not start
        // before iteration `i - K` has completed — which is exactly the
        // condition under which ring slot `i % K` is free. With adaptive
        // throttling the gate is additionally `active < effective_window`,
        // i.e. the number of occupied ring slots stays below the tuned
        // window even though `K` slots exist. If the gate is closed, the
        // control token parks in the THROTTLED state; a retiring occupant
        // re-creates it. The store/fence/re-check dance closes the race in
        // which an iteration completes concurrently with us (Dekker; the
        // retiring side fences between its `seq` store — and, for the
        // adaptive part, its SeqCst `active` decrement — and its status
        // read).
        let gate_open = |next: u64| {
            self.ring.slot_is_free(next)
                && (!core.adaptive
                    || core.active.load(Ordering::SeqCst)
                        < core.effective_window.load(Ordering::Relaxed))
        };
        loop {
            // Only the control token writes `next_iteration`, so the
            // Relaxed read observes our own last store.
            let next = core.next_iteration.load(Ordering::Relaxed);
            if gate_open(next) {
                break;
            }
            Metrics::bump(&core.throttle_suspensions);
            Metrics::bump(&worker.metrics().throttle_suspensions);
            worker.recorder().push(
                obs::EventKind::Throttle,
                core.effective_window.load(Ordering::Relaxed) as u64,
            );
            // Release: a retiring iteration that Acquire-reads THROTTLED
            // also sees our `next_iteration`, which it needs to decide
            // whether its completion is the edge we are parked on.
            core.control_status
                .store(CONTROL_THROTTLED, Ordering::Release);
            fence(Ordering::SeqCst);
            if gate_open(next)
                && core
                    .control_status
                    .compare_exchange(
                        CONTROL_THROTTLED,
                        CONTROL_RUNNABLE,
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    )
                    .is_ok()
            {
                // Re-acquired the token ourselves; re-evaluate the gate.
                continue;
            }
            // Token parked (or handed to the completing iteration, which
            // schedules a fresh control task).
            return None;
        }

        // Run Stage 0 of the next iteration (the loop test + serial stage-0
        // body). The mutex serializes Stage 0 across the (single) control
        // token and makes the producer's `FnMut` state safe to mutate; it is
        // intentionally *not* on the per-node hot path — it is taken once
        // per iteration, never per node.
        let mut prod = self.producer.lock().unwrap();
        let index = prod.next_index;
        let producer = prod.producer.as_mut()?;
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| producer(index)));

        match outcome {
            Err(payload) => {
                core.record_panic(payload);
                self.finish_loop(&mut prod);
                None
            }
            Ok(Stage0::Stop) => {
                self.finish_loop(&mut prod);
                None
            }
            Ok(Stage0::Proceed {
                state,
                first_stage,
                wait,
            }) => {
                assert!(
                    first_stage >= 1,
                    "the first node after Stage 0 must have stage number >= 1"
                );
                if core.adaptive {
                    self.adapt_window(&mut prod.adapt, index);
                }
                prod.next_index += 1;
                // Release: pairs with the Acquire status read of a retiring
                // iteration (see `complete`), making the new awaited index
                // visible to whoever might wake us.
                core.next_iteration
                    .store(prod.next_index, Ordering::Release);
                // Move the iteration into its (free, gate-checked) slot;
                // this recycles the frame shell — no allocation.
                self.ring.install(index, state, first_stage, wait);
                drop(prod);

                let k = self.ring.capacity() as u64;
                if index >= k {
                    // Single-writer (there is exactly one control token per
                    // pipeline, and it runs control steps sequentially), so
                    // the running total can be published with a plain store
                    // instead of a read-modify-write.
                    core.frame_reuses.store(index + 1 - k, Ordering::Relaxed);
                    Metrics::bump(&worker.metrics().frame_reuses);
                }

                let now_active = core.active.fetch_add(1, Ordering::SeqCst) + 1;
                core.update_peak(now_active);
                Metrics::bump(&worker.metrics().iterations_started);

                // PIPER's rule for a spawn: push the continuation (the next
                // control vertex) and make the child (the new iteration's
                // first node) the assigned vertex.
                let child = Task::Node {
                    ring: Arc::clone(&self.ring) as Arc<dyn NodeTask>,
                    slot: (index % k) as u32,
                    epoch: index,
                };
                worker.push(Task::Control(self));
                Some(child)
            }
        }
    }
}
