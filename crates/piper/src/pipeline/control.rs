//! The control frame of a `pipe_while` loop.
//!
//! In the paper's computation-dag model (Section 4, Figure 5), the control
//! contour of a `pipe_while` runs the loop test and Stage 0 of each
//! iteration serially, spawns the rest of each iteration, and carries the
//! *join counter* that implements throttling. This module reifies that
//! contour as a schedulable task ([`PipeShared`]) plus the non-generic state
//! shared with iteration frames ([`ControlCore`]).

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::latch::{Latch, SpinLatch};
use crate::metrics::{Metrics, PipeStats};
use crate::pool::{ControlTask, Task, WorkerThread};

use super::frame::IterFrame;
use super::{PipelineIteration, Stage0};

/// Control-frame status values.
pub(crate) const CONTROL_RUNNABLE: u8 = 0;
pub(crate) const CONTROL_THROTTLED: u8 = 1;

/// The non-generic part of a `pipe_while`'s state, shared between the
/// control frame and every iteration frame.
pub(crate) struct ControlCore {
    /// The throttling limit `K`.
    pub(crate) throttle_limit: usize,
    /// Lazy-enabling optimization switch.
    pub(crate) lazy_enabling: bool,
    /// Dependency-folding optimization switch.
    pub(crate) dependency_folding: bool,
    /// Join counter: number of started-but-unfinished iterations.
    pub(crate) active: AtomicUsize,
    /// High-water mark of `active` (Theorem 11's measured quantity).
    pub(crate) peak_active: AtomicUsize,
    /// Whether the control token is parked on an unsatisfied throttling edge.
    pub(crate) control_status: AtomicU8,
    /// Set once the producer has returned `Stage0::Stop` (or panicked).
    pub(crate) producer_done: AtomicBool,
    /// Set when the whole pipeline (producer + all iterations) has finished.
    completion: SpinLatch,
    /// First panic raised by the producer or any node.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    // Per-pipeline statistics (see `PipeStats`).
    pub(crate) iterations: AtomicU64,
    pub(crate) nodes: AtomicU64,
    pub(crate) cross_suspensions: AtomicU64,
    pub(crate) throttle_suspensions: AtomicU64,
    pub(crate) cross_checks: AtomicU64,
    pub(crate) folded_checks: AtomicU64,
    pub(crate) tail_swaps: AtomicU64,
}

impl ControlCore {
    pub(crate) fn new(
        throttle_limit: usize,
        lazy_enabling: bool,
        dependency_folding: bool,
    ) -> Arc<Self> {
        Arc::new(ControlCore {
            throttle_limit,
            lazy_enabling,
            dependency_folding,
            active: AtomicUsize::new(0),
            peak_active: AtomicUsize::new(0),
            control_status: AtomicU8::new(CONTROL_RUNNABLE),
            producer_done: AtomicBool::new(false),
            completion: SpinLatch::new(),
            panic: Mutex::new(None),
            iterations: AtomicU64::new(0),
            nodes: AtomicU64::new(0),
            cross_suspensions: AtomicU64::new(0),
            throttle_suspensions: AtomicU64::new(0),
            cross_checks: AtomicU64::new(0),
            folded_checks: AtomicU64::new(0),
            tail_swaps: AtomicU64::new(0),
        })
    }

    /// The latch set when the pipeline has fully completed.
    pub(crate) fn completion_latch(&self) -> &SpinLatch {
        &self.completion
    }

    /// Records a panic from the producer or a node (keeping only the first).
    pub(crate) fn record_panic(&self, payload: Box<dyn Any + Send>) {
        self.panic.lock().unwrap().get_or_insert(payload);
    }

    /// Takes the recorded panic, if any.
    pub(crate) fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().unwrap().take()
    }

    /// Raises the peak-active high-water mark to at least `current`.
    pub(crate) fn update_peak(&self, current: usize) {
        self.peak_active.fetch_max(current, Ordering::Relaxed);
    }

    /// Signals completion if the producer has stopped and no iteration is
    /// still active.
    pub(crate) fn maybe_complete(&self) {
        if self.producer_done.load(Ordering::SeqCst) && self.active.load(Ordering::SeqCst) == 0 {
            self.completion.set();
        }
    }

    /// Collects the pipeline statistics.
    pub(crate) fn stats(&self) -> PipeStats {
        PipeStats {
            iterations: self.iterations.load(Ordering::Relaxed),
            nodes: self.nodes.load(Ordering::Relaxed),
            peak_active_iterations: self.peak_active.load(Ordering::Relaxed) as u64,
            cross_suspensions: self.cross_suspensions.load(Ordering::Relaxed),
            throttle_suspensions: self.throttle_suspensions.load(Ordering::Relaxed),
            cross_checks: self.cross_checks.load(Ordering::Relaxed),
            folded_checks: self.folded_checks.load(Ordering::Relaxed),
            tail_swaps: self.tail_swaps.load(Ordering::Relaxed),
        }
    }
}

/// The producer-side state of a `pipe_while` (everything that is generic
/// over the user's closure and iteration types).
struct ProducerState<F, I>
where
    I: PipelineIteration,
{
    /// The Stage-0 closure; dropped as soon as the loop stops.
    producer: Option<F>,
    /// Index of the next iteration to start.
    next_index: u64,
    /// The most recently started iteration (the left neighbour of the next
    /// one), used to wire cross edges.
    last_frame: Option<Arc<IterFrame<I>>>,
}

/// The control frame, schedulable as [`Task::Control`].
pub(crate) struct PipeShared<F, I>
where
    I: PipelineIteration,
{
    core: Arc<ControlCore>,
    producer: Mutex<ProducerState<F, I>>,
}

impl<F, I> PipeShared<F, I>
where
    F: FnMut(u64) -> Stage0<I> + Send + 'static,
    I: PipelineIteration,
{
    pub(crate) fn new(core: Arc<ControlCore>, producer: F) -> Arc<Self> {
        Arc::new(PipeShared {
            core,
            producer: Mutex::new(ProducerState {
                producer: Some(producer),
                next_index: 0,
                last_frame: None,
            }),
        })
    }

    /// Handle on the shared, non-generic core.
    pub(crate) fn core_handle(&self) -> Arc<ControlCore> {
        Arc::clone(&self.core)
    }

    /// Finishes the loop: drops the producer and the last-frame link, marks
    /// the producer done and completes the pipeline if nothing is active.
    fn finish_loop(&self, prod: &mut ProducerState<F, I>) {
        prod.producer = None;
        prod.last_frame = None;
        self.core.producer_done.store(true, Ordering::SeqCst);
        self.core.maybe_complete();
    }
}

impl<F, I> ControlTask for PipeShared<F, I>
where
    F: FnMut(u64) -> Stage0<I> + Send + 'static,
    I: PipelineIteration,
{
    fn control_step(self: Arc<Self>, worker: &WorkerThread) -> Option<Task> {
        let core = &self.core;

        // Throttling gate (paper, Section 9 "join counter"): iteration
        // `i + K` may not start before iteration `i` has completed, i.e. at
        // most K iterations are active. If the limit is reached, the control
        // token parks in the THROTTLED state; an iteration completion
        // re-creates it. The store/re-check/CAS dance closes the race in
        // which the last active iteration completes concurrently with us.
        loop {
            if core.active.load(Ordering::SeqCst) < core.throttle_limit {
                break;
            }
            Metrics::bump(&core.throttle_suspensions);
            Metrics::bump(&worker.metrics().throttle_suspensions);
            core.control_status
                .store(CONTROL_THROTTLED, Ordering::SeqCst);
            if core.active.load(Ordering::SeqCst) < core.throttle_limit
                && core
                    .control_status
                    .compare_exchange(
                        CONTROL_THROTTLED,
                        CONTROL_RUNNABLE,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_ok()
            {
                // Re-acquired the token ourselves; re-evaluate the gate.
                continue;
            }
            // Token parked (or handed to the completing iteration).
            return None;
        }

        // Run Stage 0 of the next iteration (the loop test + serial stage-0
        // body). The mutex serializes Stage 0 across the (single) control
        // token and makes the producer's `FnMut` state safe to mutate.
        let mut prod = self.producer.lock().unwrap();
        let index = prod.next_index;
        let producer = prod.producer.as_mut()?;
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| producer(index)));

        match outcome {
            Err(payload) => {
                core.record_panic(payload);
                self.finish_loop(&mut prod);
                None
            }
            Ok(Stage0::Stop) => {
                self.finish_loop(&mut prod);
                None
            }
            Ok(Stage0::Proceed {
                state,
                first_stage,
                wait,
            }) => {
                assert!(
                    first_stage >= 1,
                    "the first node after Stage 0 must have stage number >= 1"
                );
                prod.next_index += 1;
                let prev = prod.last_frame.take();
                let frame = Arc::new(IterFrame::new(
                    index,
                    Arc::clone(core),
                    Arc::downgrade(&(self.clone() as Arc<dyn ControlTask>)),
                    state,
                    first_stage,
                    wait,
                    prev.clone(),
                ));
                if let Some(p) = &prev {
                    p.set_next(Arc::clone(&frame));
                }
                prod.last_frame = Some(Arc::clone(&frame));
                drop(prod);

                let now_active = core.active.fetch_add(1, Ordering::SeqCst) + 1;
                core.update_peak(now_active);
                Metrics::bump(&worker.metrics().iterations_started);

                // PIPER's rule for a spawn: push the continuation (the next
                // control vertex) and make the child (the new iteration's
                // first node) the assigned vertex.
                worker.push(Task::Control(self));
                Some(Task::Node(frame))
            }
        }
    }
}
