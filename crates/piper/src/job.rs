//! Fork-join job representations.
//!
//! A *job* is a unit of fork-join work that can sit in a worker deque and be
//! executed exactly once, either by its owner (popped) or by a thief
//! (stolen). Two flavours exist:
//!
//! * [`StackJob`] — lives on the stack of the forking function (`join`),
//!   which blocks (while helping) until the job's latch is set, so the
//!   borrow is valid for the job's whole lifetime.
//! * [`HeapJob`] — boxed closure used by `Scope::spawn`, whose lifetime is
//!   guaranteed by the scope's completion latch.
//!
//! Both catch panics during execution and allow the panic to be resumed on
//! the thread that logically owns the result, mirroring `rayon`'s behaviour.

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};

use crate::latch::{Latch, SpinLatch};

/// A type-erased reference to a job.
///
/// The pointer identifies the job; `execute_fn` knows how to run it. The
/// creator of a `JobRef` guarantees the pointed-to job outlives its
/// execution (via a latch for stack jobs, or ownership transfer for heap
/// jobs).
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    pointer: *const (),
    execute_fn: unsafe fn(*const ()),
}

unsafe impl Send for JobRef {}
unsafe impl Sync for JobRef {}

impl JobRef {
    /// Creates a job reference from a pointer to a job implementation.
    ///
    /// # Safety
    /// The caller must guarantee `data` remains valid until the job has been
    /// executed exactly once.
    pub(crate) unsafe fn new<T>(data: *const T, execute_fn: unsafe fn(*const ())) -> JobRef {
        JobRef {
            pointer: data as *const (),
            execute_fn,
        }
    }

    /// Executes the job. Must be called exactly once.
    pub(crate) unsafe fn execute(self) {
        (self.execute_fn)(self.pointer)
    }

    /// Identity used by `join` to recognise its own job when popping.
    pub(crate) fn id(&self) -> *const () {
        self.pointer
    }
}

/// The payload captured by a panicking job.
pub(crate) type PanicPayload = Box<dyn Any + Send>;

/// A job allocated on the forking function's stack.
pub(crate) struct StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    /// Set once the job has run (successfully or by panicking).
    pub(crate) latch: SpinLatch,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
}

pub(crate) enum JobResult<R> {
    NotRun,
    Ok(R),
    Panic(PanicPayload),
}

unsafe impl<F, R> Sync for StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F) -> Self {
        StackJob {
            latch: SpinLatch::new(),
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::NotRun),
        }
    }

    /// Produces a type-erased reference to this job.
    ///
    /// # Safety
    /// The caller must keep `self` alive until the latch is set.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef::new(self as *const Self as *const (), Self::execute_erased)
    }

    unsafe fn execute_erased(this: *const ()) {
        let this = &*(this as *const Self);
        let func = (*this.func.get()).take().expect("stack job executed twice");
        let result = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(value) => JobResult::Ok(value),
            Err(payload) => JobResult::Panic(payload),
        };
        *this.result.get() = result;
        this.latch.set();
    }

    /// Runs the job inline on the current thread (used when `join` pops its
    /// own deferred job back off the deque).
    pub(crate) fn run_inline(&self) {
        unsafe { Self::execute_erased(self as *const Self as *const ()) }
    }

    /// Retrieves the result after the latch has been set, resuming a panic
    /// if the job panicked.
    pub(crate) fn take_result(&self) -> R {
        debug_assert!(self.latch.probe(), "result taken before completion");
        let result = unsafe { std::ptr::replace(self.result.get(), JobResult::NotRun) };
        match result {
            JobResult::Ok(value) => value,
            JobResult::Panic(payload) => panic::resume_unwind(payload),
            JobResult::NotRun => unreachable!("latch set but job result missing"),
        }
    }
}

/// A heap-allocated fire-and-forget job, used by scopes.
pub(crate) struct HeapJob {
    func: Box<dyn FnOnce() + Send>,
}

impl HeapJob {
    pub(crate) fn new(func: Box<dyn FnOnce() + Send>) -> Box<Self> {
        Box::new(HeapJob { func })
    }

    /// Converts the boxed job into a `JobRef`, transferring ownership to the
    /// scheduler (the job frees itself after running).
    pub(crate) fn into_job_ref(self: Box<Self>) -> JobRef {
        let ptr = Box::into_raw(self);
        unsafe { JobRef::new(ptr as *const (), Self::execute_erased) }
    }

    unsafe fn execute_erased(this: *const ()) {
        let this = Box::from_raw(this as *mut Self);
        (this.func)();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_job_runs_and_returns_result() {
        let job = StackJob::new(|| 21 * 2);
        job.run_inline();
        assert!(job.latch.probe());
        assert_eq!(job.take_result(), 42);
    }

    #[test]
    fn stack_job_captures_panic() {
        let job = StackJob::new(|| -> i32 { panic!("boom") });
        job.run_inline();
        assert!(job.latch.probe());
        let caught = panic::catch_unwind(AssertUnwindSafe(|| job.take_result()));
        assert!(caught.is_err());
    }

    #[test]
    fn heap_job_executes_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let job = HeapJob::new(Box::new(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        }));
        let job_ref = job.into_job_ref();
        unsafe { job_ref.execute() };
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn job_ref_identity_is_stable() {
        let job = StackJob::new(|| 0);
        let r1 = unsafe { job.as_job_ref() };
        let r2 = unsafe { job.as_job_ref() };
        assert_eq!(r1.id(), r2.id());
        job.run_inline();
        let _ = job.take_result();
    }
}
