//! Scheduler instrumentation.
//!
//! The paper's evaluation relies on two kinds of measurements beyond wall
//! clock: Cilkview-style work/span numbers (provided by the `pipedag` crate)
//! and runtime counters — steal attempts (for the Theorem 10 time bound),
//! live iteration frames (for the Theorem 11 space bound), and cross-edge
//! check counts (for the Figure 9 dependency-folding study). All counters
//! here are updated with relaxed atomics so that instrumentation does not
//! perturb the scheduling fast paths.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of per-stage timing slots kept by the sampled stage profiler.
/// Slot `s` holds stage `s` for `s < STAGE_TIMING_SLOTS - 1`; the last slot
/// aggregates every deeper stage. (Stage 0 is the serial producer and runs
/// on the control path, so slot 0 stays empty.)
pub const STAGE_TIMING_SLOTS: usize = 8;

/// Aggregate of the sampled node timings for one stage slot of one
/// pipeline (see [`PipeStats::stage_timing`]). Samples are 1-in-N node
/// executions (see [`crate::ThreadPool::stage_timing`] for the pool-wide
/// distribution histograms), so `total_ns / samples` estimates the mean
/// node latency of the stage, not its total work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTiming {
    /// Number of sampled node executions attributed to this stage slot.
    pub samples: u64,
    /// Summed wall-clock nanoseconds of the sampled executions.
    pub total_ns: u64,
    /// Largest sampled execution, in nanoseconds.
    pub max_ns: u64,
}

impl StageTiming {
    /// Mean sampled node latency in nanoseconds (0 when no samples).
    pub fn mean_ns(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.samples as f64
        }
    }
}

/// Monotonic counters kept by a [`crate::ThreadPool`].
#[derive(Debug, Default)]
pub struct Metrics {
    /// Steal attempts (successful or not) by all workers.
    pub steal_attempts: AtomicU64,
    /// Successful steals.
    pub steals: AtomicU64,
    /// Fork-join jobs executed.
    pub jobs_executed: AtomicU64,
    /// Pipeline nodes executed (one per `run_node` call).
    pub nodes_executed: AtomicU64,
    /// Pipeline iterations started.
    pub iterations_started: AtomicU64,
    /// Pipeline iterations completed.
    pub iterations_completed: AtomicU64,
    /// Times an iteration suspended on an unsatisfied cross edge.
    pub cross_suspensions: AtomicU64,
    /// Times the control frame suspended because the throttling limit was
    /// reached.
    pub throttle_suspensions: AtomicU64,
    /// Cross-edge checks that actually read the left neighbour's stage
    /// counter.
    pub cross_checks: AtomicU64,
    /// Cross-edge checks satisfied from the dependency-folding cache without
    /// reading the left neighbour's stage counter.
    pub folded_checks: AtomicU64,
    /// PIPER tail-swap operations performed.
    pub tail_swaps: AtomicU64,
    /// Iteration-frame ring slots allocated (at most `K` per `pipe_while`;
    /// the steady state performs zero per-iteration allocations).
    pub frame_allocations: AtomicU64,
    /// Iterations served by recycling an already-allocated ring slot.
    pub frame_reuses: AtomicU64,
    /// Pipelines launched on this pool (`pipe_while` + `spawn_pipe`).
    pub pipes_started: AtomicU64,
    /// Pipelines that ran to full completion (including cancelled pipelines
    /// once they finish draining).
    pub pipes_completed: AtomicU64,
    /// Pipelines whose handle requested cooperative cancellation.
    pub pipes_cancelled: AtomicU64,
    /// Pool-wide distribution of sampled per-node latencies, one log-linear
    /// histogram per stage slot (see [`STAGE_TIMING_SLOTS`]). Fed by the
    /// 1-in-N stage sampler on the node hot path; snapshot through
    /// [`crate::ThreadPool::stage_timing`].
    pub stage_timing: [obs::Histogram; STAGE_TIMING_SLOTS],
}

impl Metrics {
    /// Creates a zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time snapshot of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            steal_attempts: self.steal_attempts.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            jobs_executed: self.jobs_executed.load(Ordering::Relaxed),
            nodes_executed: self.nodes_executed.load(Ordering::Relaxed),
            iterations_started: self.iterations_started.load(Ordering::Relaxed),
            iterations_completed: self.iterations_completed.load(Ordering::Relaxed),
            cross_suspensions: self.cross_suspensions.load(Ordering::Relaxed),
            throttle_suspensions: self.throttle_suspensions.load(Ordering::Relaxed),
            cross_checks: self.cross_checks.load(Ordering::Relaxed),
            folded_checks: self.folded_checks.load(Ordering::Relaxed),
            tail_swaps: self.tail_swaps.load(Ordering::Relaxed),
            frame_allocations: self.frame_allocations.load(Ordering::Relaxed),
            frame_reuses: self.frame_reuses.load(Ordering::Relaxed),
            pipes_started: self.pipes_started.load(Ordering::Relaxed),
            pipes_completed: self.pipes_completed.load(Ordering::Relaxed),
            pipes_cancelled: self.pipes_cancelled.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the pool counters; two snapshots can be
/// subtracted to measure a region of execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Steal attempts (successful or not) by all workers.
    pub steal_attempts: u64,
    /// Successful steals.
    pub steals: u64,
    /// Fork-join jobs executed.
    pub jobs_executed: u64,
    /// Pipeline nodes executed.
    pub nodes_executed: u64,
    /// Pipeline iterations started.
    pub iterations_started: u64,
    /// Pipeline iterations completed.
    pub iterations_completed: u64,
    /// Suspensions on unsatisfied cross edges.
    pub cross_suspensions: u64,
    /// Control-frame suspensions due to throttling.
    pub throttle_suspensions: u64,
    /// Cross-edge checks that read the neighbour's stage counter.
    pub cross_checks: u64,
    /// Cross-edge checks answered by the dependency-folding cache.
    pub folded_checks: u64,
    /// PIPER tail-swap operations.
    pub tail_swaps: u64,
    /// Iteration-frame ring slots allocated.
    pub frame_allocations: u64,
    /// Iterations served by recycling a ring slot.
    pub frame_reuses: u64,
    /// Pipelines launched (`pipe_while` + `spawn_pipe`).
    pub pipes_started: u64,
    /// Pipelines that ran to full completion.
    pub pipes_completed: u64,
    /// Pipelines with a cooperative-cancellation request.
    pub pipes_cancelled: u64,
}

impl MetricsSnapshot {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            steal_attempts: self.steal_attempts.saturating_sub(earlier.steal_attempts),
            steals: self.steals.saturating_sub(earlier.steals),
            jobs_executed: self.jobs_executed.saturating_sub(earlier.jobs_executed),
            nodes_executed: self.nodes_executed.saturating_sub(earlier.nodes_executed),
            iterations_started: self
                .iterations_started
                .saturating_sub(earlier.iterations_started),
            iterations_completed: self
                .iterations_completed
                .saturating_sub(earlier.iterations_completed),
            cross_suspensions: self
                .cross_suspensions
                .saturating_sub(earlier.cross_suspensions),
            throttle_suspensions: self
                .throttle_suspensions
                .saturating_sub(earlier.throttle_suspensions),
            cross_checks: self.cross_checks.saturating_sub(earlier.cross_checks),
            folded_checks: self.folded_checks.saturating_sub(earlier.folded_checks),
            tail_swaps: self.tail_swaps.saturating_sub(earlier.tail_swaps),
            frame_allocations: self
                .frame_allocations
                .saturating_sub(earlier.frame_allocations),
            frame_reuses: self.frame_reuses.saturating_sub(earlier.frame_reuses),
            pipes_started: self.pipes_started.saturating_sub(earlier.pipes_started),
            pipes_completed: self.pipes_completed.saturating_sub(earlier.pipes_completed),
            pipes_cancelled: self.pipes_cancelled.saturating_sub(earlier.pipes_cancelled),
        }
    }
}

/// Statistics for one `pipe_while` invocation, returned by
/// [`crate::pipeline::pipe_while`]. These are the quantities bounded by the
/// paper's theorems: the number of iterations simultaneously alive is what
/// Theorem 11's `K`-dependent term controls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct PipeStats {
    /// Total number of iterations executed.
    pub iterations: u64,
    /// Total number of pipeline nodes executed across all iterations.
    pub nodes: u64,
    /// Maximum number of simultaneously live (started but not completed)
    /// iterations observed — bounded by the throttling limit `K`.
    pub peak_active_iterations: u64,
    /// Iterations that suspended at least once on a cross edge.
    pub cross_suspensions: u64,
    /// Times the control frame suspended due to throttling.
    pub throttle_suspensions: u64,
    /// Cross-edge checks that read the neighbour's stage counter.
    pub cross_checks: u64,
    /// Cross-edge checks answered from the dependency-folding cache.
    pub folded_checks: u64,
    /// Tail-swap operations performed while finishing iterations.
    pub tail_swaps: u64,
    /// Iteration-frame ring slots allocated by this pipeline — bounded by
    /// the throttling limit `K`, independent of the iteration count (the
    /// steady state recycles frames instead of allocating).
    pub frame_allocations: u64,
    /// Iterations that recycled an already-allocated ring slot (every
    /// iteration with index ≥ K).
    pub frame_reuses: u64,
    /// Adaptive throttling: times the effective window was widened.
    pub adaptive_widenings: u64,
    /// Adaptive throttling: times the effective window was narrowed.
    pub adaptive_narrowings: u64,
    /// The effective throttle window when this snapshot was taken (equals
    /// the fixed `K` for non-adaptive pipelines; final value once the
    /// pipeline has completed).
    pub effective_window: u64,
    /// Nanoseconds from pipeline spawn to the first node of the first
    /// iteration starting to execute (0 if no node ever ran) — the
    /// scheduling-latency component of a served job's life.
    pub time_to_first_node_ns: u64,
    /// Sampled per-stage node timings (1-in-N node executions; see
    /// [`StageTiming`]). Slot `s` is stage `s`, with every stage
    /// `>= STAGE_TIMING_SLOTS - 1` aggregated into the last slot.
    pub stage_timing: [StageTiming; STAGE_TIMING_SLOTS],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_subtraction() {
        let m = Metrics::new();
        m.steal_attempts.store(10, Ordering::Relaxed);
        m.steals.store(4, Ordering::Relaxed);
        let a = m.snapshot();
        m.steal_attempts.store(25, Ordering::Relaxed);
        m.steals.store(9, Ordering::Relaxed);
        let b = m.snapshot();
        let d = b.since(&a);
        assert_eq!(d.steal_attempts, 15);
        assert_eq!(d.steals, 5);
        assert_eq!(d.jobs_executed, 0);
    }

    #[test]
    fn since_saturates_rather_than_underflows() {
        let a = MetricsSnapshot {
            steal_attempts: 3,
            ..Default::default()
        };
        let b = MetricsSnapshot {
            steal_attempts: 10,
            ..Default::default()
        };
        assert_eq!(a.since(&b).steal_attempts, 0);
    }

    #[test]
    fn bump_increments() {
        let m = Metrics::new();
        Metrics::bump(&m.nodes_executed);
        Metrics::bump(&m.nodes_executed);
        assert_eq!(m.snapshot().nodes_executed, 2);
    }
}
