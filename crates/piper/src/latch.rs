//! Completion latches.
//!
//! Latches signal "this piece of work is finished" between workers and
//! waiters. Three flavours are used by the runtime:
//!
//! * [`SpinLatch`] — a single-shot flag probed by a worker that is actively
//!   helping (executing other tasks) while it waits, as in `join`.
//! * [`CountLatch`] — counts outstanding children; used by `scope` and by
//!   the `pipe_while` control frame to wait for all iterations.
//! * [`LockLatch`] — a mutex/condvar latch for external (non-worker)
//!   threads that must block rather than help.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Anything that can be probed for completion.
pub trait Latch {
    /// Returns true once the latch has been set.
    fn probe(&self) -> bool;
    /// Marks the latch as set.
    fn set(&self);
}

/// A single-shot boolean latch.
#[derive(Debug, Default)]
pub struct SpinLatch {
    set: AtomicBool,
}

impl SpinLatch {
    pub fn new() -> Self {
        SpinLatch {
            set: AtomicBool::new(false),
        }
    }
}

impl Latch for SpinLatch {
    #[inline]
    fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    #[inline]
    fn set(&self) {
        self.set.store(true, Ordering::Release);
    }
}

/// A latch that becomes set when its counter reaches zero.
///
/// Currently used only by tests and kept for future structured constructs;
/// `scope` tracks its pending count inline.
#[derive(Debug)]
#[allow(dead_code)]
pub struct CountLatch {
    counter: AtomicUsize,
}

#[allow(dead_code)]
impl CountLatch {
    /// Creates a latch with an initial count.
    pub fn with_count(count: usize) -> Self {
        CountLatch {
            counter: AtomicUsize::new(count),
        }
    }

    /// Increments the outstanding count.
    pub fn increment(&self) {
        self.counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements the count; returns true if this decrement set the latch.
    pub fn decrement(&self) -> bool {
        self.counter.fetch_sub(1, Ordering::AcqRel) == 1
    }

    /// Current count (diagnostic only).
    pub fn count(&self) -> usize {
        self.counter.load(Ordering::Relaxed)
    }
}

impl Latch for CountLatch {
    fn probe(&self) -> bool {
        self.counter.load(Ordering::Acquire) == 0
    }

    fn set(&self) {
        self.counter.store(0, Ordering::Release);
    }
}

/// A blocking latch for external threads.
#[derive(Debug, Default)]
pub struct LockLatch {
    state: Mutex<bool>,
    condvar: Condvar,
}

impl LockLatch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Blocks the calling thread until the latch is set.
    pub fn wait(&self) {
        let mut done = self.state.lock().unwrap();
        while !*done {
            done = self.condvar.wait(done).unwrap();
        }
    }
}

impl Latch for LockLatch {
    fn probe(&self) -> bool {
        *self.state.lock().unwrap()
    }

    fn set(&self) {
        let mut done = self.state.lock().unwrap();
        *done = true;
        drop(done);
        self.condvar.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn spin_latch_set_probe() {
        let l = SpinLatch::new();
        assert!(!l.probe());
        l.set();
        assert!(l.probe());
    }

    #[test]
    fn count_latch_counts_down() {
        let l = CountLatch::with_count(3);
        assert!(!l.probe());
        assert!(!l.decrement());
        assert!(!l.decrement());
        assert!(l.decrement());
        assert!(l.probe());
    }

    #[test]
    fn count_latch_increment_then_decrement() {
        let l = CountLatch::with_count(1);
        l.increment();
        assert!(!l.decrement());
        assert!(l.decrement());
        assert!(l.probe());
    }

    #[test]
    fn lock_latch_unblocks_waiter() {
        let l = Arc::new(LockLatch::new());
        let l2 = Arc::clone(&l);
        let h = thread::spawn(move || {
            l2.wait();
            7
        });
        thread::sleep(std::time::Duration::from_millis(5));
        l.set();
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn lock_latch_wait_after_set_returns_immediately() {
        let l = LockLatch::new();
        l.set();
        l.wait();
        assert!(l.probe());
    }
}
