//! **piper** — a work-stealing runtime with *on-the-fly pipeline
//! parallelism*, reproducing the Cilk-P system and its PIPER scheduler from
//! I-Ting Angelina Lee et al., *On-the-Fly Pipeline Parallelism* (SPAA
//! 2013).
//!
//! The crate provides:
//!
//! * a work-stealing [`ThreadPool`] with rayon-style fork-join primitives
//!   ([`join`], [`scope`], [`ThreadPool::par_for`]) built on the Chase–Lev
//!   deques of the [`wsdeque`] crate;
//! * the [`pipe_while`] construct (and its builder-style convenience
//!   wrapper [`StagedPipeline`]) implementing the paper's on-the-fly
//!   pipeline linguistics: per-iteration stage structure decided during
//!   execution, cross edges between adjacent iterations (`pipe_wait`),
//!   stage skipping, and nesting with fork-join parallelism;
//! * the PIPER scheduling behaviour: bind-to-element execution on the
//!   work-stealing deques, automatic throttling with limit `K` (default
//!   `4·P`), the tail-swap rule, and the two runtime optimizations — lazy
//!   enabling and dependency folding — individually switchable through
//!   [`PipeOptions`] for ablation studies;
//! * instrumentation ([`MetricsSnapshot`], [`PipeStats`]) for the paper's
//!   Theorem 10 (steal bound), Theorem 11 (space bound) and Figure 9
//!   (dependency folding) experiments.
//!
//! # Quick start
//!
//! ```
//! use piper::{ThreadPool, PipeOptions, StagedPipeline};
//! use std::sync::{Arc, Mutex};
//!
//! let pool = ThreadPool::new(4);
//! let out = Arc::new(Mutex::new(Vec::new()));
//! let sink = Arc::clone(&out);
//! let mut next = 0u32;
//! // A serial-parallel-serial pipeline (the shape of PARSEC's ferret).
//! StagedPipeline::<u32>::new()
//!     .parallel(|x| *x = *x * *x)
//!     .serial(move |x| sink.lock().unwrap().push(*x))
//!     .run(&pool, PipeOptions::default(), move || {
//!         next += 1;
//!         if next <= 5 { Some(next) } else { None }
//!     });
//! assert_eq!(*out.lock().unwrap(), vec![1, 4, 9, 16, 25]);
//! ```

#![warn(missing_docs)]

mod forkjoin;
mod job;
mod latch;
mod metrics;
mod pipeline;
mod pool;

pub use forkjoin::{join, scope, Scope};
pub use metrics::{Metrics, MetricsSnapshot, PipeStats, StageTiming, STAGE_TIMING_SLOTS};
pub use pipeline::{
    pipe_while, spawn_pipe, NodeOutcome, PipeHandle, PipeOptions, PipelineIteration, Stage0,
    StageKind, StagedPipeline,
};
pub use pool::{PoolBuilder, PoolOccupancy, ThreadPool};
