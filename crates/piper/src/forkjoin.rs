//! Fork-join parallelism: `join`, `scope`, `spawn` and `par_for`.
//!
//! The paper's `pipe_while` composes with Cilk's native fork-join
//! parallelism — stages may contain `cilk_spawn`/`cilk_sync`/`cilk_for`
//! (x264 processes its buffered B-frames with a `cilk_for`, Figure 2
//! line 27). This module provides the equivalent primitives on the same
//! worker deques the pipeline scheduler uses, so pipeline and fork-join
//! parallelism nest arbitrarily, as in Cilk-P.
//!
//! The implementation is rayon-style *child stealing*: `join(a, b)` pushes a
//! job for `b`, runs `a` inline, then either pops `b` back or helps with
//! other work until a thief finishes `b`. This differs from Cilk's
//! continuation stealing (which Rust cannot express without compiler
//! support) but preserves the same asymptotic work/span behaviour for the
//! programs in this repository.

use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::job::{HeapJob, StackJob};
use crate::latch::Latch;
use crate::pool::{Task, ThreadPool, WorkerThread};

impl ThreadPool {
    /// Runs `a` and `b`, potentially in parallel, and returns both results.
    ///
    /// Either closure may itself call `join`, `scope`, `par_for` or
    /// `pipe_while`, nesting arbitrarily.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        self.in_worker(|worker| join_on_worker(worker, a, b))
    }

    /// Structured task parallelism: spawns tasks that may borrow from the
    /// enclosing stack frame; all spawned tasks complete before `scope`
    /// returns.
    pub fn scope<'scope, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'scope>) -> R + Send,
        R: Send,
    {
        self.in_worker(|worker| scope_on_worker(worker, f))
    }

    /// Parallel loop over `range`, invoking `body(i)` for each index.
    ///
    /// `grain` controls the smallest chunk executed serially; pass 0 to let
    /// the pool pick a grain aiming at ~8 chunks per worker.
    pub fn par_for<F>(&self, range: std::ops::Range<usize>, grain: usize, body: F)
    where
        F: Fn(usize) + Sync,
    {
        let len = range.len();
        if len == 0 {
            return;
        }
        let grain = if grain == 0 {
            (len / (self.num_threads() * 8)).max(1)
        } else {
            grain.max(1)
        };
        self.in_worker(|worker| par_for_rec(worker, range, grain, &body));
    }

    /// Fire-and-forget spawn of a `'static` task onto the pool.
    pub fn spawn_detached<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let job = HeapJob::new(Box::new(f));
        self.registry().inject(Task::Job(job.into_job_ref()));
    }
}

/// Runs `a` and `b` in parallel on the pool owning the current worker
/// thread, or on the global pool if called from outside any pool.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match WorkerThread::current() {
        Some(worker) => join_on_worker(worker, a, b),
        None => ThreadPool::global().join(a, b),
    }
}

/// The worker-side implementation of `join`.
fn join_on_worker<A, B, RA, RB>(worker: &WorkerThread, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(b);
    let job_b_ref = unsafe { job_b.as_job_ref() };
    let job_b_id = job_b_ref.id();
    worker.push(Task::Job(job_b_ref));

    // Run `a` inline; even if it panics we must not return until `b` is no
    // longer reachable from any deque, or its stack storage would dangle.
    let result_a = panic::catch_unwind(AssertUnwindSafe(a));

    // Retrieve `b`: pop our own deque until we find it (executing anything
    // else we pushed meanwhile), or help with other work until a thief
    // completes it.
    while !job_b.latch.probe() {
        match worker.pop() {
            Some(Task::Job(job)) if job.id() == job_b_id => {
                job_b.run_inline();
                break;
            }
            Some(other) => worker.execute(other),
            None => {
                // `b` was stolen; help with whatever work exists while the
                // thief finishes it.
                if let Some(task) = worker.find_task() {
                    worker.execute(task);
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    match result_a {
        Ok(ra) => (ra, job_b.take_result()),
        Err(payload) => {
            // Make sure `b`'s result (and possible panic) is consumed before
            // propagating `a`'s panic, to avoid losing track of it silently.
            let _ = panic::catch_unwind(AssertUnwindSafe(|| job_b.take_result()));
            panic::resume_unwind(payload)
        }
    }
}

/// A scope handle for spawning tasks that borrow from the enclosing frame.
pub struct Scope<'scope> {
    /// Number of spawned tasks not yet finished.
    pending: AtomicUsize,
    /// First panic raised by any spawned task.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// The pool the scope executes on.
    registry: Arc<crate::pool::Registry>,
    marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns a task that runs inside the scope. The closure may borrow data
    /// that outlives the scope (`'scope`).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        // A raw pointer to the scope, wrapped so the closure is Send. The
        // scope itself is Sync (all fields are), so sharing it with the
        // worker that runs the task is sound.
        struct ScopePtr<'scope>(*const Scope<'scope>);
        unsafe impl<'scope> Send for ScopePtr<'scope> {}
        impl<'scope> ScopePtr<'scope> {
            /// Accessor method (rather than direct field access) so that the
            /// closure captures the whole Send wrapper, not the raw pointer
            /// field (edition-2021 closures capture disjoint fields).
            fn get(&self) -> *const Scope<'scope> {
                self.0
            }
        }
        let scope_ptr = ScopePtr(self as *const Scope<'scope>);
        // SAFETY: the scope does not return until `pending` reaches zero, so
        // the closure (which may borrow 'scope data) and the scope pointer
        // remain valid for the task's whole execution. The lifetime is
        // erased only to satisfy HeapJob's 'static bound.
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let scope = unsafe { &*scope_ptr.get() };
            let result = panic::catch_unwind(AssertUnwindSafe(|| f(scope)));
            if let Err(payload) = result {
                scope.panic.lock().unwrap().get_or_insert(payload);
            }
            scope.pending.fetch_sub(1, Ordering::SeqCst);
        });
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
        let job = HeapJob::new(task);
        match WorkerThread::current() {
            Some(w) if Arc::ptr_eq(w.registry(), &self.registry) => {
                w.push(Task::Job(job.into_job_ref()))
            }
            _ => self.registry.inject(Task::Job(job.into_job_ref())),
        }
    }
}

struct ScopePendingLatch<'a, 'scope>(&'a Scope<'scope>);

impl<'a, 'scope> Latch for ScopePendingLatch<'a, 'scope> {
    fn probe(&self) -> bool {
        self.0.pending.load(Ordering::SeqCst) == 0
    }
    fn set(&self) {}
}

fn scope_on_worker<'scope, F, R>(worker: &WorkerThread, f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let scope = Scope {
        pending: AtomicUsize::new(0),
        panic: Mutex::new(None),
        registry: Arc::clone(worker.registry()),
        marker: PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
    // Help until every spawned task has completed, whether or not the scope
    // body panicked (spawned tasks may borrow the enclosing frame).
    worker.wait_until(&ScopePendingLatch(&scope));
    // Propagate panics: scope body first, then any spawned task's.
    let spawned_panic = scope.panic.lock().unwrap().take();
    match result {
        Err(payload) => panic::resume_unwind(payload),
        Ok(value) => {
            if let Some(payload) = spawned_panic {
                panic::resume_unwind(payload);
            }
            value
        }
    }
}

/// Structured scope on the current pool (or the global pool when called from
/// a non-worker thread).
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    match WorkerThread::current() {
        Some(worker) => scope_on_worker(worker, f),
        None => ThreadPool::global().scope(f),
    }
}

fn par_for_rec<F>(worker: &WorkerThread, range: std::ops::Range<usize>, grain: usize, body: &F)
where
    F: Fn(usize) + Sync,
{
    if range.len() <= grain {
        for i in range {
            body(i);
        }
        return;
    }
    let mid = range.start + range.len() / 2;
    let left = range.start..mid;
    let right = mid..range.end;
    join_on_worker(
        worker,
        || par_for_rec_current(left, grain, body),
        || par_for_rec_current(right, grain, body),
    );
}

/// Re-resolves the current worker (a stolen half executes on the thief's
/// worker, not the original one).
fn par_for_rec_current<F>(range: std::ops::Range<usize>, grain: usize, body: &F)
where
    F: Fn(usize) + Sync,
{
    let worker = WorkerThread::current().expect("par_for halves run on workers");
    par_for_rec(worker, range, grain, body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn fib(pool: &ThreadPool, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        if n < 12 {
            return fib_seq(n);
        }
        let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
        a + b
    }

    fn fib_seq(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib_seq(n - 1) + fib_seq(n - 2)
        }
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_computes_fib_correctly() {
        let pool = ThreadPool::new(4);
        assert_eq!(fib(&pool, 25), fib_seq(25));
    }

    #[test]
    fn join_propagates_panic_from_a() {
        let pool = ThreadPool::new(2);
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| panic!("a"), || 2);
        }));
        assert!(r.is_err());
        assert_eq!(pool.join(|| 1, || 2), (1, 2));
    }

    #[test]
    fn join_propagates_panic_from_b() {
        let pool = ThreadPool::new(2);
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| 1, || panic!("b"));
        }));
        assert!(r.is_err());
        assert_eq!(pool.join(|| 1, || 2), (1, 2));
    }

    #[test]
    fn deeply_nested_joins() {
        let pool = ThreadPool::new(3);
        fn sum(pool: &ThreadPool, lo: usize, hi: usize) -> usize {
            if hi - lo <= 8 {
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = pool.join(|| sum(pool, lo, mid), || sum(pool, mid, hi));
            a + b
        }
        assert_eq!(sum(&pool, 0, 10_000), (0..10_000).sum());
    }

    #[test]
    fn scope_runs_all_spawned_tasks() {
        let pool = ThreadPool::new(3);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn scope_tasks_can_spawn_more_tasks() {
        let pool = ThreadPool::new(3);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|s| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    for _ in 0..4 {
                        s.spawn(|_| {
                            counter.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8 + 8 * 4);
    }

    #[test]
    fn scope_can_borrow_stack_data() {
        let pool = ThreadPool::new(2);
        let mut results = [0u64; 16];
        {
            let chunks: Vec<&mut u64> = results.iter_mut().collect();
            pool.scope(|s| {
                for (i, slot) in chunks.into_iter().enumerate() {
                    s.spawn(move |_| {
                        *slot = (i * i) as u64;
                    });
                }
            });
        }
        for (i, v) in results.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn scope_propagates_spawned_panic() {
        let pool = ThreadPool::new(2);
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|_| panic!("spawned panic"));
            });
        }));
        assert!(r.is_err());
        assert_eq!(pool.install(|| 3), 3);
    }

    #[test]
    fn par_for_visits_every_index_once() {
        let pool = ThreadPool::new(4);
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.par_for(0..n, 16, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn par_for_empty_and_tiny_ranges() {
        let pool = ThreadPool::new(2);
        pool.par_for(0..0, 4, |_| panic!("must not be called"));
        let count = AtomicU64::new(0);
        pool.par_for(0..1, 0, |_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn free_join_works_from_external_thread() {
        let (a, b) = join(|| 2, || 3);
        assert_eq!((a, b), (2, 3));
    }

    #[test]
    fn free_scope_works_from_external_thread() {
        let counter = AtomicU64::new(0);
        scope(|s| {
            for _ in 0..10 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn join_inside_install_inside_scope() {
        let pool = ThreadPool::new(3);
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            let total = &total;
            for i in 0..6u64 {
                s.spawn(move |_| {
                    let (a, b) = join(|| i, || i * 10);
                    total.fetch_add(a + b, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), (0..6).map(|i| i * 11).sum());
    }
}
