//! The work-stealing thread pool.
//!
//! This module implements the worker/registry machinery that PIPER shares
//! with an ordinary fork-join work-stealing scheduler (the ABP model of
//! Arora, Blumofe and Plaxton, which the paper modifies): per-worker
//! Chase–Lev deques, random victim selection, a global injector for external
//! submissions, and a sleep/wake protocol for idle workers.
//!
//! The pipeline-specific behaviour (cross edges, throttling, tail-swap, lazy
//! enabling, dependency folding) lives in [`crate::pipeline`]; it plugs into
//! this module through the [`ControlTask`] and [`NodeTask`] traits and the
//! [`Task`] enum.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

use wsdeque::{deque, Backoff, Injector, Parker, Steal, Stealer, Worker as Deque, XorShift64};

use crate::job::JobRef;
use crate::latch::{Latch, LockLatch};
use crate::metrics::{Metrics, MetricsSnapshot};

/// A pipeline control frame (the serial Stage-0 / loop-test contour of a
/// `pipe_while`), reified as a schedulable task.
pub(crate) trait ControlTask: Send + Sync {
    /// Executes one control step (Stage 0 of the next iteration, or the
    /// throttle-suspension protocol). Returns the next *assigned* task for
    /// this worker, if the step enabled one.
    fn control_step(self: Arc<Self>, worker: &WorkerThread) -> Option<Task>;
}

/// The iteration ring of a pipeline, executable one slot at a time.
pub(crate) trait NodeTask: Send + Sync {
    /// Runs nodes of the iteration occupying `slot` (whose index is
    /// `epoch`) until it completes or suspends. Returns the next assigned
    /// task for this worker, if any (e.g. the control frame re-enabled
    /// through a throttling edge).
    fn node_step(self: Arc<Self>, slot: usize, epoch: u64, worker: &WorkerThread) -> Option<Task>;
}

/// A schedulable unit sitting in a worker deque or the injector.
pub(crate) enum Task {
    /// A fork-join job (from `join`, `scope` or `par_for`).
    Job(JobRef),
    /// A pipeline control frame.
    Control(Arc<dyn ControlTask>),
    /// A ready pipeline iteration: a slot of a pipeline's recycled frame
    /// ring plus the iteration index (epoch) expected to occupy it. The
    /// epoch makes a stale task detectable — the scheduling protocol never
    /// produces one, but the ring's debug assertions check it.
    Node {
        ring: Arc<dyn NodeTask>,
        slot: u32,
        epoch: u64,
    },
}

/// Per-slot shared info visible to other workers (for stealing/waking).
/// Slots are fixed at build time (`max_threads` of them); the worker
/// *threads* occupying them come and go as the pool is resized. A dormant
/// slot's stealer stays valid (it just reads an empty deque), so the steal
/// and wake paths never need to observe a resize.
struct ThreadInfo {
    stealer: Stealer<Task>,
    parker: Arc<Parker>,
    /// Asks the slot's current worker thread to retire. The flag is consumed
    /// by a compare-exchange — either the worker (committing to retire) or a
    /// concurrent grow (cancelling the retirement) wins, never both.
    retire: AtomicBool,
}

/// Capacity of each worker's flight-recorder ring: enough to reconstruct
/// the last few scheduling decisions around an incident without holding
/// more than a few KiB per worker.
const RECORDER_CAPACITY: usize = 256;

/// How many node executions pass between two sampled stage timings. At
/// 1-in-64 the sampled path's two clock reads amortize to well under a
/// nanosecond per node, invisible next to the per-node overhead floor.
const STAGE_SAMPLE_PERIOD: u32 = 64;

/// State shared by every worker of a pool.
pub(crate) struct Registry {
    threads: Vec<ThreadInfo>,
    injector: Injector<Task>,
    pub(crate) metrics: Metrics,
    /// Per-slot flight recorders (scheduler event rings); index-aligned
    /// with `threads`. A slot's ring survives worker retire/respawn cycles,
    /// so a dump sees across resizes.
    recorders: Vec<obs::EventRing>,
    /// Pool-level events that no single worker owns (resizes).
    pool_recorder: obs::EventRing,
    sleepers: AtomicUsize,
    terminating: AtomicBool,
    /// Number of live worker threads (gauge; transiently lags a resize).
    active_workers: AtomicUsize,
    /// Owner halves of dormant slots' deques, index-keyed. A retiring
    /// worker drains its deque into the injector and parks the empty owner
    /// half here; a grow takes it back out for the new thread.
    dormant: Mutex<Vec<Option<Deque<Task>>>>,
    thread_name_prefix: String,
}

impl Registry {
    /// Number of live worker threads (the elastic gauge).
    pub(crate) fn num_threads(&self) -> usize {
        self.active_workers.load(Ordering::Relaxed)
    }

    /// Number of worker slots (the elastic ceiling, fixed at build).
    fn num_slots(&self) -> usize {
        self.threads.len()
    }

    /// Submits a task from an arbitrary thread.
    pub(crate) fn inject(&self, task: Task) {
        self.injector.push(task);
        self.wake_workers();
    }

    /// Wakes sleeping workers if any.
    pub(crate) fn wake_workers(&self) {
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            for t in &self.threads {
                t.parker.unpark();
            }
        }
    }
}

thread_local! {
    /// Pointer to the `WorkerThread` owned by this OS thread, if it is a
    /// pool worker. Stored as a raw pointer because the worker lives on the
    /// worker thread's stack for the thread's whole lifetime.
    static CURRENT_WORKER: Cell<*const WorkerThread> = const { Cell::new(std::ptr::null()) };
}

/// The state owned by a single worker thread.
pub(crate) struct WorkerThread {
    registry: Arc<Registry>,
    index: usize,
    deque: Deque<Task>,
    rng: RefCell<XorShift64>,
    /// Countdown to the next sampled stage timing (see
    /// [`STAGE_SAMPLE_PERIOD`]); worker-local so short scheduling quanta do
    /// not oversample.
    sample_countdown: Cell<u32>,
}

impl WorkerThread {
    /// Returns the worker bound to the current OS thread, if any.
    ///
    /// The returned reference is only valid for the duration of the current
    /// call stack on this thread, which is all callers need.
    pub(crate) fn current() -> Option<&'static WorkerThread> {
        CURRENT_WORKER.with(|w| {
            let ptr = w.get();
            if ptr.is_null() {
                None
            } else {
                Some(unsafe { &*ptr })
            }
        })
    }

    pub(crate) fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    pub(crate) fn index(&self) -> usize {
        self.index
    }

    pub(crate) fn metrics(&self) -> &Metrics {
        &self.registry.metrics
    }

    /// This worker's flight-recorder ring.
    pub(crate) fn recorder(&self) -> &obs::EventRing {
        &self.registry.recorders[self.index]
    }

    /// 1-in-N sampling gate for stage timing: returns a start timestamp on
    /// the sampled executions, `None` (one `Cell` decrement) otherwise.
    #[inline]
    pub(crate) fn stage_sample_timer(&self) -> Option<std::time::Instant> {
        let remaining = self.sample_countdown.get();
        if remaining == 0 {
            self.sample_countdown.set(STAGE_SAMPLE_PERIOD - 1);
            Some(std::time::Instant::now())
        } else {
            self.sample_countdown.set(remaining - 1);
            None
        }
    }

    /// True if this worker's deque is currently empty (used by lazy
    /// enabling to decide when to check right).
    pub(crate) fn deque_is_empty(&self) -> bool {
        self.deque.is_empty()
    }

    /// Pushes a task onto this worker's deque and wakes a sleeper.
    pub(crate) fn push(&self, task: Task) {
        self.deque.push(task);
        self.registry.wake_workers();
    }

    /// PIPER's tail-swap: exchanges `task` with the tail of this worker's
    /// deque. Returns the previous tail, or gives `task` back if the deque
    /// was empty.
    pub(crate) fn swap_tail(&self, task: Task) -> Result<Task, Task> {
        let r = self.deque.swap_tail(task);
        if r.is_ok() {
            self.registry.wake_workers();
        }
        r
    }

    /// Pops from the bottom of this worker's own deque.
    pub(crate) fn pop(&self) -> Option<Task> {
        self.deque.pop()
    }

    /// Finds a task: own deque first, then the injector, then random steals.
    pub(crate) fn find_task(&self) -> Option<Task> {
        if let Some(t) = self.pop() {
            return Some(t);
        }
        if let Some(t) = self.registry.injector.pop() {
            return Some(t);
        }
        self.steal()
    }

    /// One round of random steal attempts over all other workers. The round
    /// covers every *slot*, not just the live ones: a slot whose worker
    /// retired may still hold tasks until somebody steals them, and a
    /// dormant slot's stealer merely reads an empty deque.
    fn steal(&self) -> Option<Task> {
        let n = self.registry.num_slots();
        if n <= 1 {
            return None;
        }
        let mut rng = self.rng.borrow_mut();
        // One full round of attempts in random order starting at a random
        // victim; counted as steal attempts for the Theorem 10 experiment.
        let start = rng.next_below(n);
        for k in 0..n {
            let victim = (start + k) % n;
            if victim == self.index {
                continue;
            }
            Metrics::bump(&self.registry.metrics.steal_attempts);
            loop {
                match self.registry.threads[victim].stealer.steal() {
                    Steal::Success(task) => {
                        Metrics::bump(&self.registry.metrics.steals);
                        self.recorder().push(obs::EventKind::Steal, victim as u64);
                        return Some(task);
                    }
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
        None
    }

    /// Executes a task, following the chain of "assigned vertices" that
    /// pipeline tasks may return (PIPER's worker keeps executing its
    /// assigned vertex rather than going back to the deque).
    pub(crate) fn execute(&self, task: Task) {
        let mut current = Some(task);
        while let Some(t) = current.take() {
            match t {
                Task::Job(job) => {
                    Metrics::bump(&self.registry.metrics.jobs_executed);
                    unsafe { job.execute() };
                }
                Task::Control(ctrl) => {
                    current = ctrl.control_step(self);
                }
                Task::Node { ring, slot, epoch } => {
                    current = ring.node_step(slot as usize, epoch, self);
                }
            }
        }
    }

    /// Runs the scheduling loop until `latch` is set, helping with any work
    /// found in the meantime. This is how workers "block" without blocking.
    pub(crate) fn wait_until<L: Latch>(&self, latch: &L) {
        let mut backoff = Backoff::new();
        while !latch.probe() {
            if let Some(task) = self.find_task() {
                backoff.reset();
                self.execute(task);
            } else {
                // The latch may be set by an external thread at any moment
                // and nobody is required to unpark us, so never park here:
                // a completed backoff keeps yielding.
                backoff.snooze();
            }
        }
    }

    /// The worker's top-level scheduling loop. Returns when the pool is
    /// terminating or this slot was asked to retire (elastic shrink); in the
    /// latter case the deque has been drained into the injector so no task
    /// is stranded behind a dead worker.
    fn main_loop(&self) {
        let mut backoff = Backoff::new();
        loop {
            // Elastic shrink: a relaxed read keeps the locked RMW off the
            // per-task hot path; only a raised flag attempts the
            // compare-exchange that commits this thread to retiring (a
            // concurrent grow doing the same CAS cancels the retirement
            // instead — exactly one side wins the flag).
            let retire = &self.registry.threads[self.index].retire;
            if retire.load(Ordering::Relaxed)
                && retire
                    .compare_exchange(true, false, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                let mut drained = false;
                while let Some(task) = self.pop() {
                    self.registry.injector.push(task);
                    drained = true;
                }
                if drained {
                    self.registry.wake_workers();
                }
                break;
            }
            if let Some(task) = self.find_task() {
                backoff.reset();
                self.execute(task);
                continue;
            }
            if self.registry.terminating.load(Ordering::Acquire) {
                break;
            }
            if !backoff.is_completed() {
                // Spin-then-yield through a few more steal rounds before
                // touching the condvar: fine-grained pipelines enable new
                // nodes within nanoseconds, and a park/unpark round trip
                // costs microseconds.
                backoff.snooze();
                continue;
            }
            backoff.reset();
            // Nothing to do after a full backoff: sleep briefly. The timeout
            // bounds the damage of any missed wakeup; explicit wakes make
            // the common case fast. (Relaxed suffices on the sleeper count:
            // it is advisory for `wake_workers`, and a missed wake is
            // bounded by the park timeout.)
            self.registry.sleepers.fetch_add(1, Ordering::Relaxed);
            self.registry.threads[self.index]
                .parker
                .park_timeout(Duration::from_micros(500));
            self.registry.sleepers.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Configuration for building a [`ThreadPool`].
#[derive(Debug, Clone)]
pub struct PoolBuilder {
    num_threads: usize,
    max_threads: Option<usize>,
    thread_name_prefix: String,
}

impl Default for PoolBuilder {
    fn default() -> Self {
        PoolBuilder {
            num_threads: default_num_threads(),
            max_threads: None,
            thread_name_prefix: "piper-worker".to_string(),
        }
    }
}

fn default_num_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl PoolBuilder {
    /// Starts building a pool with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (`P` in the paper).
    ///
    /// `n = 0` is meaningless (a pool with no workers can never run
    /// anything): debug builds panic on it, release builds clamp it to 1.
    pub fn num_threads(mut self, n: usize) -> Self {
        debug_assert!(
            n >= 1,
            "PoolBuilder::num_threads(0): a pool needs at least one worker \
             (release builds clamp it to 1)"
        );
        self.num_threads = n.max(1);
        self
    }

    /// Sets the prefix used to name worker threads.
    pub fn thread_name_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.thread_name_prefix = prefix.into();
        self
    }

    /// Sets the upper bound of the elastic worker band (the number of
    /// worker *slots*). Defaults to the initial thread count, i.e. a fixed
    /// pool. [`ThreadPool::resize`] can later move the live worker count
    /// anywhere in `[1, max_threads]`; it can never exceed this, because
    /// the per-slot deques and stealers are allocated once, here.
    pub fn max_threads(mut self, n: usize) -> Self {
        self.max_threads = Some(n.max(1));
        self
    }

    /// Builds the pool, spawning the initial worker threads.
    pub fn build(self) -> ThreadPool {
        let n = self.num_threads;
        let slots = self.max_threads.unwrap_or(n).max(n);
        let mut deques = Vec::with_capacity(slots);
        let mut infos = Vec::with_capacity(slots);
        for _ in 0..slots {
            let (worker, stealer) = deque::<Task>();
            infos.push(ThreadInfo {
                stealer,
                parker: Arc::new(Parker::new()),
                retire: AtomicBool::new(false),
            });
            deques.push(Some(worker));
        }
        let registry = Arc::new(Registry {
            threads: infos,
            injector: Injector::new(),
            metrics: Metrics::new(),
            recorders: (0..slots)
                .map(|_| obs::EventRing::new(RECORDER_CAPACITY))
                .collect(),
            pool_recorder: obs::EventRing::new(RECORDER_CAPACITY),
            sleepers: AtomicUsize::new(0),
            terminating: AtomicBool::new(false),
            active_workers: AtomicUsize::new(0),
            dormant: Mutex::new(deques),
            thread_name_prefix: self.thread_name_prefix,
        });

        let mut handles = Vec::with_capacity(n);
        for index in 0..n {
            handles.push(spawn_worker(&registry, index));
        }

        ThreadPool {
            registry,
            handles: Mutex::new(handles),
            resize_lock: Mutex::new(n),
        }
    }
}

/// Spawns a worker thread onto slot `index`, taking the slot's dormant
/// deque half (spinning briefly if a retiring predecessor has not yet
/// handed it back). The active-worker gauge is raised before the thread
/// runs so `num_threads()` reflects a completed resize immediately.
fn spawn_worker(registry: &Arc<Registry>, index: usize) -> thread::JoinHandle<()> {
    let dq = loop {
        if let Some(dq) = registry.dormant.lock().unwrap()[index].take() {
            break dq;
        }
        // The slot's previous occupant committed to retiring but has not
        // yet parked its deque half; it is past its last task, so this
        // wait is bounded by thread-exit bookkeeping.
        thread::yield_now();
    };
    registry.active_workers.fetch_add(1, Ordering::Relaxed);
    let registry = Arc::clone(registry);
    let name = format!("{}-{}", registry.thread_name_prefix, index);
    thread::Builder::new()
        .name(name)
        .spawn(move || {
            let worker = WorkerThread {
                registry,
                index,
                deque: dq,
                rng: RefCell::new(XorShift64::new(0x5851_F42D_4C95_7F2D ^ (index as u64 + 1))),
                // Stagger the first sample per slot so workers do not all
                // sample the same phase of a regular pipeline.
                sample_countdown: Cell::new(index as u32 % STAGE_SAMPLE_PERIOD),
            };
            CURRENT_WORKER.with(|w| w.set(&worker as *const WorkerThread));
            worker.main_loop();
            CURRENT_WORKER.with(|w| w.set(std::ptr::null()));
            // Hand the deque half back (drained by the retire path; on pool
            // termination its contents are dropped with the registry) and
            // lower the gauge.
            let WorkerThread {
                registry, deque, ..
            } = worker;
            registry.dormant.lock().unwrap()[index] = Some(deque);
            registry.active_workers.fetch_sub(1, Ordering::Relaxed);
        })
        .expect("failed to spawn worker thread")
}

/// A work-stealing thread pool that supports both fork-join parallelism and
/// on-the-fly pipeline parallelism (see [`crate::pipeline`]).
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
    /// Serializes [`resize`](Self::resize) calls; holds the current target
    /// worker count (live slots are exactly `0..target`).
    resize_lock: Mutex<usize>,
}

/// A point-in-time occupancy gauge of a pool, for elastic supervisors
/// (queue-depth-driven grow/shrink decisions) and observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct PoolOccupancy {
    /// Live worker threads right now.
    pub active_workers: usize,
    /// The elastic ceiling (worker slots allocated at build).
    pub max_workers: usize,
    /// Tasks waiting in the global injector.
    pub injector_depth: usize,
    /// Tasks sitting in worker deques (sampled via the stealers; racy but
    /// monotonicity-free — a gauge, not an invariant).
    pub deque_depth: usize,
    /// Detached + blocking pipelines currently in flight
    /// (`pipes_started − pipes_completed`).
    pub pipes_running: u64,
}

impl ThreadPool {
    /// Creates a pool with `num_threads` workers.
    pub fn new(num_threads: usize) -> Self {
        PoolBuilder::new().num_threads(num_threads).build()
    }

    /// Starts building a pool with custom settings.
    pub fn builder() -> PoolBuilder {
        PoolBuilder::new()
    }

    /// A process-wide shared pool sized to the machine, for convenience use
    /// by examples and the free functions [`crate::join`] / [`crate::scope`].
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadPool::new(default_num_threads()))
    }

    /// Number of live worker threads (`P`). For a fixed pool this is the
    /// built size; for an elastic pool it tracks [`resize`](Self::resize)
    /// (transiently lagging while a retiring worker finishes its last task).
    pub fn num_threads(&self) -> usize {
        self.registry.num_threads()
    }

    /// The elastic ceiling: the number of worker slots allocated at build
    /// ([`PoolBuilder::max_threads`]); [`resize`](Self::resize) targets are
    /// clamped to `[1, max_threads]`.
    pub fn max_threads(&self) -> usize {
        self.registry.num_slots()
    }

    /// Elastically resizes the pool to `target` live workers, clamped to
    /// `[1, max_threads]`; returns the clamped target.
    ///
    /// Growing spawns threads onto dormant slots. Shrinking asks the
    /// highest slots to retire: each retiring worker finishes its current
    /// task, drains its deque into the shared injector (so no task is
    /// stranded) and exits — in-flight pipelines are never interrupted,
    /// only the parallelism serving them changes. Calls are serialized; a
    /// grow that races an uncommitted retire simply cancels it.
    pub fn resize(&self, target: usize) -> usize {
        let target = target.clamp(1, self.registry.num_slots());
        let mut current = self.resize_lock.lock().unwrap();
        if target != *current {
            self.registry
                .pool_recorder
                .push(obs::EventKind::Resize, target as u64);
        }
        if target < *current {
            for idx in target..*current {
                self.registry.threads[idx]
                    .retire
                    .store(true, Ordering::Release);
                self.registry.threads[idx].parker.unpark();
            }
        } else if target > *current {
            let mut handles = self.handles.lock().unwrap();
            // Reap handles of long-retired threads so repeated resize
            // cycles do not accumulate them without bound.
            handles.retain(|h| !h.is_finished());
            for idx in *current..target {
                if self.registry.threads[idx]
                    .retire
                    .compare_exchange(true, false, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    // Cancelled a retire the slot's worker had not yet
                    // committed to: it keeps running, nothing to spawn.
                    continue;
                }
                handles.push(spawn_worker(&self.registry, idx));
            }
        }
        *current = target;
        target
    }

    /// Samples the pool's occupancy gauges (see [`PoolOccupancy`]).
    pub fn occupancy(&self) -> PoolOccupancy {
        let m = self.registry.metrics.snapshot();
        PoolOccupancy {
            active_workers: self.registry.num_threads(),
            max_workers: self.registry.num_slots(),
            injector_depth: self.registry.injector.len(),
            deque_depth: self.registry.threads.iter().map(|t| t.stealer.len()).sum(),
            pipes_running: m.pipes_started.saturating_sub(m.pipes_completed),
        }
    }

    pub(crate) fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Snapshot of the pool's scheduling counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.metrics.snapshot()
    }

    /// Snapshots the pool-wide sampled stage-timing histograms, one per
    /// stage slot (see [`crate::STAGE_TIMING_SLOTS`]): the distribution of
    /// per-node wall-clock latency, sampled 1-in-N node executions.
    pub fn stage_timing(&self) -> Vec<obs::HistogramSnapshot> {
        self.registry
            .metrics
            .stage_timing
            .iter()
            .map(|h| h.snapshot())
            .collect()
    }

    /// Dumps the flight recorder: every worker's retained scheduler events
    /// (steal / suspend / resume / throttle / panic) plus pool-level events
    /// (resize), merged into one series ordered by coarse timestamp. The
    /// `usize` is the worker slot; pool-level events use slot
    /// `max_threads()`. Best-effort under concurrent activity — this is a
    /// diagnostic surface, not an audit log.
    pub fn flight_events(&self) -> Vec<(usize, obs::Event)> {
        let mut dumps: Vec<Vec<obs::Event>> =
            self.registry.recorders.iter().map(|r| r.dump()).collect();
        dumps.push(self.registry.pool_recorder.dump());
        obs::merge_dumps(&dumps)
    }

    /// True if the calling thread is one of this pool's workers.
    pub fn is_worker_thread(&self) -> bool {
        match WorkerThread::current() {
            Some(w) => Arc::ptr_eq(w.registry(), &self.registry),
            None => false,
        }
    }

    /// Runs `f` on a worker thread of this pool and returns its result,
    /// blocking the calling thread until it completes. If the calling thread
    /// already is a worker of this pool, `f` runs inline.
    pub fn install<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if self.is_worker_thread() {
            return f();
        }
        // Run `f` as a job on some worker, blocking this external thread on
        // a lock latch. The job and result live on this stack frame, which
        // remains valid because we do not return until the latch is set.
        let latch = LockLatch::new();
        let result: Mutex<Option<std::thread::Result<R>>> = Mutex::new(None);
        {
            let job = crate::job::StackJob::new(|| {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                *result.lock().unwrap() = Some(r);
                latch.set();
            });
            let job_ref = unsafe { job.as_job_ref() };
            self.registry.inject(Task::Job(job_ref));
            latch.wait();
            // The lock latch is set from inside the closure, slightly before
            // the worker finishes bookkeeping on the stack job itself; spin
            // out that tiny window so `job` is not dropped while in use.
            while !job.latch.probe() {
                std::hint::spin_loop();
            }
        }
        let r = result
            .into_inner()
            .unwrap()
            .expect("install job did not run");
        match r {
            Ok(value) => value,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Runs the closure `op` with the current worker if called from inside
    /// the pool, or moves onto the pool via [`install`](Self::install)
    /// otherwise.
    pub(crate) fn in_worker<F, R>(&self, op: F) -> R
    where
        F: FnOnce(&WorkerThread) -> R + Send,
        R: Send,
    {
        if let Some(w) = WorkerThread::current() {
            if Arc::ptr_eq(w.registry(), &self.registry) {
                return op(w);
            }
        }
        self.install(|| {
            let w = WorkerThread::current().expect("install must run on a worker");
            op(w)
        })
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminating.store(true, Ordering::Release);
        self.registry.wake_workers();
        // The pool can be dropped *from one of its own workers*: e.g. a
        // detached pipeline's completion hook (running on a worker) holds
        // the last strong reference to a service that owns the pool. Joining
        // ourselves would EDEADLK, so that one handle is dropped instead —
        // the thread exits cleanly on its own once it unwinds back to
        // `main_loop` and observes `terminating`.
        let self_index = WorkerThread::current()
            .filter(|w| Arc::ptr_eq(w.registry(), &self.registry))
            .map(|w| w.index());
        let handles = std::mem::take(&mut *self.handles.lock().unwrap());
        for (index, h) in handles.into_iter().enumerate() {
            if Some(index) == self_index {
                continue;
            }
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.num_threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn build_and_drop_pool() {
        let pool = ThreadPool::new(2);
        assert_eq!(pool.num_threads(), 2);
        drop(pool);
    }

    /// Release builds silently clamp `num_threads(0)` to one worker…
    #[test]
    #[cfg(not(debug_assertions))]
    fn builder_clamps_to_at_least_one_thread() {
        let pool = ThreadPool::builder().num_threads(0).build();
        assert_eq!(pool.num_threads(), 1);
    }

    /// …while debug builds reject it loudly.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "a pool needs at least one worker")]
    fn builder_debug_panics_on_zero_threads() {
        let _ = ThreadPool::builder().num_threads(0);
    }

    #[test]
    fn install_runs_closure_and_returns_value() {
        let pool = ThreadPool::new(2);
        let value = pool.install(|| 6 * 7);
        assert_eq!(value, 42);
    }

    #[test]
    fn install_runs_on_a_worker_thread() {
        let pool = ThreadPool::new(2);
        let on_worker = pool.install(|| WorkerThread::current().is_some());
        assert!(on_worker);
        assert!(!pool.is_worker_thread());
    }

    #[test]
    fn nested_install_runs_inline() {
        let pool = ThreadPool::new(2);
        let v = pool.install(|| {
            // Already on a worker: must not deadlock.
            ThreadPool::global(); // unrelated pool may exist
            1 + 1
        });
        assert_eq!(v, 2);
    }

    #[test]
    fn install_propagates_panics() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| panic!("expected panic"));
        }));
        assert!(result.is_err());
        // The pool must still be usable afterwards.
        assert_eq!(pool.install(|| 5), 5);
    }

    #[test]
    fn many_installs_from_many_threads() {
        let pool = Arc::new(ThreadPool::new(3));
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pool = Arc::clone(&pool);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    pool.install(|| counter.fetch_add(1, Ordering::SeqCst));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 8 * 50);
    }

    /// Spins until the live-worker gauge reaches `expect` (retiring workers
    /// lower it asynchronously, after their last task).
    fn wait_for_workers(pool: &ThreadPool, expect: usize) {
        for _ in 0..20_000 {
            if pool.num_threads() == expect {
                return;
            }
            thread::sleep(Duration::from_micros(100));
        }
        panic!(
            "pool never reached {expect} live workers (at {})",
            pool.num_threads()
        );
    }

    #[test]
    fn resize_grows_and_shrinks_within_the_band() {
        let pool = ThreadPool::builder().num_threads(1).max_threads(4).build();
        assert_eq!(pool.num_threads(), 1);
        assert_eq!(pool.max_threads(), 4);
        assert_eq!(pool.resize(4), 4);
        wait_for_workers(&pool, 4);
        assert_eq!(pool.resize(0), 1, "resize clamps to at least one worker");
        wait_for_workers(&pool, 1);
        assert_eq!(pool.resize(99), 4, "resize clamps to max_threads");
        wait_for_workers(&pool, 4);
        assert_eq!(pool.install(|| 6 * 7), 42);
    }

    #[test]
    fn no_task_is_lost_across_resize_cycles() {
        let pool = Arc::new(ThreadPool::builder().num_threads(2).max_threads(6).build());
        let counter = Arc::new(AtomicUsize::new(0));
        let mut submitters = Vec::new();
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            let counter = Arc::clone(&counter);
            submitters.push(thread::spawn(move || {
                for _ in 0..200 {
                    pool.install(|| counter.fetch_add(1, Ordering::SeqCst));
                }
            }));
        }
        // Churn the worker band while the installs flow.
        let resizer = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || {
                for target in [1usize, 6, 2, 5, 1, 4, 3, 6, 1, 2]
                    .into_iter()
                    .cycle()
                    .take(40)
                {
                    pool.resize(target);
                    thread::sleep(Duration::from_micros(300));
                }
            })
        };
        for h in submitters {
            h.join().unwrap();
        }
        resizer.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4 * 200);
    }

    #[test]
    fn pipeline_survives_concurrent_resizes() {
        let pool = Arc::new(ThreadPool::builder().num_threads(1).max_threads(4).build());
        let out = Arc::new(Mutex::new(Vec::new()));
        struct Push {
            i: u64,
            out: Arc<Mutex<Vec<u64>>>,
        }
        impl crate::PipelineIteration for Push {
            fn run_node(&mut self, _stage: u64) -> crate::NodeOutcome {
                self.out.lock().unwrap().push(self.i);
                crate::NodeOutcome::Done
            }
        }
        let sink = Arc::clone(&out);
        let handle = crate::spawn_pipe(&pool, crate::PipeOptions::with_throttle(3), move |i| {
            if i == 400 {
                return crate::Stage0::Stop;
            }
            crate::Stage0::wait(Push {
                i,
                out: Arc::clone(&sink),
            })
        });
        for target in [4usize, 1, 3, 2, 4, 1] {
            pool.resize(target);
            thread::sleep(Duration::from_micros(500));
        }
        let stats = handle.join().unwrap();
        assert_eq!(stats.iterations, 400);
        assert_eq!(*out.lock().unwrap(), (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn occupancy_reports_band_and_pipes() {
        let pool = ThreadPool::builder().num_threads(2).max_threads(3).build();
        let occ = pool.occupancy();
        assert_eq!(occ.active_workers, 2);
        assert_eq!(occ.max_workers, 3);
        assert_eq!(occ.pipes_running, 0);
    }

    #[test]
    fn metrics_count_jobs() {
        let pool = ThreadPool::new(2);
        let before = pool.metrics();
        for _ in 0..10 {
            pool.install(|| ());
        }
        let after = pool.metrics();
        assert!(after.since(&before).jobs_executed >= 10);
    }
}
