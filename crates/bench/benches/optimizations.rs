//! Ablation benchmarks of the two runtime optimizations of Section 9:
//! lazy enabling and dependency folding (the Figure 9 study).

use criterion::{criterion_group, criterion_main, Criterion};
use piper::{PipeOptions, ThreadPool};
use std::hint::black_box;
use workloads::pipefib::{self, PipeFibConfig};

fn bench_optimizations(c: &mut Criterion) {
    let pool = ThreadPool::new(2);
    let fine = PipeFibConfig {
        n: 800,
        block_bits: 1,
    };
    let coarse = PipeFibConfig::coarsened(800);

    for (name, folding, lazy) in [
        ("folding_on_lazy_on", true, true),
        ("folding_off_lazy_on", false, true),
        ("folding_on_lazy_off", true, false),
        ("folding_off_lazy_off", false, false),
    ] {
        let options = PipeOptions::default()
            .dependency_folding(folding)
            .lazy_enabling(lazy);
        c.bench_function(&format!("optimizations/pipefib_fine_{name}"), |b| {
            b.iter(|| black_box(pipefib::run_piper(&fine, &pool, options.clone())));
        });
    }

    c.bench_function("optimizations/pipefib_coarse_folding_on", |b| {
        b.iter(|| black_box(pipefib::run_piper(&coarse, &pool, PipeOptions::default())));
    });
    c.bench_function("optimizations/pipefib_coarse_folding_off", |b| {
        b.iter(|| {
            black_box(pipefib::run_piper(
                &coarse,
                &pool,
                PipeOptions::default().dependency_folding(false),
            ))
        });
    });
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_optimizations
}
criterion_main!(benches);
