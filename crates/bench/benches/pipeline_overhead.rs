//! Serial overhead of `pipe_while` (the `T_1/T_S` columns of the paper's
//! tables): the same computation as a plain loop, as a PIPER pipeline on
//! one worker, and on the bind-to-stage baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use piper::{PipeOptions, StagedPipeline, ThreadPool};
use std::hint::black_box;

const N: u64 = 5_000;
const WORK: u64 = 200;

fn stage_work(x: u64) -> u64 {
    let mut acc = x;
    for k in 0..WORK {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
    }
    acc
}

fn bench_overhead(c: &mut Criterion) {
    c.bench_function("pipeline_overhead/serial_loop", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for i in 0..N {
                sum = sum
                    .wrapping_add(stage_work(i))
                    .wrapping_add(stage_work(i ^ 0xFF));
            }
            black_box(sum)
        });
    });

    let pool1 = ThreadPool::new(1);
    c.bench_function("pipeline_overhead/pipe_while_1_worker", |b| {
        b.iter(|| {
            let mut next = 0u64;
            let stats = StagedPipeline::<u64>::new()
                .parallel(|x| *x = stage_work(*x))
                .serial(|x| {
                    black_box(stage_work(*x ^ 0xFF));
                })
                .run(&pool1, PipeOptions::default(), move || {
                    if next == N {
                        None
                    } else {
                        next += 1;
                        Some(next - 1)
                    }
                });
            black_box(stats.iterations)
        });
    });

    c.bench_function("pipeline_overhead/bind_to_stage", |b| {
        b.iter(|| {
            let stages: baselines::StageSet<u64> = baselines::StageSet::new()
                .parallel(|x| *x = stage_work(*x))
                .serial(|x| {
                    black_box(stage_work(*x ^ 0xFF));
                });
            let pipeline = baselines::BindToStagePipeline::new(
                stages,
                baselines::BindToStageConfig {
                    threads_per_parallel_stage: 1,
                    queue_capacity: 16,
                },
            );
            let mut next = 0u64;
            black_box(pipeline.run(move || {
                if next == N {
                    None
                } else {
                    next += 1;
                    Some(next - 1)
                }
            }))
        });
    });
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_overhead
}
criterion_main!(benches);
