//! Microbenchmarks of the fork-join layer: join overhead and parallel-for.

use criterion::{criterion_group, criterion_main, Criterion};
use piper::ThreadPool;
use std::hint::black_box;

fn fib(pool: &ThreadPool, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    if n < 16 {
        return fib_seq(n);
    }
    let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
    a + b
}

fn fib_seq(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_seq(n - 1) + fib_seq(n - 2)
    }
}

fn bench_forkjoin(c: &mut Criterion) {
    let pool = ThreadPool::new(2);

    c.bench_function("forkjoin/fib_26_join", |b| {
        b.iter(|| black_box(fib(&pool, 26)));
    });
    c.bench_function("forkjoin/fib_26_serial", |b| {
        b.iter(|| black_box(fib_seq(26)));
    });

    c.bench_function("forkjoin/par_for_64k", |b| {
        let data: Vec<u64> = (0..65_536).collect();
        b.iter(|| {
            let sum = std::sync::atomic::AtomicU64::new(0);
            pool.par_for(0..data.len(), 1024, |i| {
                sum.fetch_add(data[i], std::sync::atomic::Ordering::Relaxed);
            });
            black_box(sum.into_inner())
        });
    });
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_forkjoin
}
criterion_main!(benches);
