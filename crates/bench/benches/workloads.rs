//! End-to-end benchmarks of the PARSEC-analogue workloads (small inputs):
//! serial vs one-worker PIPER, giving the measured serial-overhead component
//! of Figures 6–8.

use criterion::{criterion_group, criterion_main, Criterion};
use piper::{PipeOptions, ThreadPool};
use std::hint::black_box;
use workloads::{dedup, ferret, pipefib, x264};

fn bench_workloads(c: &mut Criterion) {
    let pool = ThreadPool::new(1);

    let fcfg = ferret::FerretConfig {
        queries: 48,
        database_size: 96,
        ..ferret::FerretConfig::tiny()
    };
    let index = ferret::build_index(&fcfg);
    c.bench_function("workloads/ferret_serial", |b| {
        b.iter(|| black_box(ferret::run_serial(&fcfg, &index)));
    });
    c.bench_function("workloads/ferret_piper_1w", |b| {
        b.iter(|| {
            black_box(ferret::run_piper(
                &fcfg,
                &index,
                &pool,
                PipeOptions::default(),
            ))
        });
    });

    let dcfg = dedup::DedupConfig::tiny();
    let input = dcfg.generate_input();
    c.bench_function("workloads/dedup_serial", |b| {
        b.iter(|| black_box(dedup::run_serial(&dcfg, &input)));
    });
    c.bench_function("workloads/dedup_piper_1w", |b| {
        b.iter(|| {
            black_box(dedup::run_piper(
                &dcfg,
                &input,
                &pool,
                PipeOptions::default(),
            ))
        });
    });

    let xcfg = x264::X264Config::tiny();
    c.bench_function("workloads/x264_serial", |b| {
        b.iter(|| black_box(x264::run_serial(&xcfg)));
    });
    c.bench_function("workloads/x264_piper_1w", |b| {
        b.iter(|| black_box(x264::run_piper(&xcfg, &pool, PipeOptions::default())));
    });

    let pcfg = pipefib::PipeFibConfig {
        n: 1_000,
        block_bits: 1,
    };
    c.bench_function("workloads/pipefib_serial", |b| {
        b.iter(|| black_box(pipefib::run_serial(&pcfg)));
    });
    c.bench_function("workloads/pipefib_piper_1w", |b| {
        b.iter(|| black_box(pipefib::run_piper(&pcfg, &pool, PipeOptions::default())));
    });
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_workloads
}
criterion_main!(benches);
