//! Microbenchmarks of the Chase–Lev deque substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wsdeque::{deque, Steal};

fn bench_deque(c: &mut Criterion) {
    c.bench_function("deque/push_pop_1k", |b| {
        let (w, _s) = deque::<u64>();
        b.iter(|| {
            for i in 0..1_000u64 {
                w.push(black_box(i));
            }
            let mut sum = 0u64;
            while let Some(v) = w.pop() {
                sum += v;
            }
            black_box(sum)
        });
    });

    c.bench_function("deque/steal_1k", |b| {
        let (w, s) = deque::<u64>();
        b.iter(|| {
            for i in 0..1_000u64 {
                w.push(i);
            }
            let mut sum = 0u64;
            loop {
                match s.steal() {
                    Steal::Success(v) => sum += v,
                    Steal::Empty => break,
                    Steal::Retry => {}
                }
            }
            black_box(sum)
        });
    });

    c.bench_function("deque/swap_tail", |b| {
        let (w, _s) = deque::<u64>();
        w.push(1);
        b.iter(|| {
            let prev = w.swap_tail(black_box(2)).unwrap();
            black_box(prev)
        });
    });
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_deque
}
criterion_main!(benches);
