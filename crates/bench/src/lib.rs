//! Shared helpers for the evaluation harness (table and figure binaries).
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper;
//! see `DESIGN.md` (per-experiment index) and `EXPERIMENTS.md` for the
//! mapping. The binaries combine two kinds of measurements:
//!
//! * **real executions** on the host — the serial reference `T_S`, the
//!   one-worker runtime `T_1` (serial overhead), correctness checks, and
//!   runtime counters (steals, live iterations, cross-edge checks);
//! * **simulated schedules** over recorded/synthetic weighted dags (via
//!   `pipedag::simulator`) — used for the `P`-processor sweeps, so the
//!   tables' *shape* (speedup/scalability trends, who wins) can be
//!   reproduced even when the host has fewer cores than the paper's
//!   16-core test machine.

use std::time::{Duration, Instant};

/// The processor counts used by the paper's tables (Figures 6–8).
pub const PAPER_PROCESSOR_COUNTS: [usize; 6] = [1, 2, 4, 8, 12, 16];

/// Measures the wall-clock time of `f`, returning (result, elapsed).
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Runs `f` `runs` times and returns the mean duration (after one warm-up).
pub fn time_mean<R>(runs: usize, mut f: impl FnMut() -> R) -> Duration {
    let _ = f();
    let mut total = Duration::ZERO;
    for _ in 0..runs.max(1) {
        let (_, d) = time(&mut f);
        total += d;
    }
    total / runs.max(1) as u32
}

/// Formats a duration in seconds with 3 decimal places.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// A simple fixed-width table printer for the harness binaries.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have the same arity as the header).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(&["P", "speedup"]);
        t.row(vec!["1".into(), "1.00".into()]);
        t.row(vec!["16".into(), "13.87".into()]);
        let s = t.render();
        assert!(s.contains("speedup"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn time_measures_something() {
        let (v, d) = time(|| (0..10_000u64).sum::<u64>());
        assert_eq!(v, 49995000);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    #[should_panic]
    fn row_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
