//! Regenerates Figure 9: the pipe-fib study of serial overhead and the
//! dependency-folding optimization, for the fine-grained pipeline and the
//! coarsened pipe-fib-256 variant.

use pipe_bench::{secs, time, Table};
use pipedag::simulate_piper;
use piper::{PipeOptions, ThreadPool};
use workloads::pipefib::{self, PipeFibConfig};

fn run_variant(
    name: &str,
    config: &PipeFibConfig,
    folding: bool,
    t_s: std::time::Duration,
    serial_bits: &[u8],
    table: &mut Table,
) {
    let pool1 = ThreadPool::new(1);
    let options = PipeOptions::default().dependency_folding(folding);
    let ((stats1,), t_1) = time(|| {
        let (bits, stats) = pipefib::run_piper(config, &pool1, options.clone());
        assert_eq!(bits, serial_bits, "pipe-fib output must match serial");
        (stats,)
    });

    // Scalability on 16 processors comes from the simulated schedule of the
    // triangular dag (the host may have fewer cores).
    let spec = pipefib::build_spec(config, 1);
    let sim1 = simulate_piper(&spec, 1, Some(4));
    let sim16 = simulate_piper(&spec, 16, Some(64));
    let scalability = sim1.makespan as f64 / sim16.makespan as f64;

    table.row(vec![
        name.to_string(),
        if folding { "yes" } else { "no" }.to_string(),
        secs(t_s),
        secs(t_1),
        format!("{:.2}", t_1.as_secs_f64() / t_s.as_secs_f64()),
        format!("{:.2}", scalability),
        stats1.cross_checks.to_string(),
        stats1.folded_checks.to_string(),
    ]);
}

fn main() {
    let n = 6_000;
    let fine = PipeFibConfig { n, block_bits: 1 };
    let coarse = PipeFibConfig::coarsened(n);

    let (serial_bits, t_s) = time(|| pipefib::run_serial(&fine));

    println!("pipe-fib: F_{n} in binary; fine-grained (1 bit/stage) vs coarsened (256 bits/stage)");
    println!();
    let mut table = Table::new(&[
        "program",
        "dep. folding",
        "T_S",
        "T_1",
        "overhead T_1/T_S",
        "scalability T_1/T_16 (sim)",
        "stage-counter reads",
        "folded checks",
    ]);
    run_variant("pipe-fib", &fine, false, t_s, &serial_bits, &mut table);
    run_variant(
        "pipe-fib-256",
        &coarse,
        false,
        t_s,
        &serial_bits,
        &mut table,
    );
    run_variant("pipe-fib", &fine, true, t_s, &serial_bits, &mut table);
    run_variant("pipe-fib-256", &coarse, true, t_s, &serial_bits, &mut table);
    println!("Figure 9 (shape): dependency folding removes most stage-counter reads for the");
    println!("fine-grained pipeline; coarsening helps both overhead and scalability.");
    table.print();
}
