//! Regenerates the Section 1 / Figure 1 analysis: work, span and
//! parallelism of the ferret-style SPS pipeline, comparing the paper's
//! closed forms (T1 = n(r+2), T∞ ≈ n + r, parallelism ≥ r/2 + 1) with the
//! dag analyzer.

use pipe_bench::Table;
use pipedag::{analyze, analyze_unthrottled, generators};

fn main() {
    println!("Figure 1 / Section 1: SPS pipeline work-span analysis (serial stages cost 1, parallel stage costs r)");
    println!();
    let mut table = Table::new(&[
        "n",
        "r",
        "T1 (analyzer)",
        "T1 = n(r+2)",
        "Tinf (analyzer)",
        "Tinf ~ n+r",
        "parallelism",
        "r/2+1",
        "Tinf throttled K=16",
    ]);
    for (n, r) in [
        (100usize, 10u64),
        (1000, 10),
        (1000, 100),
        (4000, 256),
        (10000, 64),
    ] {
        let spec = generators::sps(n, 1, r, 1);
        let a = analyze_unthrottled(&spec);
        let throttled = analyze(&spec, Some(16));
        table.row(vec![
            n.to_string(),
            r.to_string(),
            a.work.to_string(),
            (n as u64 * (r + 2)).to_string(),
            a.span.to_string(),
            (n as u64 + r).to_string(),
            format!("{:.1}", a.parallelism()),
            format!("{:.1}", r as f64 / 2.0 + 1.0),
            throttled.span.to_string(),
        ]);
    }
    table.print();
    println!("The analyzer's span differs from the paper's closed form by exactly 1 (a boundary convention).");
}
