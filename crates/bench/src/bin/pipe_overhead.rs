//! Serial-overhead and throughput microbenchmark for `pipe_while`
//! (`BENCH_piper.json` trajectory).
//!
//! The paper's Figure 6 reports `T_1/T_S` — the one-worker PIPER time over
//! the serial reference — as the *serial overhead* of the runtime, and its
//! whole design argument is that per-node bookkeeping must be cheap enough
//! to keep that ratio near 1 even for fine-grained pipelines. This binary
//! measures exactly that regime on two workloads:
//!
//! * **pipe-fib** (fine-grained, `block_bits = 1`): `Θ(n²)` nodes of
//!   near-zero work, every stage serial — the worst case for per-node
//!   overhead and the Figure 9 setting;
//! * **uniform** (Theorem 12's grid): `n × s` equal-cost nodes, with a
//!   near-empty and a moderate per-node cost variant.
//!
//! For each workload it reports `T_S` (serial reference), `T_1` (PIPER on
//! one worker), the overhead ratio `T_1/T_S`, the per-node overhead in
//! nanoseconds `(T_1 − T_S)/nodes`, and `T_P` on all available workers.
//!
//! The results are written to `BENCH_piper.json` (override with
//! `PIPE_BENCH_OUT`). Set `PIPE_BENCH_QUICK=1` for a seconds-scale smoke
//! run (used by CI), `PIPE_BENCH_LABEL` to tag the runtime variant being
//! measured, and `PIPE_BENCH_COMPARE=<path>` to embed a previously emitted
//! JSON file verbatim under `"baseline"` for before/after records.

use std::time::Duration;

use pipe_bench::{time_mean, Table};
use piper::{PipeOptions, PipeStats, ThreadPool};
use workloads::{pipefib, uniform};

/// One measured workload configuration.
struct Entry {
    workload: &'static str,
    iterations: u64,
    nodes: u64,
    t_serial: Duration,
    t_one: Duration,
    t_par: Duration,
    par_workers: usize,
    stats_one: PipeStats,
}

impl Entry {
    fn overhead_ratio(&self) -> f64 {
        self.t_one.as_secs_f64() / self.t_serial.as_secs_f64().max(1e-12)
    }

    fn per_node_overhead_ns(&self) -> f64 {
        let extra =
            self.t_one.as_secs_f64().max(self.t_serial.as_secs_f64()) - self.t_serial.as_secs_f64();
        extra * 1e9 / self.nodes.max(1) as f64
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"workload\": \"{}\",\n",
                "      \"iterations\": {},\n",
                "      \"nodes\": {},\n",
                "      \"t_serial_s\": {:.6},\n",
                "      \"t_1worker_s\": {:.6},\n",
                "      \"t_pworkers_s\": {:.6},\n",
                "      \"p_workers\": {},\n",
                "      \"overhead_ratio_t1_over_ts\": {:.4},\n",
                "      \"per_node_overhead_ns\": {:.2},\n",
                "      \"cross_checks\": {},\n",
                "      \"folded_checks\": {},\n",
                "      \"peak_active_iterations\": {},\n",
                "      \"frame_allocations\": {},\n",
                "      \"frame_reuses\": {}\n",
                "    }}"
            ),
            self.workload,
            self.iterations,
            self.nodes,
            self.t_serial.as_secs_f64(),
            self.t_one.as_secs_f64(),
            self.t_par.as_secs_f64(),
            self.par_workers,
            self.overhead_ratio(),
            self.per_node_overhead_ns(),
            self.stats_one.cross_checks,
            self.stats_one.folded_checks,
            self.stats_one.peak_active_iterations,
            self.stats_one.frame_allocations,
            self.stats_one.frame_reuses,
        )
    }
}

fn bench_pipefib(n: usize, runs: usize, pool1: &ThreadPool, poolp: &ThreadPool) -> Entry {
    let config = pipefib::PipeFibConfig { n, block_bits: 1 };
    let expected = pipefib::run_serial(&config);
    let t_serial = time_mean(runs, || std::hint::black_box(pipefib::run_serial(&config)));
    let mut stats_one = PipeStats::default();
    let t_one = time_mean(runs, || {
        let (bits, stats) = pipefib::run_piper(&config, pool1, PipeOptions::default());
        assert_eq!(bits, expected, "pipe-fib result mismatch on 1 worker");
        stats_one = stats;
        stats.nodes
    });
    let t_par = time_mean(runs, || {
        let (bits, stats) = pipefib::run_piper(&config, poolp, PipeOptions::default());
        assert_eq!(bits, expected, "pipe-fib result mismatch on P workers");
        stats.nodes
    });
    Entry {
        workload: "pipefib_fine",
        iterations: stats_one.iterations,
        nodes: stats_one.nodes,
        t_serial,
        t_one,
        t_par,
        par_workers: poolp.num_threads(),
        stats_one,
    }
}

fn bench_uniform(
    label: &'static str,
    config: uniform::UniformConfig,
    runs: usize,
    pool1: &ThreadPool,
    poolp: &ThreadPool,
) -> Entry {
    let expected = uniform::run_serial(&config);
    let t_serial = time_mean(runs, || std::hint::black_box(uniform::run_serial(&config)));
    let mut stats_one = PipeStats::default();
    let t_one = time_mean(runs, || {
        let (out, stats) = uniform::run_piper(&config, pool1, PipeOptions::default());
        assert_eq!(out, expected, "uniform result mismatch on 1 worker");
        stats_one = stats;
        stats.nodes
    });
    let t_par = time_mean(runs, || {
        let (out, stats) = uniform::run_piper(&config, poolp, PipeOptions::default());
        assert_eq!(out, expected, "uniform result mismatch on P workers");
        stats.nodes
    });
    Entry {
        workload: label,
        iterations: stats_one.iterations,
        nodes: stats_one.nodes + stats_one.iterations, // Stage 0 runs in the producer
        t_serial,
        t_one,
        t_par,
        par_workers: poolp.num_threads(),
        stats_one,
    }
}

fn main() {
    let quick = std::env::var("PIPE_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let label = std::env::var("PIPE_BENCH_LABEL").unwrap_or_else(|_| "current".to_string());
    let out_path =
        std::env::var("PIPE_BENCH_OUT").unwrap_or_else(|_| "BENCH_piper.json".to_string());
    let baseline = std::env::var("PIPE_BENCH_COMPARE")
        .ok()
        .and_then(|p| std::fs::read_to_string(p).ok());

    let p = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pool1 = ThreadPool::new(1);
    let poolp = ThreadPool::new(p);

    let (fib_n, runs) = if quick { (500, 2) } else { (2_000, 5) };
    let uniform_fine = uniform::UniformConfig {
        iterations: if quick { 4_000 } else { 30_000 },
        stages: 8,
        work_rounds: 1,
    };
    let uniform_coarse = uniform::UniformConfig {
        iterations: if quick { 500 } else { 2_000 },
        stages: 8,
        work_rounds: 500,
    };

    let buf_before = checksum::buf::global_stats();
    let entries = vec![
        bench_pipefib(fib_n, runs, &pool1, &poolp),
        bench_uniform("uniform_fine", uniform_fine, runs, &pool1, &poolp),
        bench_uniform(
            "uniform_coarse",
            uniform_coarse,
            runs.min(3),
            &pool1,
            &poolp,
        ),
    ];
    let buf_after = checksum::buf::global_stats();
    let chunks_created = buf_after.chunks_created - buf_before.chunks_created;
    let bytes_copied = buf_after.bytes_copied - buf_before.bytes_copied;

    let mut table = Table::new(&[
        "workload",
        "nodes",
        "T_S (s)",
        "T_1 (s)",
        "T_1/T_S",
        "ovh/node (ns)",
        &format!("T_{p} (s)"),
    ]);
    for e in &entries {
        table.row(vec![
            e.workload.to_string(),
            e.nodes.to_string(),
            format!("{:.4}", e.t_serial.as_secs_f64()),
            format!("{:.4}", e.t_one.as_secs_f64()),
            format!("{:.3}", e.overhead_ratio()),
            format!("{:.1}", e.per_node_overhead_ns()),
            format!("{:.4}", e.t_par.as_secs_f64()),
        ]);
    }
    println!("pipe_overhead — serial overhead of pipe_while (label: {label})");
    println!("{}", table.render());

    let entry_json: Vec<String> = entries.iter().map(Entry::json).collect();
    let baseline_json = match &baseline {
        Some(raw) => format!(",\n  \"baseline\": {}", raw.trim_end()),
        None => String::new(),
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pipe_overhead\",\n",
            "  \"label\": \"{}\",\n",
            "  \"quick\": {},\n",
            "  \"host_workers\": {},\n",
            "  \"buf\": {{\n",
            "    \"chunks_created\": {},\n",
            "    \"bytes_copied\": {},\n",
            "    \"copies_per_chunk\": {:.1}\n",
            "  }},\n",
            "  \"entries\": [\n{}\n  ]{}\n",
            "}}\n"
        ),
        label,
        quick,
        p,
        chunks_created,
        bytes_copied,
        bytes_copied as f64 / chunks_created.max(1) as f64,
        entry_json.join(",\n"),
        baseline_json,
    );
    std::fs::write(&out_path, &json).expect("failed to write benchmark JSON");
    println!("wrote {out_path}");
}
