//! Regenerates Figure 8: x264 performance (Cilk-P vs Pthreads-style). As in
//! the paper, there is no TBB column: the construct-and-run model cannot
//! express x264's on-the-fly pipeline.

use pipe_bench::{secs, time, Table, PAPER_PROCESSOR_COUNTS};
use pipedag::{simulate_bind_to_stage, simulate_piper, BindToStageConfig};
use piper::{PipeOptions, ThreadPool};
use workloads::x264;

fn main() {
    let config = x264::X264Config::default();

    // Real executions: serial and one-worker PIPER, checked for equality.
    let (serial_out, t_s) = time(|| x264::run_serial(&config));
    let pool1 = ThreadPool::new(1);
    let ((), t_1) = time(|| {
        let out = x264::run_piper(&config, &pool1, PipeOptions::with_throttle(4));
        assert_eq!(out, serial_out, "PIPER output must match serial");
    });
    println!(
        "x264 (synthetic video): {} frames {}x{}, gop {}, {} B-frames",
        config.frames, config.width, config.height, config.gop, config.bframes
    );
    println!(
        "measured on this host:  T_S = {}s   T_1 = {}s   serial overhead T_1/T_S = {:.3}",
        secs(t_s),
        secs(t_1),
        t_1.as_secs_f64() / t_s.as_secs_f64()
    );
    println!();

    // Weighted dag for the processor sweep: per-row cost from the measured
    // serial time divided across row nodes.
    let rows_per_frame = (config.height / 16) as u64;
    let ip_frames = serial_out.len() as u64;
    let row_work = (t_s.as_nanos() as u64 / (ip_frames * rows_per_frame).max(1)).max(1);
    let spec = x264::build_spec(&config, row_work, row_work * 2, row_work / 4 + 1);
    let analysis = pipedag::analyze_unthrottled(&spec);
    println!(
        "x264 dag: {} iterations, work = {} ms, span = {} ms, parallelism = {:.1}",
        spec.num_iterations(),
        analysis.work / 1_000_000,
        analysis.span / 1_000_000,
        analysis.parallelism()
    );
    println!();

    let serial_time = spec.work();
    let mut table = Table::new(&[
        "P",
        "Cilk-P speedup",
        "Pthreads speedup",
        "Cilk-P scalability",
    ]);
    for &p in &PAPER_PROCESSOR_COUNTS {
        let cilkp = simulate_piper(&spec, p, Some(4 * p));
        // The Pthreads x264 uses its own row-level threading; bind-to-stage
        // over the same dag is the closest queue-based analogue.
        let pthreads = simulate_bind_to_stage(
            &spec,
            p,
            BindToStageConfig {
                threads_per_parallel_stage: p.max(1),
                queue_capacity: 4 * p,
            },
        );
        let t1 = simulate_piper(&spec, 1, Some(4)).makespan;
        table.row(vec![
            p.to_string(),
            format!("{:.2}", cilkp.speedup_vs(serial_time)),
            format!("{:.2}", pthreads.speedup_vs(serial_time)),
            format!("{:.2}", t1 as f64 / cilkp.makespan as f64),
        ]);
    }
    println!("Figure 8 (shape): simulated schedule of the x264 dag, K = 4P (no TBB column: not expressible)");
    table.print();
}
