//! Load generator for the `pipeserve` multi-tenant pipeline executor
//! (`BENCH_pipeserve.json` trajectory).
//!
//! Drives a mixed fleet of dedup / ferret / x264 / pipe-fib jobs through a
//! [`pipeserve::ShardedService`] at several open-loop arrival rates — once
//! on a single shard (the PR-3 baseline shape) and once sharded N ways with
//! elastic pools — and reports, per (shard count, rate):
//!
//! * **throughput** (completed jobs per second of wall clock),
//! * **job latency** p50 / p99 (submit → terminal state, measured at the
//!   moment the job finishes),
//! * **rejection rate** (backpressure: bounded queue + frame budget),
//! * the service's aggregate counters (admitted, completed, peak queue
//!   depth, peak frame usage).
//!
//! After the rate sweep, a **zipf phase** replays one fixed zipf(1.0)-
//! distributed sequence of distinct inputs over the four byte workloads
//! through two identical executors — plain submissions vs content-keyed
//! through [`pipeserve::CachedService`] — and reports hit rate, p50/p99
//! and the cached/uncached throughput ratio (the `"zipf"` JSON section;
//! full mode enforces a 2x speedup floor).
//!
//! Every completed job's output is verified against the workload's serial
//! reference — cached responses included — so a scheduling or caching bug
//! cannot hide behind good numbers. The results are written to
//! `BENCH_pipeserve.json` (override with `PIPESERVE_BENCH_OUT`).
//!
//! Flags / environment:
//!
//! * `--quick` (or `PIPESERVE_BENCH_QUICK=1`) — seconds-scale smoke run
//!   (used by CI);
//! * `--shards N` (or `PIPESERVE_BENCH_SHARDS=N`) — the sharded
//!   configuration's shard count (default 2); the sweep always also runs
//!   the 1-shard baseline, so the emitted JSON is a direct comparison.
//!   `--shards 1` skips the sharded pass;
//! * `--fail-on-rejections` — exit non-zero if the *lowest* (smoke)
//!   arrival rate of any shard configuration rejected a job: at the smoke
//!   rate the service must absorb the full offered load.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pipe_bench::Table;
use piper::PipeOptions;
use pipeserve::{
    CachedService, ContentKey, JobHandle, JobSpec, OutputSink, PipeService, Priority,
    ServiceMetricsSnapshot, ShardedService, SinkLaunchFn, Submit, SubmitError,
};

/// Per-job verification: checks the completed job's output against the
/// serial reference for its workload type.
type Verifier = Box<dyn FnOnce() -> Result<(), String> + Send>;

/// Expected outputs, computed once from the serial references.
struct Mix {
    dedup_config: workloads::dedup::DedupConfig,
    dedup_input: Vec<u8>,
    dedup_expected: workloads::dedup::Archive,
    ferret_config: workloads::ferret::FerretConfig,
    ferret_index: Arc<workloads::ferret::Index>,
    ferret_expected: workloads::ferret::FerretOutput,
    x264_config: workloads::x264::X264Config,
    x264_expected: workloads::x264::X264Output,
    fib_config: workloads::pipefib::PipeFibConfig,
    fib_expected: Vec<u8>,
}

impl Mix {
    fn prepare() -> Mix {
        let dedup_config = workloads::dedup::DedupConfig::tiny();
        let dedup_input = dedup_config.generate_input();
        let dedup_expected = workloads::dedup::run_serial(&dedup_config, &dedup_input);
        let ferret_config = workloads::ferret::FerretConfig::tiny();
        let ferret_index = workloads::ferret::build_index(&ferret_config);
        let ferret_expected = workloads::ferret::run_serial(&ferret_config, &ferret_index);
        let x264_config = workloads::x264::X264Config::tiny();
        let x264_expected = workloads::x264::run_serial(&x264_config);
        let fib_config = workloads::pipefib::PipeFibConfig::tiny();
        let fib_expected = workloads::pipefib::run_serial(&fib_config);
        Mix {
            dedup_config,
            dedup_input,
            dedup_expected,
            ferret_config,
            ferret_index,
            ferret_expected,
            x264_config,
            x264_expected,
            fib_config,
            fib_expected,
        }
    }

    /// The `i`-th job of the fleet: cycles through the four workloads and
    /// the three priority classes.
    fn job(&self, i: usize) -> (&'static str, JobSpec, Verifier) {
        let priority = [Priority::Interactive, Priority::Normal, Priority::Batch][i % 3];
        let options = PipeOptions::with_throttle(4);
        match i % 4 {
            0 => {
                let (launch, sink) =
                    workloads::dedup::piper_launch(&self.dedup_config, &self.dedup_input);
                let expected = self.dedup_expected.clone();
                let verify: Verifier = Box::new(move || {
                    if *sink.lock().unwrap() == expected {
                        Ok(())
                    } else {
                        Err("dedup archive mismatch".into())
                    }
                });
                (
                    "dedup",
                    JobSpec::from_launch(options, launch)
                        .named("dedup")
                        .priority(priority),
                    verify,
                )
            }
            1 => {
                let (launch, sink) =
                    workloads::ferret::piper_launch(&self.ferret_config, &self.ferret_index);
                let expected = self.ferret_expected.clone();
                let verify: Verifier = Box::new(move || {
                    if *sink.lock().unwrap() == expected {
                        Ok(())
                    } else {
                        Err("ferret ranking mismatch".into())
                    }
                });
                (
                    "ferret",
                    JobSpec::from_launch(options, launch)
                        .named("ferret")
                        .priority(priority),
                    verify,
                )
            }
            2 => {
                let (launch, sink) = workloads::x264::piper_launch(&self.x264_config);
                let expected = self.x264_expected.clone();
                let verify: Verifier = Box::new(move || {
                    if *sink.lock().unwrap() == expected {
                        Ok(())
                    } else {
                        Err("x264 output mismatch".into())
                    }
                });
                (
                    "x264",
                    JobSpec::from_launch(options, launch)
                        .named("x264")
                        .priority(priority),
                    verify,
                )
            }
            _ => {
                let (launch, extract) = workloads::pipefib::piper_launch(&self.fib_config);
                let expected = self.fib_expected.clone();
                let verify: Verifier = Box::new(move || {
                    if extract() == expected {
                        Ok(())
                    } else {
                        Err("pipe-fib bits mismatch".into())
                    }
                });
                (
                    "pipefib",
                    JobSpec::from_launch(options, launch)
                        .named("pipefib")
                        .priority(priority),
                    verify,
                )
            }
        }
    }
}

/// Results of one (shard count, arrival rate) run.
struct RunResult {
    shards: usize,
    rate: f64,
    offered: usize,
    rejected: u64,
    completed: u64,
    wall: Duration,
    /// Submit-to-terminal latency distribution (nanoseconds; quantiles
    /// overestimate by < 6.25 %, see [`obs::Histogram`]).
    latency: obs::HistogramSnapshot,
    /// The service's aggregate counters at the end of the run.
    metrics: ServiceMetricsSnapshot,
    /// Jobs placement routed to each shard.
    placements: Vec<u64>,
}

impl RunResult {
    fn rejection_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.rejected as f64 / self.offered as f64
        }
    }

    fn throughput(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn percentile(&self, p: f64) -> f64 {
        self.latency.quantile(p) as f64 / 1e6
    }

    fn json(&self) -> String {
        // The service-level counters come from the one shared formatter
        // (`ServiceMetricsSnapshot::to_json`); only the harness-side
        // measurements are rendered here.
        let placements: Vec<String> = self.placements.iter().map(|p| p.to_string()).collect();
        format!(
            concat!(
                "    {{\n",
                "      \"shards\": {},\n",
                "      \"placements\": [{}],\n",
                "      \"arrival_rate_jobs_per_s\": {:.1},\n",
                "      \"offered_jobs\": {},\n",
                "      \"rejected_jobs\": {},\n",
                "      \"rejection_rate\": {:.4},\n",
                "      \"completed_jobs\": {},\n",
                "      \"wall_s\": {:.4},\n",
                "      \"throughput_jobs_per_s\": {:.1},\n",
                "      \"latency_p50_ms\": {:.3},\n",
                "      \"latency_p99_ms\": {:.3},\n",
                "      \"service_metrics\": {}\n",
                "    }}"
            ),
            self.shards,
            placements.join(","),
            self.rate,
            self.offered,
            self.rejected,
            self.rejection_rate(),
            self.completed,
            self.wall.as_secs_f64(),
            self.throughput(),
            self.percentile(0.50),
            self.percentile(0.99),
            self.metrics.to_json(),
        )
    }
}

/// Submits `offered` mixed jobs at `rate` jobs/s (open loop) and waits for
/// the fleet to drain. `workers` is the total across shards and must be
/// divisible by `shards` (the caller equalizes totals across the shard
/// configurations so the comparison isolates the sharding effect, not a
/// worker-count difference); a multi-shard service runs elastic pools
/// (band `[1, workers/shards]`), the daemon's configuration.
fn run_at_rate(
    mix: &Mix,
    shards: usize,
    rate: f64,
    offered: usize,
    workers: usize,
    max_queue: usize,
) -> RunResult {
    assert_eq!(workers % shards, 0, "caller equalizes worker totals");
    let mut builder = ShardedService::builder()
        .shards(shards)
        .workers_per_shard(workers / shards)
        .max_queue_per_shard(max_queue.div_ceil(shards).max(1));
    if shards > 1 {
        builder = builder.elastic_workers(1);
    }
    let service = builder.build();
    let interval = Duration::from_secs_f64(1.0 / rate);
    let start = Instant::now();
    let mut handles: Vec<(JobHandle, Verifier, &'static str)> = Vec::with_capacity(offered);
    let mut rejected = 0u64;
    // Every 16th job carries a span-trace buffer, so the executor-level
    // tracing path (root job span + queue_wait / admission / run children)
    // runs under load, not just in unit tests. Verified after the drain.
    let mut trace_seed = 0x0000_B5ED_5EED_u64;
    let mut traced: Vec<(Arc<obs::TraceBuffer>, &'static str)> = Vec::new();
    for i in 0..offered {
        // Open-loop arrivals: stick to the absolute schedule even if
        // submission itself lags.
        let due = start + interval.mul_f64(i as f64);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let (kind, mut spec, verify) = mix.job(i);
        let trace = if i % 16 == 0 {
            let buffer = Arc::new(obs::TraceBuffer::new(splitmix64(&mut trace_seed), 64));
            spec = spec.traced(Arc::clone(&buffer));
            Some(buffer)
        } else {
            None
        };
        match service.submit(spec) {
            Ok(handle) => {
                if let Some(buffer) = trace {
                    traced.push((buffer, kind));
                }
                handles.push((handle, verify, kind));
            }
            Err(_) => rejected += 1,
        }
    }
    // Join everything first and stop the wall clock before running the
    // serial output verification, so the published throughput measures the
    // service, not the harness's reference comparisons.
    let latency = obs::Histogram::new();
    let mut completed = 0u64;
    let mut verifiers: Vec<(Verifier, &'static str)> = Vec::with_capacity(handles.len());
    for (handle, verify, kind) in handles {
        let result = handle.join();
        if !result.is_completed() {
            eprintln!("ERROR: {kind} job ended as {result:?}");
            std::process::exit(1);
        }
        completed += 1;
        latency.record_duration(handle.latency().expect("joined job has a latency"));
        verifiers.push((verify, kind));
    }
    service.drain();
    let wall = start.elapsed();
    for (verify, kind) in verifiers {
        if let Err(msg) = verify() {
            eprintln!("ERROR: {kind} job verification failed: {msg}");
            std::process::exit(1);
        }
    }
    // Traced jobs joined as completed, so each buffer must hold the full
    // lifecycle tree: exactly one root job span plus queue_wait, admission
    // and run children parented to it.
    for (buffer, kind) in &traced {
        let spans = buffer.dump();
        let roots = spans
            .iter()
            .filter(|s| s.id == obs::ROOT_SPAN_ID && s.kind == obs::SpanKind::Job)
            .count();
        if roots != 1 {
            eprintln!("ERROR: traced {kind} job has {roots} root spans, want 1");
            std::process::exit(1);
        }
        for want in [
            obs::SpanKind::QueueWait,
            obs::SpanKind::Admission,
            obs::SpanKind::Run,
        ] {
            if !spans
                .iter()
                .any(|s| s.kind == want && s.parent == obs::ROOT_SPAN_ID)
            {
                eprintln!(
                    "ERROR: traced {kind} job is missing a {} span under the root",
                    want.name()
                );
                std::process::exit(1);
            }
        }
    }
    let snapshot = service.sharded_metrics();
    RunResult {
        shards,
        rate,
        offered,
        rejected,
        completed,
        wall,
        latency: latency.snapshot(),
        metrics: snapshot.aggregate,
        placements: snapshot.placements,
    }
}

// ------------------------------------------------------------- zipf mix --

/// One distinct input of the zipf universe: a byte workload, its canonical
/// input, and the serial-reference output every response must equal
/// byte-for-byte — whether it ran a pipeline, coalesced onto one, or came
/// out of the result cache.
struct ZipfDoc {
    name: &'static str,
    input: Vec<u8>,
    expected: Vec<u8>,
}

/// `count` distinct documents cycling the four byte workloads, each
/// variant with a parameter tweak that makes its input bytes (and so its
/// content key) unique.
fn zipf_docs(count: usize) -> Vec<ZipfDoc> {
    (0..count)
        .map(|i| {
            let variant = i / 4;
            let (name, input): (&'static str, Vec<u8>) = match i % 4 {
                0 => {
                    let mut input = workloads::dedup::DedupConfig::tiny().generate_input();
                    input.extend_from_slice(&(variant as u32).to_le_bytes());
                    ("dedup", input)
                }
                1 => {
                    let mut config = workloads::ferret::FerretConfig::tiny();
                    config.queries += variant;
                    ("ferret", workloads::bytes::ferret_input(&config))
                }
                2 => {
                    let mut config = workloads::x264::X264Config::tiny();
                    config.frames += variant as u64;
                    ("x264", workloads::bytes::x264_input(&config))
                }
                _ => {
                    let mut config = workloads::pipefib::PipeFibConfig::tiny();
                    config.n += variant;
                    ("pipefib", workloads::bytes::pipefib_input(&config))
                }
            };
            let job = workloads::bytes::lookup(name).expect("registered workload");
            (job.validate)(&input).expect("zipf variant stays in the codec's bounds");
            let expected = (job.serial)(&input).expect("serial reference");
            ZipfDoc {
                name,
                input,
                expected,
            }
        })
        .collect()
}

/// Deterministic 64-bit mixer (splitmix64): the zipf sequence must be
/// identical across hosts and runs so the hit rate the gate checks is a
/// property of the code, not of a sampler.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `offered` zipf(s = 1.0) draws over `distinct` ranks: rank `r` (0-based)
/// has weight `1 / (r + 1)` — the classic heavy head that makes request
/// caching pay.
fn zipf_sequence(distinct: usize, offered: usize, seed: u64) -> Vec<usize> {
    let mut cumulative = Vec::with_capacity(distinct);
    let mut total = 0.0f64;
    for rank in 0..distinct {
        total += 1.0 / (rank + 1) as f64;
        cumulative.push(total);
    }
    let mut state = seed;
    (0..offered)
        .map(|_| {
            let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64 * total;
            cumulative.partition_point(|&c| c <= u).min(distinct - 1)
        })
        .collect()
}

/// One zipf variant run: the same executor capacity either way; `cached`
/// only decides whether submissions carry a content key.
struct ZipfRun {
    completed: u64,
    /// QueueFull re-offers: backpressure handed the spec back intact and
    /// the harness resubmitted it.
    requeued: u64,
    wall: Duration,
    latency: obs::HistogramSnapshot,
    stats: pipeserve::CacheStats,
}

impl ZipfRun {
    fn throughput(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn percentile(&self, p: f64) -> f64 {
        self.latency.quantile(p) as f64 / 1e6
    }

    /// Fraction of keyed submissions served without launching a fresh
    /// pipeline (LRU hits + coalesced attaches). With the fixed sequence
    /// this is deterministic: every distinct document runs exactly once.
    fn hit_rate(&self) -> f64 {
        let keyed = self.stats.hits + self.stats.misses + self.stats.coalesced;
        if keyed == 0 {
            return 0.0;
        }
        (self.stats.hits + self.stats.coalesced) as f64 / keyed as f64
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"completed_jobs\": {},\n",
                "      \"requeued_submissions\": {},\n",
                "      \"wall_s\": {:.4},\n",
                "      \"throughput_jobs_per_s\": {:.1},\n",
                "      \"latency_p50_ms\": {:.3},\n",
                "      \"latency_p99_ms\": {:.3},\n",
                "      \"cache_hits\": {},\n",
                "      \"cache_misses\": {},\n",
                "      \"coalesced\": {},\n",
                "      \"cache_evictions\": {},\n",
                "      \"hit_rate\": {:.4}\n",
                "    }}"
            ),
            self.completed,
            self.requeued,
            self.wall.as_secs_f64(),
            self.throughput(),
            self.percentile(0.50),
            self.percentile(0.99),
            self.stats.hits,
            self.stats.misses,
            self.stats.coalesced,
            self.stats.evictions,
            self.hit_rate(),
        )
    }
}

/// Pushes the zipf sequence through a fresh `CachedService` as fast as
/// admission allows (closed loop: a QueueFull verdict hands the spec back
/// and it is re-offered until admitted), joins everything, and verifies
/// every response byte-identical to its serial reference.
fn run_zipf(
    docs: &[ZipfDoc],
    sequence: &[usize],
    cached: bool,
    workers: usize,
    max_queue: usize,
) -> ZipfRun {
    // Explicit 32 MiB budget: comfortably holds every distinct output (no
    // eviction noise in the comparison) without depending on the
    // frame-budget-derived default.
    let service = CachedService::with_capacity(
        PipeService::builder()
            .num_threads(workers)
            .max_queue(max_queue)
            .build(),
        32 << 20,
    );
    let start = Instant::now();
    type PendingJob = (JobHandle, usize, Arc<Mutex<Vec<u8>>>);
    let mut handles: Vec<PendingJob> = Vec::with_capacity(sequence.len());
    let mut requeued = 0u64;
    for (i, &doc_idx) in sequence.iter().enumerate() {
        let doc = &docs[doc_idx];
        let job = workloads::bytes::lookup(doc.name).expect("registered workload");
        let out = Arc::new(Mutex::new(Vec::new()));
        let sink_out = Arc::clone(&out);
        let sink: OutputSink = Box::new(move |chunk: checksum::buf::Chunk| {
            sink_out.lock().unwrap().extend_from_slice(&chunk)
        });
        let priority = [Priority::Interactive, Priority::Normal, Priority::Batch][i % 3];
        let options = PipeOptions::with_throttle(4);
        let base = if cached {
            let key = ContentKey::new(doc.name, &doc.input);
            let input = doc.input.clone();
            let launch = job.launch;
            let factory: SinkLaunchFn =
                Box::new(move |sink| launch(&input, sink).expect("validated zipf input"));
            JobSpec::keyed(options, key, sink, factory)
        } else {
            JobSpec::from_launch(
                options,
                (job.launch)(&doc.input, sink).expect("validated zipf input"),
            )
        };
        let mut spec = base.named(doc.name).priority(priority);
        loop {
            match service.submit(spec) {
                Ok(handle) => {
                    handles.push((handle, doc_idx, out));
                    break;
                }
                Err(SubmitError::QueueFull(returned)) => {
                    requeued += 1;
                    spec = *returned;
                    std::thread::sleep(Duration::from_micros(100));
                }
                Err(e) => {
                    eprintln!("ERROR: zipf submit failed: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    let latency = obs::Histogram::new();
    for (handle, _, _) in &handles {
        let result = handle.join();
        if !result.is_completed() {
            eprintln!("ERROR: zipf job ended as {result:?}");
            std::process::exit(1);
        }
        latency.record_duration(handle.latency().expect("joined job has a latency"));
    }
    service.drain();
    let wall = start.elapsed();
    // Byte-identical verification after the clock stops, cached responses
    // and fresh runs alike.
    for (_, doc_idx, out) in &handles {
        let doc = &docs[*doc_idx];
        if *out.lock().unwrap() != doc.expected {
            eprintln!(
                "ERROR: zipf {} response differs from the serial reference",
                doc.name
            );
            std::process::exit(1);
        }
    }
    ZipfRun {
        completed: handles.len() as u64,
        requeued,
        wall,
        latency: latency.snapshot(),
        stats: service.cache_stats(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick")
        || std::env::var("PIPESERVE_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let fail_on_rejections = args.iter().any(|a| a == "--fail-on-rejections");
    let shard_count: usize = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|at| args.get(at + 1))
        .cloned()
        .or_else(|| std::env::var("PIPESERVE_BENCH_SHARDS").ok())
        .map(|v| v.parse().expect("--shards takes a positive integer"))
        .unwrap_or(2)
        .max(1);
    let out_path =
        std::env::var("PIPESERVE_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeserve.json".to_string());

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mix = Mix::prepare();

    // The lowest rate is the smoke rate: the service must absorb it without
    // rejections. The higher rates probe saturation, where backpressure
    // (nonzero rejections) is acceptable — quick mode keeps the queue small
    // enough that its overload rate can actually overflow it, so the
    // rejection machinery (and CI's --fail-on-rejections tripwire) is
    // exercised for real, not vacuously.
    let (rates, offered, max_queue): (Vec<f64>, usize, usize) = if quick {
        (vec![50.0, 1000.0], 80, 16)
    } else {
        (vec![100.0, 500.0, 2000.0], 400, 256)
    };

    // 1-shard baseline first, then the sharded configuration — same rates,
    // same offered load, same total worker and queue capacity, so the JSON
    // is a direct single-pool vs sharded comparison. The shared total is
    // what the sharded config needs at ≥1 worker per shard (on a host with
    // fewer cores than shards this rounds the total up — the 1-shard
    // baseline gets those extra threads too, keeping the comparison fair).
    let shard_configs: Vec<usize> = if shard_count > 1 {
        vec![1, shard_count]
    } else {
        vec![1]
    };
    let total_workers = shard_count * workers.div_ceil(shard_count).max(1);
    let mut runs = Vec::new();
    for &shards in &shard_configs {
        for &rate in &rates {
            println!(
                "running {offered} mixed jobs at {rate:.0} jobs/s on {shards} shard(s) \
                 ({total_workers} workers total) ..."
            );
            runs.push(run_at_rate(
                &mix,
                shards,
                rate,
                offered,
                total_workers,
                max_queue,
            ));
        }
    }

    // Zipf phase: the same sequence of zipf(1.0)-distributed inputs over
    // the four byte workloads, pushed through identical executors — once
    // as plain submissions (every job runs a pipeline) and once content-
    // keyed through the result cache (duplicates hit the LRU or coalesce
    // onto the in-flight run). The throughput ratio is the cache's win at
    // equal capacity.
    let (zipf_distinct, zipf_offered) = if quick { (16, 128) } else { (64, 512) };
    println!(
        "zipf phase: {zipf_offered} zipf(1.0) draws over {zipf_distinct} distinct inputs, \
         uncached then cached ..."
    );
    let docs = zipf_docs(zipf_distinct);
    let sequence = zipf_sequence(zipf_distinct, zipf_offered, 0x5EED_CAFE);
    let zipf_uncached = run_zipf(&docs, &sequence, false, total_workers, max_queue);
    let zipf_cached = run_zipf(&docs, &sequence, true, total_workers, max_queue);
    let zipf_speedup = zipf_cached.throughput() / zipf_uncached.throughput().max(1e-9);

    let mut table = Table::new(&[
        "shards",
        "rate (j/s)",
        "offered",
        "rejected",
        "completed",
        "thru (j/s)",
        "p50 (ms)",
        "p99 (ms)",
        "peak q",
        "peak frames",
    ]);
    for r in &runs {
        table.row(vec![
            r.shards.to_string(),
            format!("{:.0}", r.rate),
            r.offered.to_string(),
            r.rejected.to_string(),
            r.completed.to_string(),
            format!("{:.1}", r.throughput()),
            format!("{:.2}", r.percentile(0.5)),
            format!("{:.2}", r.percentile(0.99)),
            r.metrics.peak_queue_depth.to_string(),
            r.metrics.peak_frames_in_use.to_string(),
        ]);
    }
    println!(
        "pipeserve_load — mixed dedup/ferret/x264/pipe-fib fleet on {total_workers} workers \
         (host parallelism {workers})"
    );
    println!("{}", table.render());

    let mut zipf_table = Table::new(&[
        "variant",
        "completed",
        "requeued",
        "thru (j/s)",
        "p50 (ms)",
        "p99 (ms)",
        "hit rate",
    ]);
    for (variant, run) in [("uncached", &zipf_uncached), ("cached", &zipf_cached)] {
        zipf_table.row(vec![
            variant.to_string(),
            run.completed.to_string(),
            run.requeued.to_string(),
            format!("{:.1}", run.throughput()),
            format!("{:.2}", run.percentile(0.5)),
            format!("{:.2}", run.percentile(0.99)),
            format!("{:.3}", run.hit_rate()),
        ]);
    }
    println!(
        "zipf(1.0) phase — {zipf_offered} draws over {zipf_distinct} distinct inputs, \
         cached/uncached speedup {zipf_speedup:.2}x"
    );
    println!("{}", zipf_table.render());

    let run_json: Vec<String> = runs.iter().map(RunResult::json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pipeserve_load\",\n",
            "  \"quick\": {},\n",
            "  \"host_workers\": {},\n",
            "  \"total_workers\": {},\n",
            "  \"job_mix\": [\"dedup\", \"ferret\", \"x264\", \"pipefib\"],\n",
            "  \"runs\": [\n{}\n  ],\n",
            "  \"zipf\": {{\n",
            "    \"exponent\": 1.0,\n",
            "    \"distinct_inputs\": {},\n",
            "    \"offered_jobs\": {},\n",
            "    \"uncached\":\n{},\n",
            "    \"cached\":\n{},\n",
            "    \"speedup_cached_over_uncached\": {:.2}\n",
            "  }}\n",
            "}}\n"
        ),
        quick,
        workers,
        total_workers,
        run_json.join(",\n"),
        zipf_distinct,
        zipf_offered,
        zipf_uncached.json(),
        zipf_cached.json(),
        zipf_speedup,
    );
    std::fs::write(&out_path, &json).expect("failed to write benchmark JSON");
    println!("wrote {out_path}");

    // The cache's contract in the committed full-mode trajectory: a
    // zipf(1.0) mix at equal capacity sustains at least twice the uncached
    // throughput. (Quick mode skips the hard check — CI hosts are noisy —
    // and lets bench_gate police the hit rate and p99 instead.)
    if !quick && zipf_speedup < 2.0 {
        eprintln!("ERROR: zipf cached/uncached speedup {zipf_speedup:.2}x is below the 2x floor");
        std::process::exit(1);
    }

    if fail_on_rejections {
        // The first (lowest) rate of every shard configuration is its smoke
        // rate: each must absorb the full offered load.
        for smoke in runs.chunks(rates.len()).map(|chunk| &chunk[0]) {
            if smoke.rejected > 0 {
                eprintln!(
                    "ERROR: smoke arrival rate ({:.0} jobs/s, {} shard(s)) rejected {} of {} jobs",
                    smoke.rate, smoke.shards, smoke.rejected, smoke.offered
                );
                std::process::exit(1);
            }
        }
    }
}
