//! Load generator for the `pipeserve` multi-tenant pipeline executor
//! (`BENCH_pipeserve.json` trajectory).
//!
//! Drives a mixed fleet of dedup / ferret / x264 / pipe-fib jobs through a
//! [`pipeserve::ShardedService`] at several open-loop arrival rates — once
//! on a single shard (the PR-3 baseline shape) and once sharded N ways with
//! elastic pools — and reports, per (shard count, rate):
//!
//! * **throughput** (completed jobs per second of wall clock),
//! * **job latency** p50 / p99 (submit → terminal state, measured at the
//!   moment the job finishes),
//! * **rejection rate** (backpressure: bounded queue + frame budget),
//! * the service's aggregate counters (admitted, completed, peak queue
//!   depth, peak frame usage).
//!
//! Every completed job's output is verified against the workload's serial
//! reference, so a scheduling bug cannot hide behind good numbers. The
//! results are written to `BENCH_pipeserve.json` (override with
//! `PIPESERVE_BENCH_OUT`).
//!
//! Flags / environment:
//!
//! * `--quick` (or `PIPESERVE_BENCH_QUICK=1`) — seconds-scale smoke run
//!   (used by CI);
//! * `--shards N` (or `PIPESERVE_BENCH_SHARDS=N`) — the sharded
//!   configuration's shard count (default 2); the sweep always also runs
//!   the 1-shard baseline, so the emitted JSON is a direct comparison.
//!   `--shards 1` skips the sharded pass;
//! * `--fail-on-rejections` — exit non-zero if the *lowest* (smoke)
//!   arrival rate of any shard configuration rejected a job: at the smoke
//!   rate the service must absorb the full offered load.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pipe_bench::Table;
use piper::PipeOptions;
use pipeserve::{JobHandle, JobSpec, Priority, ServiceMetricsSnapshot, ShardedService};

/// Per-job verification: checks the completed job's output against the
/// serial reference for its workload type.
type Verifier = Box<dyn FnOnce() -> Result<(), String> + Send>;

/// Expected outputs, computed once from the serial references.
struct Mix {
    dedup_config: workloads::dedup::DedupConfig,
    dedup_input: Vec<u8>,
    dedup_expected: workloads::dedup::Archive,
    ferret_config: workloads::ferret::FerretConfig,
    ferret_index: Arc<workloads::ferret::Index>,
    ferret_expected: workloads::ferret::FerretOutput,
    x264_config: workloads::x264::X264Config,
    x264_expected: workloads::x264::X264Output,
    fib_config: workloads::pipefib::PipeFibConfig,
    fib_expected: Vec<u8>,
}

impl Mix {
    fn prepare() -> Mix {
        let dedup_config = workloads::dedup::DedupConfig::tiny();
        let dedup_input = dedup_config.generate_input();
        let dedup_expected = workloads::dedup::run_serial(&dedup_config, &dedup_input);
        let ferret_config = workloads::ferret::FerretConfig::tiny();
        let ferret_index = workloads::ferret::build_index(&ferret_config);
        let ferret_expected = workloads::ferret::run_serial(&ferret_config, &ferret_index);
        let x264_config = workloads::x264::X264Config::tiny();
        let x264_expected = workloads::x264::run_serial(&x264_config);
        let fib_config = workloads::pipefib::PipeFibConfig::tiny();
        let fib_expected = workloads::pipefib::run_serial(&fib_config);
        Mix {
            dedup_config,
            dedup_input,
            dedup_expected,
            ferret_config,
            ferret_index,
            ferret_expected,
            x264_config,
            x264_expected,
            fib_config,
            fib_expected,
        }
    }

    /// The `i`-th job of the fleet: cycles through the four workloads and
    /// the three priority classes.
    fn job(&self, i: usize) -> (&'static str, JobSpec, Verifier) {
        let priority = [Priority::Interactive, Priority::Normal, Priority::Batch][i % 3];
        let options = PipeOptions::with_throttle(4);
        match i % 4 {
            0 => {
                let (launch, sink) =
                    workloads::dedup::piper_launch(&self.dedup_config, &self.dedup_input);
                let expected = self.dedup_expected.clone();
                let verify: Verifier = Box::new(move || {
                    if *sink.lock().unwrap() == expected {
                        Ok(())
                    } else {
                        Err("dedup archive mismatch".into())
                    }
                });
                (
                    "dedup",
                    JobSpec::from_launch(options, launch)
                        .named("dedup")
                        .priority(priority),
                    verify,
                )
            }
            1 => {
                let (launch, sink) =
                    workloads::ferret::piper_launch(&self.ferret_config, &self.ferret_index);
                let expected = self.ferret_expected.clone();
                let verify: Verifier = Box::new(move || {
                    if *sink.lock().unwrap() == expected {
                        Ok(())
                    } else {
                        Err("ferret ranking mismatch".into())
                    }
                });
                (
                    "ferret",
                    JobSpec::from_launch(options, launch)
                        .named("ferret")
                        .priority(priority),
                    verify,
                )
            }
            2 => {
                let (launch, sink) = workloads::x264::piper_launch(&self.x264_config);
                let expected = self.x264_expected.clone();
                let verify: Verifier = Box::new(move || {
                    if *sink.lock().unwrap() == expected {
                        Ok(())
                    } else {
                        Err("x264 output mismatch".into())
                    }
                });
                (
                    "x264",
                    JobSpec::from_launch(options, launch)
                        .named("x264")
                        .priority(priority),
                    verify,
                )
            }
            _ => {
                let (launch, extract) = workloads::pipefib::piper_launch(&self.fib_config);
                let expected = self.fib_expected.clone();
                let verify: Verifier = Box::new(move || {
                    if extract() == expected {
                        Ok(())
                    } else {
                        Err("pipe-fib bits mismatch".into())
                    }
                });
                (
                    "pipefib",
                    JobSpec::from_launch(options, launch)
                        .named("pipefib")
                        .priority(priority),
                    verify,
                )
            }
        }
    }
}

/// Results of one (shard count, arrival rate) run.
struct RunResult {
    shards: usize,
    rate: f64,
    offered: usize,
    rejected: u64,
    completed: u64,
    wall: Duration,
    latencies_ms: Vec<f64>,
    /// The service's aggregate counters at the end of the run.
    metrics: ServiceMetricsSnapshot,
    /// Jobs placement routed to each shard.
    placements: Vec<u64>,
}

impl RunResult {
    fn rejection_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.rejected as f64 / self.offered as f64
        }
    }

    fn throughput(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn percentile(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    fn json(&self) -> String {
        // The service-level counters come from the one shared formatter
        // (`ServiceMetricsSnapshot::to_json`); only the harness-side
        // measurements are rendered here.
        let placements: Vec<String> = self.placements.iter().map(|p| p.to_string()).collect();
        format!(
            concat!(
                "    {{\n",
                "      \"shards\": {},\n",
                "      \"placements\": [{}],\n",
                "      \"arrival_rate_jobs_per_s\": {:.1},\n",
                "      \"offered_jobs\": {},\n",
                "      \"rejected_jobs\": {},\n",
                "      \"rejection_rate\": {:.4},\n",
                "      \"completed_jobs\": {},\n",
                "      \"wall_s\": {:.4},\n",
                "      \"throughput_jobs_per_s\": {:.1},\n",
                "      \"latency_p50_ms\": {:.3},\n",
                "      \"latency_p99_ms\": {:.3},\n",
                "      \"service_metrics\": {}\n",
                "    }}"
            ),
            self.shards,
            placements.join(","),
            self.rate,
            self.offered,
            self.rejected,
            self.rejection_rate(),
            self.completed,
            self.wall.as_secs_f64(),
            self.throughput(),
            self.percentile(0.50),
            self.percentile(0.99),
            self.metrics.to_json(),
        )
    }
}

/// Submits `offered` mixed jobs at `rate` jobs/s (open loop) and waits for
/// the fleet to drain. `workers` is the total across shards and must be
/// divisible by `shards` (the caller equalizes totals across the shard
/// configurations so the comparison isolates the sharding effect, not a
/// worker-count difference); a multi-shard service runs elastic pools
/// (band `[1, workers/shards]`), the daemon's configuration.
fn run_at_rate(
    mix: &Mix,
    shards: usize,
    rate: f64,
    offered: usize,
    workers: usize,
    max_queue: usize,
) -> RunResult {
    assert_eq!(workers % shards, 0, "caller equalizes worker totals");
    let mut builder = ShardedService::builder()
        .shards(shards)
        .workers_per_shard(workers / shards)
        .max_queue_per_shard(max_queue.div_ceil(shards).max(1));
    if shards > 1 {
        builder = builder.elastic_workers(1);
    }
    let service = builder.build();
    let interval = Duration::from_secs_f64(1.0 / rate);
    let start = Instant::now();
    let mut handles: Vec<(JobHandle, Verifier, &'static str)> = Vec::with_capacity(offered);
    let mut rejected = 0u64;
    for i in 0..offered {
        // Open-loop arrivals: stick to the absolute schedule even if
        // submission itself lags.
        let due = start + interval.mul_f64(i as f64);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let (kind, spec, verify) = mix.job(i);
        match service.submit(spec) {
            Ok(handle) => handles.push((handle, verify, kind)),
            Err(_) => rejected += 1,
        }
    }
    // Join everything first and stop the wall clock before running the
    // serial output verification, so the published throughput measures the
    // service, not the harness's reference comparisons.
    let mut latencies_ms = Vec::with_capacity(handles.len());
    let mut completed = 0u64;
    let mut verifiers: Vec<(Verifier, &'static str)> = Vec::with_capacity(handles.len());
    for (handle, verify, kind) in handles {
        let result = handle.join();
        if !result.is_completed() {
            eprintln!("ERROR: {kind} job ended as {result:?}");
            std::process::exit(1);
        }
        completed += 1;
        latencies_ms.push(
            handle
                .latency()
                .expect("joined job has a latency")
                .as_secs_f64()
                * 1e3,
        );
        verifiers.push((verify, kind));
    }
    service.drain();
    let wall = start.elapsed();
    for (verify, kind) in verifiers {
        if let Err(msg) = verify() {
            eprintln!("ERROR: {kind} job verification failed: {msg}");
            std::process::exit(1);
        }
    }
    let snapshot = service.metrics();
    RunResult {
        shards,
        rate,
        offered,
        rejected,
        completed,
        wall,
        latencies_ms,
        metrics: snapshot.aggregate,
        placements: snapshot.placements,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick")
        || std::env::var("PIPESERVE_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let fail_on_rejections = args.iter().any(|a| a == "--fail-on-rejections");
    let shard_count: usize = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|at| args.get(at + 1))
        .cloned()
        .or_else(|| std::env::var("PIPESERVE_BENCH_SHARDS").ok())
        .map(|v| v.parse().expect("--shards takes a positive integer"))
        .unwrap_or(2)
        .max(1);
    let out_path =
        std::env::var("PIPESERVE_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeserve.json".to_string());

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mix = Mix::prepare();

    // The lowest rate is the smoke rate: the service must absorb it without
    // rejections. The higher rates probe saturation, where backpressure
    // (nonzero rejections) is acceptable — quick mode keeps the queue small
    // enough that its overload rate can actually overflow it, so the
    // rejection machinery (and CI's --fail-on-rejections tripwire) is
    // exercised for real, not vacuously.
    let (rates, offered, max_queue): (Vec<f64>, usize, usize) = if quick {
        (vec![50.0, 1000.0], 80, 16)
    } else {
        (vec![100.0, 500.0, 2000.0], 400, 256)
    };

    // 1-shard baseline first, then the sharded configuration — same rates,
    // same offered load, same total worker and queue capacity, so the JSON
    // is a direct single-pool vs sharded comparison. The shared total is
    // what the sharded config needs at ≥1 worker per shard (on a host with
    // fewer cores than shards this rounds the total up — the 1-shard
    // baseline gets those extra threads too, keeping the comparison fair).
    let shard_configs: Vec<usize> = if shard_count > 1 {
        vec![1, shard_count]
    } else {
        vec![1]
    };
    let total_workers = shard_count * workers.div_ceil(shard_count).max(1);
    let mut runs = Vec::new();
    for &shards in &shard_configs {
        for &rate in &rates {
            println!(
                "running {offered} mixed jobs at {rate:.0} jobs/s on {shards} shard(s) \
                 ({total_workers} workers total) ..."
            );
            runs.push(run_at_rate(
                &mix,
                shards,
                rate,
                offered,
                total_workers,
                max_queue,
            ));
        }
    }

    let mut table = Table::new(&[
        "shards",
        "rate (j/s)",
        "offered",
        "rejected",
        "completed",
        "thru (j/s)",
        "p50 (ms)",
        "p99 (ms)",
        "peak q",
        "peak frames",
    ]);
    for r in &runs {
        table.row(vec![
            r.shards.to_string(),
            format!("{:.0}", r.rate),
            r.offered.to_string(),
            r.rejected.to_string(),
            r.completed.to_string(),
            format!("{:.1}", r.throughput()),
            format!("{:.2}", r.percentile(0.5)),
            format!("{:.2}", r.percentile(0.99)),
            r.metrics.peak_queue_depth.to_string(),
            r.metrics.peak_frames_in_use.to_string(),
        ]);
    }
    println!(
        "pipeserve_load — mixed dedup/ferret/x264/pipe-fib fleet on {total_workers} workers \
         (host parallelism {workers})"
    );
    println!("{}", table.render());

    let run_json: Vec<String> = runs.iter().map(RunResult::json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pipeserve_load\",\n",
            "  \"quick\": {},\n",
            "  \"host_workers\": {},\n",
            "  \"total_workers\": {},\n",
            "  \"job_mix\": [\"dedup\", \"ferret\", \"x264\", \"pipefib\"],\n",
            "  \"runs\": [\n{}\n  ]\n",
            "}}\n"
        ),
        quick,
        workers,
        total_workers,
        run_json.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("failed to write benchmark JSON");
    println!("wrote {out_path}");

    if fail_on_rejections {
        // The first (lowest) rate of every shard configuration is its smoke
        // rate: each must absorb the full offered load.
        for smoke in runs.chunks(rates.len()).map(|chunk| &chunk[0]) {
            if smoke.rejected > 0 {
                eprintln!(
                    "ERROR: smoke arrival rate ({:.0} jobs/s, {} shard(s)) rejected {} of {} jobs",
                    smoke.rate, smoke.shards, smoke.rejected, smoke.offered
                );
                std::process::exit(1);
            }
        }
    }
}
