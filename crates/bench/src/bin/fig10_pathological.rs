//! Regenerates Figure 10 / Theorem 13: the pathological nonuniform pipeline
//! on which *any* throttling scheduler must trade speedup for space.

use pipe_bench::Table;
use pipedag::{analyze_unthrottled, generators, simulate_piper};

fn main() {
    let t1: u64 = 8_000_000;
    let spec = generators::pathological(t1);
    let a = analyze_unthrottled(&spec);
    println!(
        "Figure 10 / Theorem 13: pathological pipeline, T1 = {} ({} iterations, span {}, parallelism {:.1})",
        a.work,
        spec.num_iterations(),
        a.span,
        a.parallelism()
    );
    println!();

    let p = 8;
    let mut table = Table::new(&[
        "throttling limit K",
        "T_P (simulated)",
        "speedup",
        "peak live iterations (space)",
    ]);
    let cube = (t1 as f64).powf(1.0 / 3.0) as usize;
    for k in [4usize, 8, 16, 64, cube, 4 * cube, usize::MAX] {
        let throttle = if k == usize::MAX { None } else { Some(k) };
        let sim = simulate_piper(&spec, p, throttle);
        table.row(vec![
            if k == usize::MAX {
                "unthrottled".to_string()
            } else {
                k.to_string()
            },
            sim.makespan.to_string(),
            format!("{:.2}", sim.speedup_vs(a.work)),
            sim.peak_live_iterations.to_string(),
        ]);
    }
    table.print();
    println!(
        "Speedup beyond ~3 requires keeping ~T1^(1/3) = {} iterations live at once (Theorem 13): small",
        cube
    );
    println!(
        "throttling windows bound space but cap the speedup; only K = Ω(T1^(1/3)) recovers it."
    );
}
