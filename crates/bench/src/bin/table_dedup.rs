//! Regenerates Figure 7: dedup performance comparison, plus the Section 10
//! Cilkview-style parallelism measurement (the paper reports 7.4) when run
//! with `--analyze`.

use pipe_bench::{secs, time, Table, PAPER_PROCESSOR_COUNTS};
use pipedag::{
    simulate_bind_to_stage, simulate_construct_and_run, simulate_piper, BindToStageConfig,
};
use piper::{PipeOptions, ThreadPool};
use workloads::dedup;

fn main() {
    let analyze_only = std::env::args().any(|a| a == "--analyze");
    let config = dedup::DedupConfig::default();
    let input = config.generate_input();

    let spec = dedup::record_spec(&config, &input);
    let analysis = pipedag::analyze_unthrottled(&spec);
    println!(
        "dedup (synthetic {} MiB): {} chunks, dag work = {} ms, span = {} ms, parallelism = {:.1}",
        config.input_size >> 20,
        spec.num_iterations(),
        analysis.work / 1_000_000,
        analysis.span / 1_000_000,
        analysis.parallelism()
    );
    println!(
        "(the paper's Cilkview measurement of dedup's parallelism on its native input is 7.4)"
    );
    println!();
    if analyze_only {
        return;
    }

    // Real executions.
    let (serial_archive, t_s) = time(|| dedup::run_serial(&config, &input));
    assert_eq!(serial_archive.decode().unwrap(), input);
    let pool1 = ThreadPool::new(1);
    let ((), t_1) = time(|| {
        let archive = dedup::run_piper(&config, &input, &pool1, PipeOptions::with_throttle(4));
        assert_eq!(archive, serial_archive, "PIPER archive must match serial");
    });
    println!(
        "measured on this host:  T_S = {}s   T_1 = {}s   serial overhead T_1/T_S = {:.3}",
        secs(t_s),
        secs(t_1),
        t_1.as_secs_f64() / t_s.as_secs_f64()
    );
    println!();

    let serial_time = spec.work();
    let mut table = Table::new(&[
        "P",
        "Cilk-P speedup",
        "Pthreads speedup",
        "TBB speedup",
        "Cilk-P scalability",
    ]);
    for &p in &PAPER_PROCESSOR_COUNTS {
        // The paper uses K = 4P for dedup.
        let cilkp = simulate_piper(&spec, p, Some(4 * p));
        let pthreads = simulate_bind_to_stage(
            &spec,
            p,
            BindToStageConfig {
                threads_per_parallel_stage: p.max(1),
                queue_capacity: 4 * p,
            },
        );
        let tbb = simulate_construct_and_run(&spec, p, 4 * p);
        let t1 = simulate_piper(&spec, 1, Some(4)).makespan;
        table.row(vec![
            p.to_string(),
            format!("{:.2}", cilkp.speedup_vs(serial_time)),
            format!("{:.2}", pthreads.speedup_vs(serial_time)),
            format!("{:.2}", tbb.speedup_vs(serial_time)),
            format!("{:.2}", t1 as f64 / cilkp.makespan as f64),
        ]);
    }
    println!("Figure 7 (shape): simulated schedule of the recorded dedup dag, K = 4P");
    println!("note: the paper's Pthreads advantage on dedup comes from overlapping file I/O with");
    println!("computation via oversubscription; the simulator has no I/O, so all three plateau at");
    println!(
        "the dag's parallelism, which is the dominant effect the paper reports for Cilk-P/TBB."
    );
    table.print();
}
