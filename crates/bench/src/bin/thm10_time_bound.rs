//! Empirical check of Theorem 10: the number of steal attempts during a
//! PIPER execution is O(P·T∞) (expectation), independent of the work T1.
//!
//! We run the same SPS pipeline on real worker pools of increasing size and
//! report measured steal attempts next to the dag's span.

use pipe_bench::Table;
use piper::{PipeOptions, StagedPipeline, ThreadPool};

fn run_pipeline(pool: &ThreadPool, n: u64, inner_work: u64) -> piper::MetricsSnapshot {
    let before = pool.metrics();
    let mut next = 0u64;
    StagedPipeline::<u64>::new()
        .parallel(move |x| {
            let mut acc = *x;
            for k in 0..inner_work {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            *x = std::hint::black_box(acc);
        })
        .serial(|_| {})
        .run(pool, PipeOptions::default(), move || {
            if next == n {
                None
            } else {
                next += 1;
                Some(next)
            }
        });
    pool.metrics().since(&before)
}

fn main() {
    let n = 2_000u64;
    let inner_work = 2_000u64;
    println!("Theorem 10: steal attempts vs processors (SPS pipeline, {n} iterations)");
    println!("(expectation bound: steals = O(P * T_inf); work grows with n but steals should not)");
    println!();
    let mut table = Table::new(&[
        "P",
        "nodes executed",
        "steal attempts",
        "successful steals",
        "steal attempts / (P * iterations)",
    ]);
    for p in [1usize, 2, 4, 8] {
        let pool = ThreadPool::new(p);
        let m = run_pipeline(&pool, n, inner_work);
        table.row(vec![
            p.to_string(),
            m.nodes_executed.to_string(),
            m.steal_attempts.to_string(),
            m.steals.to_string(),
            format!("{:.3}", m.steal_attempts as f64 / (p as f64 * n as f64)),
        ]);
    }
    table.print();
    println!(
        "Note: this host exposes a single hardware core; pools with P > 1 timeshare it, which"
    );
    println!(
        "inflates steal attempts relative to a true P-core machine but preserves the trend that"
    );
    println!("steals scale with P and the span rather than with the total work.");
}
