//! Empirical check of Theorem 12: for uniform pipelines, throttling with a
//! window K = aP does not hurt asymptotic performance — the throttled
//! schedule stays within (1 + c/a)·T1/P + c·T∞.

use pipe_bench::Table;
use pipedag::{analyze_unthrottled, generators, simulate_piper};

fn main() {
    let n = 4_096;
    let s = 8;
    let w = 64;
    let spec = generators::uniform_sps(n, s, w, 8 * w);
    let a = analyze_unthrottled(&spec);
    println!(
        "Theorem 12: uniform pipeline ({} iterations x {} stages), work {}, span {}, parallelism {:.1}",
        n,
        s + 2,
        a.work,
        a.span,
        a.parallelism()
    );
    println!();

    let mut table = Table::new(&[
        "P",
        "a (K = aP)",
        "T_P throttled",
        "T_P unthrottled",
        "throttled / unthrottled",
        "greedy bound T1/P + Tinf",
    ]);
    for &p in &[4usize, 8, 16] {
        for &factor in &[1usize, 2, 4, 8] {
            let throttled = simulate_piper(&spec, p, Some(factor * p));
            let unthrottled = simulate_piper(&spec, p, None);
            let bound = a.work / p as u64 + a.span;
            table.row(vec![
                p.to_string(),
                factor.to_string(),
                throttled.makespan.to_string(),
                unthrottled.makespan.to_string(),
                format!(
                    "{:.3}",
                    throttled.makespan as f64 / unthrottled.makespan as f64
                ),
                bound.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "For uniform pipelines the throttled schedule tracks the unthrottled one closely even for"
    );
    println!(
        "small a, matching Theorem 12; contrast with the pathological dag of fig10_pathological."
    );
}
