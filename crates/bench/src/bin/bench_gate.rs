//! CI bench-regression gate.
//!
//! Quick-runs the four trajectory benches — `pipe_overhead` (per-node
//! pipeline overhead), `pipeserve_load` (multi-tenant job latency),
//! `piped_load` (end-to-end daemon latency over loopback TCP) and
//! `checksum_kernels` (serving data-path hash throughput) — and
//! fails if any regresses more than a threshold against the *committed*
//! baselines:
//!
//! * per-workload pipeline overhead vs `BENCH_piper_gate.json` — a
//!   committed *quick-mode* reference, because per-node overhead is
//!   systematically higher at quick-mode problem sizes (fewer nodes
//!   amortizing fixed costs) and comparing a quick run against the
//!   full-mode `BENCH_piper.json` would trip the gate with no regression.
//!   Fine-grained workloads (baseline `T1/TS ≥ 2`) gate on
//!   `per_node_overhead_ns`; coarse ones gate on the
//!   `overhead_ratio_t1_over_ts` itself, because their per-node figure is
//!   the difference of two nearly equal timings — subtraction noise at
//!   quick sizes;
//! * smoke-rate `latency_p99_ms` per shard configuration vs
//!   `BENCH_pipeserve.json` (smoke p99 is problem-size-independent enough
//!   to share the full-mode baseline);
//! * the zipf phase's content-cache figures vs the same baseline: the
//!   `hit_rate` is a **floor** (the zipf sequence is deterministic, so a
//!   drop means caching or coalescing logic re-runs pipelines it should
//!   not), and the cached `latency_p99_ms` gates like any other latency;
//! * the daemon's smoke-rate latency quantiles (`latency_p50_ms` and
//!   `latency_p99_ms` of the lowest-rate run, client-observed over real
//!   loopback TCP) vs `BENCH_piped.json` — the end-to-end figure the
//!   observability layer itself reports, so instrumentation overhead
//!   cannot creep in unguarded;
//! * checksum-kernel throughput vs `BENCH_checksum.json`: `kernel_mb_per_s`
//!   is a floor against the committed baseline, and the speedup over the
//!   scalar reference must stay ≥ 3× — the kernels exist to beat the
//!   references, so converging back towards them is itself the regression.
//!
//! A regression is `current > baseline × (1 + threshold) + slack`, with a
//! 25 % default threshold (`--threshold PCT` or `BENCH_GATE_THRESHOLD`)
//! plus a small absolute slack per metric (15 ns / 20 ms) so hosts cannot
//! trip the gate on measurement noise of near-zero baselines.
//!
//! When the gate runs the benches itself it runs each one **three times
//! and takes the per-metric minimum**: the gate asks "can the code still
//! run this fast", and the minimum is the standard noise-robust estimator
//! for that question — quick-mode figures on a shared host can otherwise
//! swing 2× on scheduler interference alone. The
//! committed baselines were measured on a quiet machine; the relative
//! threshold, not the absolute values, is what the gate enforces.
//!
//! Flags:
//!
//! * `--piper-json PATH` / `--pipeserve-json PATH` / `--piped-json PATH` /
//!   `--checksum-json PATH` — gate existing result files instead of
//!   quick-running the benches (the benches are found next to this binary
//!   when it runs them itself);
//! * `--piper-baseline PATH` / `--pipeserve-baseline PATH` /
//!   `--piped-baseline PATH` / `--checksum-baseline PATH` — override the
//!   committed baselines (default `BENCH_piper_gate.json` /
//!   `BENCH_pipeserve.json` / `BENCH_piped.json` / `BENCH_checksum.json`);
//! * `--threshold PCT` — the allowed regression percentage (default 25).
//!
//! JSON parsing is the same hand-rolled style the emitters use: the gate
//! scans for `"key": value` pairs in order, so it stays dependency-free.

use std::path::{Path, PathBuf};
use std::process::Command;

/// One gated comparison. Most metrics are "smaller is better" upper
/// bounds; a floor check (`lower_bound`) inverts the verdict — used for
/// the zipf hit rate, where a *drop* is the regression.
struct Check {
    metric: String,
    current: f64,
    baseline: f64,
    limit: f64,
    lower_bound: bool,
}

impl Check {
    fn passed(&self) -> bool {
        if self.lower_bound {
            self.current >= self.limit
        } else {
            self.current <= self.limit
        }
    }
}

/// Scans `text` from `from` for the next `"key":` and parses the number
/// (or quoted string) that follows. Returns (value, index after it).
fn next_field(text: &str, from: usize, key: &str) -> Option<(String, usize)> {
    let needle = format!("\"{key}\":");
    let at = text[from..].find(&needle)? + from + needle.len();
    let rest = text[at..].trim_start();
    let offset = at + (text[at..].len() - rest.len());
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some((stripped[..end].to_string(), offset + 1 + end + 1))
    } else {
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
            .unwrap_or(rest.len());
        Some((rest[..end].to_string(), offset + end))
    }
}

/// Per-workload `(overhead ratio T1/TS, per_node_overhead_ns)` from a
/// `pipe_overhead` JSON. Any embedded `"baseline"` record
/// (PIPE_BENCH_COMPARE) is cut off first so the scan only sees the current
/// entries.
fn parse_piper(raw: &str) -> Vec<(String, f64, f64)> {
    let own = match raw.find("\"baseline\":") {
        Some(at) => &raw[..at],
        None => raw,
    };
    let mut out = Vec::new();
    let mut at = 0usize;
    while let Some((workload, after)) = next_field(own, at, "workload") {
        let Some((ratio, after)) = next_field(own, after, "overhead_ratio_t1_over_ts") else {
            break;
        };
        let Some((ns, after)) = next_field(own, after, "per_node_overhead_ns") else {
            break;
        };
        out.push((
            workload,
            ratio.parse().expect("numeric overhead ratio"),
            ns.parse().expect("numeric per_node_overhead_ns"),
        ));
        at = after;
    }
    out
}

/// `(shards, arrival rate, p99 ms)` per run from a `pipeserve_load` JSON.
fn parse_pipeserve(raw: &str) -> Vec<(u64, f64, f64)> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while let Some((shards, after)) = next_field(raw, at, "shards") {
        let Some((rate, after)) = next_field(raw, after, "arrival_rate_jobs_per_s") else {
            break;
        };
        let Some((p99, after)) = next_field(raw, after, "latency_p99_ms") else {
            break;
        };
        out.push((
            shards.parse().expect("integer shards"),
            rate.parse().expect("numeric arrival rate"),
            p99.parse().expect("numeric p99"),
        ));
        at = after;
    }
    out
}

/// `(arrival rate, p50 ms, p99 ms)` per run from a `piped_load` JSON. The
/// scan is keyed on `arrival_rate_jobs_per_s`, so the trailing zipf and
/// drain sections (which carry no arrival rate) are never misread as runs.
fn parse_piped(raw: &str) -> Vec<(f64, f64, f64)> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while let Some((rate, after)) = next_field(raw, at, "arrival_rate_jobs_per_s") {
        let Some((p50, after)) = next_field(raw, after, "latency_p50_ms") else {
            break;
        };
        let Some((p99, after)) = next_field(raw, after, "latency_p99_ms") else {
            break;
        };
        out.push((
            rate.parse().expect("numeric arrival rate"),
            p50.parse().expect("numeric p50"),
            p99.parse().expect("numeric p99"),
        ));
        at = after;
    }
    out
}

/// The smoke (lowest-rate) run's `(p50, p99)` of a `piped_load` JSON.
fn piped_smoke(runs: &[(f64, f64, f64)]) -> Option<(f64, f64)> {
    runs.iter()
        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite rates"))
        .map(|&(_, p50, p99)| (p50, p99))
}

/// `(hit_rate, cached latency_p99_ms)` from the `"zipf"` section of a
/// `pipeserve_load` JSON — the content-cache figures. `None` for JSONs
/// predating the cache.
fn parse_zipf(raw: &str) -> Option<(f64, f64)> {
    let at = raw.find("\"zipf\":")?;
    let (_, after) = next_field(raw, at, "cached")?;
    let (p99, after) = next_field(raw, after, "latency_p99_ms")?;
    let (hit_rate, _) = next_field(raw, after, "hit_rate")?;
    Some((hit_rate.parse().ok()?, p99.parse().ok()?))
}

/// `(kernel, kernel MB/s, speedup-over-scalar)` per entry from a
/// `checksum_kernels` JSON.
fn parse_checksum(raw: &str) -> Vec<(String, f64, f64)> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while let Some((kernel, after)) = next_field(raw, at, "kernel") {
        let Some((mbps, after)) = next_field(raw, after, "kernel_mb_per_s") else {
            break;
        };
        let Some((speedup, after)) = next_field(raw, after, "speedup") else {
            break;
        };
        out.push((
            kernel,
            mbps.parse().expect("numeric kernel_mb_per_s"),
            speedup.parse().expect("numeric speedup"),
        ));
        at = after;
    }
    out
}

/// The smoke (lowest-rate) run of each shard configuration.
fn smoke_runs(runs: &[(u64, f64, f64)]) -> Vec<(u64, f64)> {
    let mut by_shards: Vec<(u64, f64, f64)> = Vec::new();
    for &(shards, rate, p99) in runs {
        match by_shards.iter_mut().find(|(s, _, _)| *s == shards) {
            Some(entry) if rate < entry.1 => {
                entry.1 = rate;
                entry.2 = p99;
            }
            Some(_) => {}
            None => by_shards.push((shards, rate, p99)),
        }
    }
    by_shards.into_iter().map(|(s, _, p99)| (s, p99)).collect()
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("failed to read {}: {e}", path.display()))
}

/// Runs a sibling bench binary with a quick-mode environment, writing its
/// JSON to `out`.
fn run_sibling(name: &str, args: &[&str], env: &[(&str, &str)], out: &Path) {
    let mut path = std::env::current_exe().expect("own path");
    path.set_file_name(name);
    let mut cmd = Command::new(&path);
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    println!(
        "bench_gate: running {} {} ...",
        path.display(),
        args.join(" ")
    );
    let status = cmd.status().unwrap_or_else(|e| {
        panic!(
            "failed to run {} (is it built alongside bench_gate?): {e}",
            path.display()
        )
    });
    assert!(status.success(), "{name} exited with {status}");
    assert!(out.is_file(), "{name} did not write {}", out.display());
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|at| args.get(at + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threshold: f64 = flag_value(&args, "--threshold")
        .or_else(|| std::env::var("BENCH_GATE_THRESHOLD").ok())
        .map(|v| v.parse().expect("--threshold takes a percentage"))
        .unwrap_or(25.0)
        / 100.0;
    let piper_baseline = PathBuf::from(
        flag_value(&args, "--piper-baseline").unwrap_or("BENCH_piper_gate.json".into()),
    );
    let pipeserve_baseline = PathBuf::from(
        flag_value(&args, "--pipeserve-baseline").unwrap_or("BENCH_pipeserve.json".into()),
    );
    let piped_baseline =
        PathBuf::from(flag_value(&args, "--piped-baseline").unwrap_or("BENCH_piped.json".into()));
    let checksum_baseline = PathBuf::from(
        flag_value(&args, "--checksum-baseline").unwrap_or("BENCH_checksum.json".into()),
    );

    // How many times each self-run bench repeats; per-metric minima are
    // gated (see the module docs on noise).
    const GATE_RUNS: usize = 3;

    let tmp = std::env::temp_dir();
    // Current per-workload per-node overhead: one file's entries, or the
    // per-workload minimum over GATE_RUNS quick runs.
    let current_piper: Vec<(String, f64, f64)> = match flag_value(&args, "--piper-json") {
        Some(path) => parse_piper(&read(Path::new(&path))),
        None => {
            let mut best: Vec<(String, f64, f64)> = Vec::new();
            for run in 0..GATE_RUNS {
                let out = tmp.join(format!("bench_gate_piper_{run}.json"));
                let _ = std::fs::remove_file(&out);
                run_sibling(
                    "pipe_overhead",
                    &[],
                    &[
                        ("PIPE_BENCH_QUICK", "1"),
                        ("PIPE_BENCH_LABEL", "bench_gate"),
                        ("PIPE_BENCH_OUT", out.to_str().expect("utf-8 temp path")),
                    ],
                    &out,
                );
                for (workload, ratio, ns) in parse_piper(&read(&out)) {
                    match best.iter_mut().find(|(w, _, _)| *w == workload) {
                        Some(entry) => {
                            entry.1 = entry.1.min(ratio);
                            entry.2 = entry.2.min(ns);
                        }
                        None => best.push((workload, ratio, ns)),
                    }
                }
            }
            best
        }
    };
    // Current smoke p99 per shard configuration (plus the zipf cache
    // figures): one file's runs, or the per-metric best over GATE_RUNS
    // quick runs (min p99, max hit rate — "can the code still do this").
    type ServeFigures = (Vec<(u64, f64)>, Option<(f64, f64)>);
    let (current_serve, current_zipf): ServeFigures = match flag_value(&args, "--pipeserve-json") {
        Some(path) => {
            let raw = read(Path::new(&path));
            (smoke_runs(&parse_pipeserve(&raw)), parse_zipf(&raw))
        }
        None => {
            let mut best: Vec<(u64, f64)> = Vec::new();
            let mut zipf: Option<(f64, f64)> = None;
            for run in 0..GATE_RUNS {
                let out = tmp.join(format!("bench_gate_pipeserve_{run}.json"));
                let _ = std::fs::remove_file(&out);
                run_sibling(
                    "pipeserve_load",
                    &["--quick"],
                    &[(
                        "PIPESERVE_BENCH_OUT",
                        out.to_str().expect("utf-8 temp path"),
                    )],
                    &out,
                );
                let raw = read(&out);
                for (shards, p99) in smoke_runs(&parse_pipeserve(&raw)) {
                    match best.iter_mut().find(|(s, _)| *s == shards) {
                        Some(entry) => entry.1 = entry.1.min(p99),
                        None => best.push((shards, p99)),
                    }
                }
                if let Some((hit, p99)) = parse_zipf(&raw) {
                    zipf = Some(match zipf {
                        Some((best_hit, best_p99)) => (best_hit.max(hit), best_p99.min(p99)),
                        None => (hit, p99),
                    });
                }
            }
            (best, zipf)
        }
    };
    // Current daemon smoke latency quantiles: one file's smoke run, or the
    // per-quantile minimum over GATE_RUNS quick runs over loopback TCP.
    let current_piped: Option<(f64, f64)> = match flag_value(&args, "--piped-json") {
        Some(path) => piped_smoke(&parse_piped(&read(Path::new(&path)))),
        None => {
            let mut best: Option<(f64, f64)> = None;
            for run in 0..GATE_RUNS {
                let out = tmp.join(format!("bench_gate_piped_{run}.json"));
                let _ = std::fs::remove_file(&out);
                run_sibling(
                    "piped_load",
                    &["--quick"],
                    &[("PIPED_BENCH_OUT", out.to_str().expect("utf-8 temp path"))],
                    &out,
                );
                if let Some((p50, p99)) = piped_smoke(&parse_piped(&read(&out))) {
                    best = Some(match best {
                        Some((b50, b99)) => (b50.min(p50), b99.min(p99)),
                        None => (p50, p99),
                    });
                }
            }
            best
        }
    };
    // Current checksum-kernel throughput: one file's entries, or the
    // per-kernel best (max MB/s, max speedup) over GATE_RUNS quick runs.
    let current_checksum: Vec<(String, f64, f64)> = match flag_value(&args, "--checksum-json") {
        Some(path) => parse_checksum(&read(Path::new(&path))),
        None => {
            let mut best: Vec<(String, f64, f64)> = Vec::new();
            for run in 0..GATE_RUNS {
                let out = tmp.join(format!("bench_gate_checksum_{run}.json"));
                let _ = std::fs::remove_file(&out);
                run_sibling(
                    "checksum_kernels",
                    &["--quick"],
                    &[("CHECKSUM_BENCH_OUT", out.to_str().expect("utf-8 temp path"))],
                    &out,
                );
                for (kernel, mbps, speedup) in parse_checksum(&read(&out)) {
                    match best.iter_mut().find(|(k, _, _)| *k == kernel) {
                        Some(entry) => {
                            entry.1 = entry.1.max(mbps);
                            entry.2 = entry.2.max(speedup);
                        }
                        None => best.push((kernel, mbps, speedup)),
                    }
                }
            }
            best
        }
    };

    // Per-node overhead slack: 15 ns absolute on top of the relative
    // threshold — quick-mode per-node figures jitter by ~10 ns run to run
    // (small node counts), and a ~50 ns baseline would otherwise gate at a
    // margin inside that noise. The pre-ring runtime (≈140 ns/node) still
    // fails by 2×.
    const SLACK_NS: f64 = 15.0;
    // Smoke p99 slack: 20 ms absolute (smoke-rate p99s are single-digit
    // milliseconds; a shared CI host can add that much without any code
    // regression).
    const SLACK_MS: f64 = 20.0;
    // Overhead-ratio slack for coarse workloads, where T1/TS sits near 1
    // and quick-mode timing spreads it by a few tenths.
    const SLACK_RATIO: f64 = 0.25;
    // Hit-rate slack: the zipf sequence is deterministic, so the rate only
    // moves if caching or coalescing logic changes; a small absolute
    // allowance covers quick-vs-full sizing differences.
    const SLACK_HIT: f64 = 0.05;

    let mut checks: Vec<Check> = Vec::new();
    // A baseline entry with no matching current entry is itself a gate
    // failure: silently skipping it would let a workload rename or a
    // shard-config change disable the gate while still reporting green —
    // the exact rot the gate exists to prevent.
    let mut missing: Vec<String> = Vec::new();
    let baseline_piper = parse_piper(&read(&piper_baseline));
    assert!(
        !current_piper.is_empty() && !baseline_piper.is_empty(),
        "no pipe_overhead entries parsed"
    );
    for (workload, base_ratio, base_ns) in &baseline_piper {
        let Some((_, cur_ratio, cur_ns)) = current_piper.iter().find(|(w, _, _)| w == workload)
        else {
            missing.push(format!(
                "pipe_overhead workload {workload:?} is in the baseline but not the current run"
            ));
            continue;
        };
        if *base_ratio >= 2.0 {
            // Fine-grained regime: runtime overhead dominates the timing,
            // so per-node nanoseconds is a stable, meaningful metric (the
            // paper's Figure 6 regime).
            checks.push(Check {
                metric: format!("{workload}: per_node_overhead_ns"),
                current: *cur_ns,
                baseline: *base_ns,
                limit: base_ns * (1.0 + threshold) + SLACK_NS,
                lower_bound: false,
            });
        } else {
            // Coarse regime (T1 ≈ TS): the per-node figure is the
            // difference of two nearly equal timings spread over few nodes
            // — pure subtraction noise at quick-mode sizes. Gate the
            // overhead ratio instead, which is the quantity that matters
            // there (and what the paper reports).
            checks.push(Check {
                metric: format!("{workload}: overhead_ratio_t1_over_ts"),
                current: *cur_ratio,
                baseline: *base_ratio,
                limit: base_ratio * (1.0 + threshold) + SLACK_RATIO,
                lower_bound: false,
            });
        }
    }

    let baseline_serve_raw = read(&pipeserve_baseline);
    let baseline_serve = smoke_runs(&parse_pipeserve(&baseline_serve_raw));
    assert!(
        !current_serve.is_empty() && !baseline_serve.is_empty(),
        "no pipeserve_load runs parsed"
    );
    for (shards, base) in &baseline_serve {
        match current_serve.iter().find(|(s, _)| s == shards) {
            Some((_, cur)) => checks.push(Check {
                metric: format!("{shards}-shard smoke: latency_p99_ms"),
                current: *cur,
                baseline: *base,
                limit: base * (1.0 + threshold) + SLACK_MS,
                lower_bound: false,
            }),
            None => missing.push(format!(
                "pipeserve_load {shards}-shard configuration is in the baseline but not the \
                 current run"
            )),
        }
    }

    // Daemon smoke-latency gates: the end-to-end client-observed quantiles
    // of the lowest-rate run. These are the exact figures the histogram
    // layer reports, so they also bound the instrumentation's own cost.
    match (
        piped_smoke(&parse_piped(&read(&piped_baseline))),
        current_piped,
    ) {
        (Some((base_p50, base_p99)), Some((cur_p50, cur_p99))) => {
            checks.push(Check {
                metric: "piped smoke: latency_p50_ms".to_string(),
                current: cur_p50,
                baseline: base_p50,
                limit: base_p50 * (1.0 + threshold) + SLACK_MS,
                lower_bound: false,
            });
            // Wider absolute slack than the in-process smoke gate: the
            // quick run offers only 60 jobs, so its p99 is effectively the
            // single slowest job — the first uncached x264 run (~20 ms) —
            // while the full-mode baseline amortizes that cold start over
            // 240 mostly-cached samples. A real regression (lock on the
            // record path, lost zero-copy) still clears 35 ms easily.
            const SLACK_MS_PIPED_P99: f64 = 35.0;
            checks.push(Check {
                metric: "piped smoke: latency_p99_ms".to_string(),
                current: cur_p99,
                baseline: base_p99,
                limit: base_p99 * (1.0 + threshold) + SLACK_MS_PIPED_P99,
                lower_bound: false,
            });
        }
        (Some(_), None) => {
            missing.push("piped_load smoke run is in the baseline but not the current run".into());
        }
        (None, _) => panic!("no piped_load runs parsed from the baseline"),
    }

    // Checksum-kernel gates, both floors: kernel MB/s must not fall more
    // than the threshold below the committed baseline, and the
    // speedup-over-scalar must stay at or above 3× — the optimised kernels
    // exist to beat the reference, so drifting back towards it is the
    // regression even if absolute MB/s still looks healthy on a fast host.
    const SLACK_MBPS: f64 = 100.0;
    const MIN_SPEEDUP: f64 = 3.0;
    let baseline_checksum = parse_checksum(&read(&checksum_baseline));
    assert!(
        !current_checksum.is_empty() && !baseline_checksum.is_empty(),
        "no checksum_kernels entries parsed"
    );
    for (kernel, base_mbps, _) in &baseline_checksum {
        let Some((_, cur_mbps, cur_speedup)) =
            current_checksum.iter().find(|(k, _, _)| k == kernel)
        else {
            missing.push(format!(
                "checksum kernel {kernel:?} is in the baseline but not the current run"
            ));
            continue;
        };
        checks.push(Check {
            metric: format!("{kernel}: kernel_mb_per_s (floor)"),
            current: *cur_mbps,
            baseline: *base_mbps,
            limit: (base_mbps * (1.0 - threshold) - SLACK_MBPS).max(0.0),
            lower_bound: true,
        });
        checks.push(Check {
            metric: format!("{kernel}: speedup_vs_scalar (floor)"),
            current: *cur_speedup,
            baseline: MIN_SPEEDUP,
            limit: MIN_SPEEDUP,
            lower_bound: true,
        });
    }

    // Content-cache gates: the zipf hit rate must not drop (a floor — a
    // caching or coalescing bug shows up as re-run pipelines), and the
    // cached p99 must not regress like any other latency.
    match (parse_zipf(&baseline_serve_raw), current_zipf) {
        (Some((base_hit, base_p99)), Some((cur_hit, cur_p99))) => {
            checks.push(Check {
                metric: "zipf cached: hit_rate (floor)".to_string(),
                current: cur_hit,
                baseline: base_hit,
                limit: (base_hit * (1.0 - threshold) - SLACK_HIT).max(0.0),
                lower_bound: true,
            });
            checks.push(Check {
                metric: "zipf cached: latency_p99_ms".to_string(),
                current: cur_p99,
                baseline: base_p99,
                limit: base_p99 * (1.0 + threshold) + SLACK_MS,
                lower_bound: false,
            });
        }
        (Some(_), None) => missing.push(
            "pipeserve_load zipf section is in the baseline but not the current run".to_string(),
        ),
        // A baseline predating the cache gates nothing extra.
        (None, _) => {}
    }

    let mut table = pipe_bench::Table::new(&["metric", "current", "baseline", "limit", "verdict"]);
    let mut failed = 0usize;
    for check in &checks {
        if !check.passed() {
            failed += 1;
        }
        table.row(vec![
            check.metric.clone(),
            format!("{:.2}", check.current),
            format!("{:.2}", check.baseline),
            format!("{:.2}", check.limit),
            if check.passed() { "PASS" } else { "FAIL" }.to_string(),
        ]);
    }
    println!(
        "bench_gate — {} checks at a {:.0}% regression threshold",
        checks.len(),
        threshold * 100.0
    );
    table.print();
    for gone in &missing {
        eprintln!("ERROR: {gone} — update the committed baseline alongside the change");
    }
    if failed > 0 || !missing.is_empty() {
        eprintln!(
            "ERROR: {failed} bench metric(s) regressed past the gate, {} baseline metric(s) \
             unmatched",
            missing.len()
        );
        std::process::exit(1);
    }
    println!("bench_gate: all checks passed");
}
