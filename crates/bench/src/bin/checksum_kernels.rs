//! Throughput microbenchmark for the checksum kernels
//! (`BENCH_checksum.json` trajectory).
//!
//! The serving data path folds a CRC-32 over every wire frame and a
//! SHA-256 over every streamed job input, so both kernels sit on the
//! per-byte critical path of `piped`. This binary measures each kernel's
//! single-core throughput in MB/s against its scalar reference
//! implementation ([`checksum::crc32_scalar`], [`checksum::sha256_scalar`])
//! on the same buffer, and reports the speedup — the figure the bench gate
//! enforces a floor on (the optimised kernels must stay ≥ 3× scalar).
//!
//! Every timed run re-checks the kernel's digest against the scalar
//! reference, so a fast-but-wrong kernel cannot post a number.
//!
//! Results go to `BENCH_checksum.json` (override with
//! `CHECKSUM_BENCH_OUT`); set `CHECKSUM_BENCH_QUICK=1` (or `--quick`) for
//! the seconds-scale smoke sizing CI uses.

use std::time::Duration;

use checksum::{crc32_scalar, sha256_scalar, Crc32, Sha256};
use pipe_bench::{time_mean, Table};

/// One kernel-vs-scalar measurement.
struct Entry {
    kernel: &'static str,
    input_bytes: usize,
    t_scalar: Duration,
    t_kernel: Duration,
}

impl Entry {
    fn scalar_mb_per_s(&self) -> f64 {
        self.input_bytes as f64 / 1e6 / self.t_scalar.as_secs_f64().max(1e-12)
    }

    fn kernel_mb_per_s(&self) -> f64 {
        self.input_bytes as f64 / 1e6 / self.t_kernel.as_secs_f64().max(1e-12)
    }

    fn speedup(&self) -> f64 {
        self.kernel_mb_per_s() / self.scalar_mb_per_s().max(1e-12)
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"kernel\": \"{}\",\n",
                "      \"input_bytes\": {},\n",
                "      \"scalar_mb_per_s\": {:.1},\n",
                "      \"kernel_mb_per_s\": {:.1},\n",
                "      \"speedup\": {:.2}\n",
                "    }}"
            ),
            self.kernel,
            self.input_bytes,
            self.scalar_mb_per_s(),
            self.kernel_mb_per_s(),
            self.speedup(),
        )
    }
}

/// A deterministic pseudo-random buffer (xorshift fill), so both
/// implementations hash identical non-trivial content on every host.
fn test_buffer(len: usize) -> Vec<u8> {
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let mut buf = Vec::with_capacity(len);
    while buf.len() < len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        buf.extend_from_slice(&state.to_le_bytes());
    }
    buf.truncate(len);
    buf
}

fn bench_crc32(data: &[u8], runs: usize) -> Entry {
    let expected = crc32_scalar(data);
    let t_scalar = time_mean(runs, || {
        assert_eq!(crc32_scalar(std::hint::black_box(data)), expected);
    });
    let t_kernel = time_mean(runs, || {
        let mut crc = Crc32::new();
        crc.update(std::hint::black_box(data));
        assert_eq!(crc.finalize(), expected, "CRC-32 kernel diverged");
    });
    Entry {
        kernel: "crc32",
        input_bytes: data.len(),
        t_scalar,
        t_kernel,
    }
}

fn bench_sha256(data: &[u8], runs: usize) -> Entry {
    let expected = sha256_scalar(data);
    let t_scalar = time_mean(runs, || {
        assert_eq!(sha256_scalar(std::hint::black_box(data)), expected);
    });
    let t_kernel = time_mean(runs, || {
        let mut sha = Sha256::new();
        sha.update(std::hint::black_box(data));
        assert_eq!(sha.finalize(), expected, "SHA-256 kernel diverged");
    });
    Entry {
        kernel: "sha256",
        input_bytes: data.len(),
        t_scalar,
        t_kernel,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick")
        || std::env::var("CHECKSUM_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let out_path =
        std::env::var("CHECKSUM_BENCH_OUT").unwrap_or_else(|_| "BENCH_checksum.json".to_string());

    let (len, runs) = if quick { (4 << 20, 3) } else { (32 << 20, 5) };
    let data = test_buffer(len);
    let entries = vec![bench_crc32(&data, runs), bench_sha256(&data, runs)];

    let mut table = Table::new(&["kernel", "input (MiB)", "scalar MB/s", "kernel MB/s", "x"]);
    for e in &entries {
        table.row(vec![
            e.kernel.to_string(),
            format!("{}", e.input_bytes >> 20),
            format!("{:.0}", e.scalar_mb_per_s()),
            format!("{:.0}", e.kernel_mb_per_s()),
            format!("{:.2}", e.speedup()),
        ]);
    }
    println!("checksum_kernels — optimised kernels vs scalar references");
    println!("{}", table.render());

    let entry_json: Vec<String> = entries.iter().map(Entry::json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"checksum_kernels\",\n",
            "  \"quick\": {},\n",
            "  \"entries\": [\n{}\n  ]\n",
            "}}\n"
        ),
        quick,
        entry_json.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("failed to write benchmark JSON");
    println!("wrote {out_path}");
}
