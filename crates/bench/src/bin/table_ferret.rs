//! Regenerates Figure 6: ferret performance comparison (Cilk-P vs
//! Pthreads-style bind-to-stage vs TBB-style construct-and-run).
//!
//! Real executions on the host provide `T_S`, `T_1` and output-correctness
//! checks; the processor sweep is produced by replaying the recorded
//! weighted dag through the scheduler simulator (see DESIGN.md §"Per-
//! experiment index", E3).

use pipe_bench::{secs, time, Table, PAPER_PROCESSOR_COUNTS};
use pipedag::{
    simulate_bind_to_stage, simulate_construct_and_run, simulate_piper, BindToStageConfig,
};
use piper::{PipeOptions, ThreadPool};
use workloads::ferret;

fn main() {
    let config = ferret::FerretConfig::default();
    let index = ferret::build_index(&config);

    // Real executions: serial reference and one-worker PIPER run.
    let (serial_out, t_s) = time(|| ferret::run_serial(&config, &index));
    let pool1 = ThreadPool::new(1);
    let ((), t_1) = time(|| {
        let out = ferret::run_piper(&config, &index, &pool1, PipeOptions::with_throttle(10));
        assert_eq!(
            out.len(),
            serial_out.len(),
            "PIPER output must match serial"
        );
    });
    println!(
        "ferret (synthetic): {} queries, {} database images",
        config.queries, config.database_size
    );
    println!(
        "measured on this host:  T_S = {}s   T_1 = {}s   serial overhead T_1/T_S = {:.3}",
        secs(t_s),
        secs(t_1),
        t_1.as_secs_f64() / t_s.as_secs_f64()
    );
    println!();

    // Recorded dag for the processor sweep.
    let spec = ferret::record_spec(&config, &index);
    let analysis = pipedag::analyze_unthrottled(&spec);
    println!(
        "recorded dag: work = {} ms, span = {} ms, parallelism = {:.1}",
        analysis.work / 1_000_000,
        analysis.span / 1_000_000,
        analysis.parallelism()
    );
    println!();

    let serial_time = spec.work();
    let mut table = Table::new(&[
        "P",
        "Cilk-P T_P",
        "Pthreads T_P",
        "TBB T_P",
        "Cilk-P speedup",
        "Pthreads speedup",
        "TBB speedup",
    ]);
    for &p in &PAPER_PROCESSOR_COUNTS {
        // The paper uses K = 10P for ferret.
        let cilkp = simulate_piper(&spec, p, Some(10 * p));
        let pthreads = simulate_bind_to_stage(
            &spec,
            p,
            BindToStageConfig {
                threads_per_parallel_stage: p.max(1),
                queue_capacity: 10 * p,
            },
        );
        let tbb = simulate_construct_and_run(&spec, p, 10 * p);
        table.row(vec![
            p.to_string(),
            format!("{:.3}", cilkp.makespan as f64 / 1e9),
            format!("{:.3}", pthreads.makespan as f64 / 1e9),
            format!("{:.3}", tbb.makespan as f64 / 1e9),
            format!("{:.2}", cilkp.speedup_vs(serial_time)),
            format!("{:.2}", pthreads.speedup_vs(serial_time)),
            format!("{:.2}", tbb.speedup_vs(serial_time)),
        ]);
    }
    println!("Figure 6 (shape): simulated schedule of the recorded ferret dag, K = 10P");
    table.print();
}
