//! Regenerates Figure 3: the structure of the x264 pipeline dag — stage
//! skipping per iteration, I/P-dependent cross edges, null nodes — and its
//! work/span properties.

use pipe_bench::Table;
use pipedag::analyze_unthrottled;
use workloads::x264::{build_spec, X264Config};

fn main() {
    let config = X264Config {
        frames: 24,
        width: 128,
        height: 96,
        gop: 4,
        bframes: 1,
        ..Default::default()
    };
    let spec = build_spec(&config, 10, 20, 1);

    println!(
        "Figure 3: x264 pipeline dag structure (w = {}, gop = {})",
        config.encode.mv_row_window, config.gop
    );
    println!();
    let mut table = Table::new(&[
        "iteration",
        "first row stage",
        "stages skipped",
        "row nodes",
        "waiting rows (P) / continue rows (I)",
    ]);
    for (i, nodes) in spec.iterations.iter().enumerate() {
        let first_row_stage = nodes[1].stage;
        let rows = nodes.len() - 3; // minus stage 0, B-frame stage, END stage
        let waits = nodes[1..1 + rows].iter().filter(|n| n.wait).count();
        table.row(vec![
            i.to_string(),
            first_row_stage.to_string(),
            (first_row_stage - 1).to_string(),
            rows.to_string(),
            format!("{}/{}", waits, rows - waits),
        ]);
    }
    table.print();

    let a = analyze_unthrottled(&spec);
    println!(
        "work = {}, span = {}, parallelism = {:.2}",
        a.work,
        a.span,
        a.parallelism()
    );
    println!("Stage skipping shifts each iteration down by w rows (cross edges land on null nodes of the");
    println!(
        "previous iteration), and I-frame iterations have pipe_continue rows (no cross edges)."
    );
}
