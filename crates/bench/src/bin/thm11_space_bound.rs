//! Empirical check of Theorem 11: PIPER's live pipeline state is bounded by
//! the throttling limit — `S_P ≤ P(S_1 + f·D·K)` — so the peak number of
//! simultaneously live iterations never exceeds `K`, and nesting multiplies
//! by the depth `D`, not by the running time.

use pipe_bench::Table;
use piper::{NodeOutcome, PipeOptions, PipelineIteration, Stage0, ThreadPool};

struct Busy {
    rounds: u64,
}

impl PipelineIteration for Busy {
    fn run_node(&mut self, stage: u64) -> NodeOutcome {
        let mut acc = stage;
        for k in 0..self.rounds {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
        }
        std::hint::black_box(acc);
        if stage < 3 {
            NodeOutcome::ContinueTo(stage + 1)
        } else {
            NodeOutcome::Done
        }
    }
}

fn main() {
    println!(
        "Theorem 11: peak live iterations vs throttling limit K (runaway-pipeline prevention)"
    );
    println!();
    let pool = ThreadPool::new(4);
    let n = 5_000u64;
    let mut table = Table::new(&["K", "iterations", "peak live iterations", "bound respected"]);
    for k in [1usize, 2, 4, 8, 16, 64, 256] {
        let stats = pool.pipe_while(PipeOptions::with_throttle(k), move |i| {
            if i == n {
                Stage0::Stop
            } else {
                Stage0::proceed(Busy { rounds: 200 })
            }
        });
        table.row(vec![
            k.to_string(),
            stats.iterations.to_string(),
            stats.peak_active_iterations.to_string(),
            (stats.peak_active_iterations <= k as u64).to_string(),
        ]);
    }
    table.print();
    println!("Every run keeps at most K iterations live regardless of the pipeline length (5,000");
    println!("iterations here), which is exactly the guarantee that prevents runaway pipelines.");
}
