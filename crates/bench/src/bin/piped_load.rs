//! Load generator for the `piped` network serving daemon
//! (`BENCH_piped.json` trajectory).
//!
//! Drives a mixed dedup / ferret / x264 / pipe-fib fleet over **loopback
//! TCP** — by default against an in-process [`piped::PipedServer`] on an
//! ephemeral port, or against an external daemon (`--addr HOST:PORT` or
//! `PIPED_ADDR`, the CI path) — at several open-loop arrival rates, and
//! reports per rate:
//!
//! * **throughput** (completed jobs per second of wall clock),
//! * **end-to-end latency** p50 / p99 (SUBMIT written → JOB_DONE read,
//!   both network directions included),
//! * **rejection rate** (wire-level REJECTED verdicts: bounded queue and
//!   input caps shedding load),
//! * the executor's aggregate counters, fetched over the METRICS frame
//!   (cumulative across the rates, since the server is shared).
//!
//! After the rate runs, a self-hosted daemon gets a **zipf phase**: one
//! fixed zipf(1.0)-distributed sequence over parameter-tweaked distinct
//! inputs, with the daemon's cache counters (read over METRICS) reported
//! as a hit rate next to the end-to-end p50/p99 — the wire-level view of
//! the content-addressed result cache.
//!
//! Every completed job's streamed output is verified **byte-identical**
//! to its workload's serial reference — cached responses included — so a
//! protocol, scheduling or caching bug
//! cannot hide behind good numbers. After the rate runs, a **drain
//! phase** exercises graceful shutdown mid-flight: a batch is admitted, a
//! second connection sends DRAIN, every admitted job must complete (and
//! verify), and a post-drain SUBMIT must be rejected with the `draining`
//! code. Results go to `BENCH_piped.json` (override with
//! `PIPED_BENCH_OUT`).
//!
//! Flags / environment:
//!
//! * `--quick` (or `PIPED_BENCH_QUICK=1`) — seconds-scale smoke run
//!   (used by CI);
//! * `--fail-on-rejections` — exit non-zero if the *lowest* (smoke)
//!   arrival rate rejected any job;
//! * `--addr HOST:PORT` (or `PIPED_ADDR`) — drive an external daemon
//!   instead of self-hosting (the drain phase will drain *that* server).

use std::time::{Duration, Instant};

use pipe_bench::Table;
use piped::{
    ClientError, ErrorCode, PipedClient, PipedServer, RemoteJob, ServerConfig, SubmitOptions,
    WireJobStatus,
};
use pipeserve::Priority;

/// One workload in the mix: its byte input and expected output bytes.
struct MixEntry {
    name: &'static str,
    input: Vec<u8>,
    expected: Vec<u8>,
}

/// The mixed fleet, with serial references computed once up front.
struct Mix {
    entries: Vec<MixEntry>,
}

impl Mix {
    fn prepare() -> Mix {
        let inputs: Vec<(&'static str, Vec<u8>)> = vec![
            (
                "dedup",
                workloads::dedup::DedupConfig::tiny().generate_input(),
            ),
            (
                "ferret",
                workloads::bytes::ferret_input(&workloads::ferret::FerretConfig::tiny()),
            ),
            (
                "x264",
                workloads::bytes::x264_input(&workloads::x264::X264Config::tiny()),
            ),
            (
                "pipefib",
                workloads::bytes::pipefib_input(&workloads::pipefib::PipeFibConfig::tiny()),
            ),
        ];
        let entries = inputs
            .into_iter()
            .map(|(name, input)| {
                let expected = (workloads::bytes::lookup(name).expect("registered").serial)(&input)
                    .expect("serial reference");
                MixEntry {
                    name,
                    input,
                    expected,
                }
            })
            .collect();
        Mix { entries }
    }

    /// The `i`-th job of the fleet: cycles through the four workloads and
    /// the three priority classes.
    fn job(&self, i: usize) -> (&MixEntry, SubmitOptions) {
        let entry = &self.entries[i % self.entries.len()];
        let priority = [Priority::Interactive, Priority::Normal, Priority::Batch][i % 3];
        (
            entry,
            SubmitOptions::new(entry.name)
                .priority(priority)
                .throttle(4),
        )
    }
}

/// Results of one arrival-rate run.
struct RunResult {
    rate: f64,
    offered: usize,
    rejected: u64,
    completed: u64,
    wall: Duration,
    /// End-to-end client-observed latency, recorded into a mergeable
    /// [`obs::Histogram`] (quantiles overestimate by < 6.25 %).
    latency: obs::HistogramSnapshot,
    /// Total verified output bytes streamed back over the run.
    output_bytes: u64,
    /// Client-process [`checksum::buf`] gauge deltas over the run:
    /// chunks minted and data-path bytes memcpy'd.
    chunks_created: u64,
    bytes_copied: u64,
    /// Cumulative executor metrics fetched over the wire after the run.
    metrics_json: String,
}

impl RunResult {
    fn rejection_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.rejected as f64 / self.offered as f64
        }
    }

    fn throughput(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn percentile(&self, p: f64) -> f64 {
        self.latency.quantile(p) as f64 / 1e6
    }

    fn output_mb_per_s(&self) -> f64 {
        self.output_bytes as f64 / 1e6 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Data-path memcpy'd bytes per chunk minted in the client process —
    /// the zero-copy health metric (a regression shows up as this figure
    /// creeping back towards the chunk size).
    fn copies_per_chunk(&self) -> f64 {
        self.bytes_copied as f64 / self.chunks_created.max(1) as f64
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"arrival_rate_jobs_per_s\": {:.1},\n",
                "      \"offered_jobs\": {},\n",
                "      \"rejected_jobs\": {},\n",
                "      \"rejection_rate\": {:.4},\n",
                "      \"completed_jobs\": {},\n",
                "      \"wall_s\": {:.4},\n",
                "      \"throughput_jobs_per_s\": {:.1},\n",
                "      \"output_bytes\": {},\n",
                "      \"output_mb_per_s\": {:.2},\n",
                "      \"client_chunks_created\": {},\n",
                "      \"client_bytes_copied\": {},\n",
                "      \"client_copies_per_chunk\": {:.1},\n",
                "      \"latency_p50_ms\": {:.3},\n",
                "      \"latency_p99_ms\": {:.3},\n",
                "      \"service_metrics_cumulative\": {}\n",
                "    }}"
            ),
            self.rate,
            self.offered,
            self.rejected,
            self.rejection_rate(),
            self.completed,
            self.wall.as_secs_f64(),
            self.throughput(),
            self.output_bytes,
            self.output_mb_per_s(),
            self.chunks_created,
            self.bytes_copied,
            self.copies_per_chunk(),
            self.percentile(0.50),
            self.percentile(0.99),
            self.metrics_json,
        )
    }
}

fn die(message: &str) -> ! {
    eprintln!("ERROR: {message}");
    std::process::exit(1);
}

/// What one submitter connection measured.
struct ConnTally {
    rejected: u64,
    /// This connection's latency histogram; the caller merges the
    /// per-connection snapshots (merge ≡ one shared histogram).
    latency: obs::HistogramSnapshot,
    /// `(job index, output bytes)` of each completed job, verified by the
    /// caller after the clock stops.
    outputs: Vec<(usize, Vec<u8>)>,
}

/// Submits `offered` mixed jobs at an aggregate `rate` jobs/s (open loop)
/// over `connections` client connections — one submitter thread per
/// connection, each holding the absolute schedule for its share, so the
/// offered rate is not bounded by one thread's ACCEPTED round-trips.
/// Every completed job is verified byte-for-byte.
fn run_at_rate(addr: &str, mix: &Mix, rate: f64, offered: usize, connections: usize) -> RunResult {
    let interval = Duration::from_secs_f64(1.0 / rate);
    let buf_before = checksum::buf::global_stats();
    let start = Instant::now();
    let mut submitters = Vec::with_capacity(connections);
    for t in 0..connections {
        let addr = addr.to_string();
        let mix_jobs: Vec<(usize, Vec<u8>, SubmitOptions)> = (0..offered)
            .filter(|i| i % connections == t)
            .map(|i| {
                let (entry, options) = mix.job(i);
                (i, entry.input.clone(), options)
            })
            .collect();
        submitters.push(std::thread::spawn(move || -> ConnTally {
            let client = PipedClient::connect(&*addr).expect("connect to piped server");
            let mut accepted: Vec<(RemoteJob, usize)> = Vec::with_capacity(mix_jobs.len());
            let mut rejected = 0u64;
            for (i, input, options) in mix_jobs {
                // Open-loop arrivals: stick to the absolute schedule even
                // if submission itself lags.
                let due = start + interval.mul_f64(i as f64);
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                match client.submit(&options, &input) {
                    Ok(job) => {
                        // Every ACCEPTED carries a nonzero trace id.
                        if job.trace_id() == 0 {
                            die(&format!("job {i}: ACCEPTED carried a zero trace id"));
                        }
                        accepted.push((job, i));
                    }
                    Err(ClientError::Rejected { .. }) => rejected += 1,
                    Err(e) => die(&format!("job {i}: submit failed: {e}")),
                }
            }
            // One TRACE round-trip per connection while jobs are in
            // flight: the span tree must answer under load (a live job
            // answers partially; a finished one from the slow ring or
            // with an empty list — all well-formed).
            if let Some((job, i)) = accepted.first() {
                match job.trace(&client) {
                    Ok(json) => {
                        if !json.contains("\"trace_id\"") || !json.contains("\"spans\"") {
                            die(&format!("job {i}: malformed TRACE reply: {json}"));
                        }
                    }
                    Err(e) => die(&format!("job {i}: TRACE failed: {e}")),
                }
            }
            let latency = obs::Histogram::new();
            let mut outputs = Vec::with_capacity(accepted.len());
            for (job, i) in accepted {
                let outcome = match job.wait() {
                    Ok(outcome) => outcome,
                    Err(e) => die(&format!("job {i}: wait failed: {e}")),
                };
                if outcome.status != WireJobStatus::Completed {
                    die(&format!(
                        "job {i} ended as {:?}: {}",
                        outcome.status, outcome.message
                    ));
                }
                latency.record_duration(outcome.latency);
                outputs.push((i, outcome.output));
            }
            ConnTally {
                rejected,
                latency: latency.snapshot(),
                outputs,
            }
        }));
    }
    let tallies: Vec<ConnTally> = submitters
        .into_iter()
        .map(|thread| thread.join().expect("submitter thread"))
        .collect();
    let wall = start.elapsed();
    let buf_after = checksum::buf::global_stats();

    // Verify after the clock stops, so the published throughput measures
    // the service, not the harness's reference comparisons.
    let mut rejected = 0u64;
    let mut completed = 0u64;
    let mut output_bytes = 0u64;
    let mut latency = obs::HistogramSnapshot::default();
    for tally in &tallies {
        rejected += tally.rejected;
        completed += tally.outputs.len() as u64;
        output_bytes += tally
            .outputs
            .iter()
            .map(|(_, o)| o.len() as u64)
            .sum::<u64>();
        latency = latency.merge(&tally.latency);
        for (i, output) in &tally.outputs {
            let entry = mix.job(*i).0;
            if output != &entry.expected {
                die(&format!(
                    "job {i} ({}): output differs from the serial reference ({} vs {} bytes)",
                    entry.name,
                    output.len(),
                    entry.expected.len()
                ));
            }
        }
    }
    let metrics_client = PipedClient::connect(addr).expect("connect for metrics");
    let metrics_json = metrics_client
        .metrics_json()
        .expect("metrics over the wire");
    RunResult {
        rate,
        offered,
        rejected,
        completed,
        wall,
        latency,
        output_bytes,
        chunks_created: buf_after.chunks_created - buf_before.chunks_created,
        bytes_copied: buf_after.bytes_copied - buf_before.bytes_copied,
        metrics_json,
    }
}

/// Results of the zipf phase: the same heavy-head request mix the
/// `pipeserve_load` zipf section uses, but end-to-end over loopback TCP —
/// the daemon content-addresses each streamed input, so repeats are served
/// from its result cache (or coalesce onto the in-flight run) without
/// launching a pipeline.
struct ZipfResult {
    distinct: usize,
    offered: usize,
    completed: u64,
    wall: Duration,
    latency: obs::HistogramSnapshot,
    /// Cache counter deltas over the phase, read via METRICS frames.
    hits: u64,
    misses: u64,
    coalesced: u64,
}

impl ZipfResult {
    fn throughput(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn percentile(&self, p: f64) -> f64 {
        self.latency.quantile(p) as f64 / 1e6
    }

    /// Fraction of submissions served without a fresh pipeline.
    fn hit_rate(&self) -> f64 {
        let keyed = self.hits + self.misses + self.coalesced;
        if keyed == 0 {
            return 0.0;
        }
        (self.hits + self.coalesced) as f64 / keyed as f64
    }
}

/// Scans a METRICS JSON for a numeric counter (the emitters write flat
/// `"key":value` pairs; the sharded form nests them under `"aggregate"`,
/// where the cache counters live too, so the first match is the right one).
fn metrics_counter(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle).map(|at| at + needle.len());
    let Some(at) = at else { return 0 };
    json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

/// Deterministic 64-bit mixer (splitmix64); same fixed sequence on every
/// host so the reported hit rate is a property of the daemon.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Drives `offered` zipf(1.0)-distributed submissions over `distinct`
/// parameter-tweaked inputs, closed-loop over `connections` connections,
/// verifying every response byte-identical to its serial reference.
fn run_zipf_phase(addr: &str, distinct: usize, offered: usize, connections: usize) -> ZipfResult {
    // Distinct documents: cycle the registry, tweak one parameter per
    // variant so every input (and so every content key) is unique.
    let docs: Vec<(&'static str, Vec<u8>, Vec<u8>)> = (0..distinct)
        .map(|i| {
            let variant = i / 4;
            let (name, input): (&'static str, Vec<u8>) = match i % 4 {
                0 => {
                    let mut input = workloads::dedup::DedupConfig::tiny().generate_input();
                    input.extend_from_slice(&(variant as u32).to_le_bytes());
                    ("dedup", input)
                }
                1 => {
                    let mut config = workloads::ferret::FerretConfig::tiny();
                    config.queries += variant;
                    ("ferret", workloads::bytes::ferret_input(&config))
                }
                2 => {
                    let mut config = workloads::x264::X264Config::tiny();
                    config.frames += variant as u64;
                    ("x264", workloads::bytes::x264_input(&config))
                }
                _ => {
                    let mut config = workloads::pipefib::PipeFibConfig::tiny();
                    config.n += variant;
                    ("pipefib", workloads::bytes::pipefib_input(&config))
                }
            };
            let expected = (workloads::bytes::lookup(name).expect("registered").serial)(&input)
                .expect("serial reference");
            (name, input, expected)
        })
        .collect();
    // zipf(1.0) draws: rank r has weight 1/(r+1).
    let mut cumulative = Vec::with_capacity(distinct);
    let mut total = 0.0f64;
    for rank in 0..distinct {
        total += 1.0 / (rank + 1) as f64;
        cumulative.push(total);
    }
    let mut state = 0x5EED_CAFEu64;
    let sequence: Vec<usize> = (0..offered)
        .map(|_| {
            let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64 * total;
            cumulative.partition_point(|&c| c <= u).min(distinct - 1)
        })
        .collect();

    let metrics_client = PipedClient::connect(addr).expect("connect for zipf metrics");
    let before = metrics_client.metrics_json().expect("metrics before zipf");
    let start = Instant::now();
    let docs = std::sync::Arc::new(docs);
    let mut submitters = Vec::with_capacity(connections);
    for t in 0..connections {
        let addr = addr.to_string();
        let docs = std::sync::Arc::clone(&docs);
        let share: Vec<usize> = sequence
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % connections == t)
            .map(|(_, doc)| doc)
            .collect();
        submitters.push(std::thread::spawn(move || -> obs::HistogramSnapshot {
            let client = PipedClient::connect(&*addr).expect("connect for zipf phase");
            let latency = obs::Histogram::new();
            for doc_idx in share {
                let (name, input, expected) = &docs[doc_idx];
                // Closed loop per connection: submit, wait, verify.
                let job = match client.submit(&SubmitOptions::new(*name).throttle(4), input) {
                    Ok(job) => job,
                    Err(e) => die(&format!("zipf {name}: submit failed: {e}")),
                };
                let outcome = match job.wait() {
                    Ok(outcome) => outcome,
                    Err(e) => die(&format!("zipf {name}: wait failed: {e}")),
                };
                if outcome.status != WireJobStatus::Completed {
                    die(&format!("zipf {name} ended as {:?}", outcome.status));
                }
                if &outcome.output != expected {
                    die(&format!(
                        "zipf {name}: response differs from the serial reference"
                    ));
                }
                latency.record_duration(outcome.latency);
            }
            latency.snapshot()
        }));
    }
    let mut latency = obs::HistogramSnapshot::default();
    for thread in submitters {
        latency = latency.merge(&thread.join().expect("zipf submitter thread"));
    }
    let wall = start.elapsed();
    let after = metrics_client.metrics_json().expect("metrics after zipf");
    ZipfResult {
        distinct,
        offered,
        completed: latency.count(),
        wall,
        latency,
        hits: metrics_counter(&after, "cache_hits") - metrics_counter(&before, "cache_hits"),
        misses: metrics_counter(&after, "cache_misses") - metrics_counter(&before, "cache_misses"),
        coalesced: metrics_counter(&after, "coalesced") - metrics_counter(&before, "coalesced"),
    }
}

/// Results of the mid-flight drain phase.
struct DrainResult {
    admitted: usize,
    completed_after_drain: usize,
    post_drain_rejected_with_draining: bool,
    wall: Duration,
}

/// Admits a batch, drains mid-flight from a second connection, verifies
/// every admitted job completes byte-identical, and checks that new
/// SUBMITs get the `draining` verdict. Run **last**: the server accepts no
/// work afterwards.
fn run_drain_phase(addr: &str, mix: &Mix, batch: usize) -> DrainResult {
    let client = PipedClient::connect(addr).expect("connect for drain phase");
    let control = PipedClient::connect(addr).expect("connect drain control");
    let start = Instant::now();
    let mut jobs = Vec::with_capacity(batch);
    for i in 0..batch {
        let (entry, options) = mix.job(i);
        match client.submit(&options, &entry.input) {
            Ok(job) => jobs.push((job, i)),
            Err(e) => die(&format!("drain batch submit {i} failed: {e}")),
        }
    }
    let admitted = jobs.len();
    // Mid-flight: the jobs are admitted (ACCEPTED received) but running.
    control.drain().expect("drain");

    let mut completed = 0usize;
    for (job, i) in jobs {
        let outcome = job.wait().expect("wait after drain");
        if outcome.status != WireJobStatus::Completed {
            die(&format!(
                "drained job {i} ended as {:?} (admitted jobs must complete)",
                outcome.status
            ));
        }
        let entry = mix.job(i).0;
        if outcome.output != entry.expected {
            die(&format!("drained job {i} ({}): output differs", entry.name));
        }
        completed += 1;
    }

    let verdict = client.submit(&mix.job(0).1, &mix.job(0).0.input);
    let post_drain_rejected_with_draining = matches!(
        verdict,
        Err(ClientError::Rejected {
            code: ErrorCode::Draining,
            ..
        })
    );
    if !post_drain_rejected_with_draining {
        die(&format!(
            "post-drain submit was not rejected with the draining code: {verdict:?}"
        ));
    }
    DrainResult {
        admitted,
        completed_after_drain: completed,
        post_drain_rejected_with_draining,
        wall: start.elapsed(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick")
        || std::env::var("PIPED_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let fail_on_rejections = args.iter().any(|a| a == "--fail-on-rejections");
    let out_path =
        std::env::var("PIPED_BENCH_OUT").unwrap_or_else(|_| "BENCH_piped.json".to_string());
    let external_addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|at| args.get(at + 1).cloned())
        .or_else(|| std::env::var("PIPED_ADDR").ok());

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Self-host unless an external daemon was named. The small queue in
    // quick mode lets the overload rate actually trip backpressure, so the
    // rejection machinery is exercised for real, not vacuously.
    let (rates, offered, max_queue, connections): (Vec<f64>, usize, usize, usize) = if quick {
        (vec![25.0, 2000.0], 60, 16, 4)
    } else {
        (vec![50.0, 400.0, 4000.0], 240, 64, 8)
    };
    let mut server_thread = None;
    let addr = match &external_addr {
        Some(addr) => addr.clone(),
        None => {
            let server = PipedServer::bind(
                "127.0.0.1:0",
                ServerConfig {
                    max_queue,
                    ..ServerConfig::default()
                },
            )
            .expect("bind in-process server");
            let addr = server.local_addr().expect("bound address").to_string();
            let handle = server.handle();
            server_thread = Some((
                std::thread::spawn(move || {
                    let _ = server.serve();
                }),
                handle,
            ));
            addr
        }
    };

    let mix = Mix::prepare();
    let mut runs = Vec::new();
    for &rate in &rates {
        println!(
            "running {offered} mixed jobs at {rate:.0} jobs/s over {connections} connections ..."
        );
        runs.push(run_at_rate(&addr, &mix, rate, offered, connections));
    }

    // Zipf phase (self-hosted only: it reads the daemon's cumulative cache
    // counters over METRICS, which an external shared server would skew —
    // and that server may run --no-cache).
    let zipf = if external_addr.is_none() {
        let (distinct, offered) = if quick { (16, 128) } else { (64, 512) };
        println!(
            "zipf phase: {offered} zipf(1.0) draws over {distinct} distinct inputs over \
             {connections} connections ..."
        );
        Some(run_zipf_phase(&addr, distinct, offered, connections))
    } else {
        None
    };

    println!("drain phase: admit a batch, drain mid-flight, verify completions ...");
    let drain = run_drain_phase(&addr, &mix, 8);

    let mut table = Table::new(&[
        "rate (j/s)",
        "offered",
        "rejected",
        "completed",
        "thru (j/s)",
        "out (MB/s)",
        "cp/chunk (B)",
        "p50 (ms)",
        "p99 (ms)",
    ]);
    for r in &runs {
        table.row(vec![
            format!("{:.0}", r.rate),
            r.offered.to_string(),
            r.rejected.to_string(),
            r.completed.to_string(),
            format!("{:.1}", r.throughput()),
            format!("{:.2}", r.output_mb_per_s()),
            format!("{:.1}", r.copies_per_chunk()),
            format!("{:.2}", r.percentile(0.5)),
            format!("{:.2}", r.percentile(0.99)),
        ]);
    }
    println!(
        "piped_load — mixed fleet over loopback TCP ({} server)",
        if external_addr.is_some() {
            "external"
        } else {
            "in-process"
        }
    );
    println!("{}", table.render());
    if let Some(zipf) = &zipf {
        println!(
            "zipf(1.0): {} draws over {} distinct inputs — {:.1} j/s, hit rate {:.3} \
             ({} hits / {} misses / {} coalesced), p50 {:.2} ms, p99 {:.2} ms",
            zipf.offered,
            zipf.distinct,
            zipf.throughput(),
            zipf.hit_rate(),
            zipf.hits,
            zipf.misses,
            zipf.coalesced,
            zipf.percentile(0.5),
            zipf.percentile(0.99),
        );
    }
    println!(
        "drain: {}/{} admitted jobs completed after mid-flight drain; post-drain submit rejected: {}",
        drain.completed_after_drain, drain.admitted, drain.post_drain_rejected_with_draining
    );

    let run_json: Vec<String> = runs.iter().map(RunResult::json).collect();
    let zipf_json = match &zipf {
        Some(zipf) => format!(
            concat!(
                "  \"zipf\": {{\n",
                "    \"exponent\": 1.0,\n",
                "    \"distinct_inputs\": {},\n",
                "    \"offered_jobs\": {},\n",
                "    \"completed_jobs\": {},\n",
                "    \"wall_s\": {:.4},\n",
                "    \"throughput_jobs_per_s\": {:.1},\n",
                "    \"latency_p50_ms\": {:.3},\n",
                "    \"latency_p99_ms\": {:.3},\n",
                "    \"cache_hits\": {},\n",
                "    \"cache_misses\": {},\n",
                "    \"coalesced\": {},\n",
                "    \"hit_rate\": {:.4}\n",
                "  }},\n"
            ),
            zipf.distinct,
            zipf.offered,
            zipf.completed,
            zipf.wall.as_secs_f64(),
            zipf.throughput(),
            zipf.percentile(0.50),
            zipf.percentile(0.99),
            zipf.hits,
            zipf.misses,
            zipf.coalesced,
            zipf.hit_rate(),
        ),
        None => String::new(),
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"piped_load\",\n",
            "  \"quick\": {},\n",
            "  \"host_workers\": {},\n",
            "  \"transport\": \"loopback-tcp\",\n",
            "  \"server\": \"{}\",\n",
            "  \"job_mix\": [\"dedup\", \"ferret\", \"x264\", \"pipefib\"],\n",
            "  \"runs\": [\n{}\n  ],\n",
            "{}",
            "  \"drain\": {{\n",
            "    \"admitted\": {},\n",
            "    \"completed_after_drain\": {},\n",
            "    \"post_drain_rejected_with_draining\": {},\n",
            "    \"wall_s\": {:.4}\n",
            "  }}\n",
            "}}\n"
        ),
        quick,
        workers,
        if external_addr.is_some() {
            "external"
        } else {
            "in-process"
        },
        run_json.join(",\n"),
        zipf_json,
        drain.admitted,
        drain.completed_after_drain,
        drain.post_drain_rejected_with_draining,
        drain.wall.as_secs_f64(),
    );
    std::fs::write(&out_path, &json).expect("failed to write benchmark JSON");
    println!("wrote {out_path}");

    if let Some((thread, handle)) = server_thread {
        handle.stop();
        let _ = thread.join();
    }

    if fail_on_rejections {
        let smoke = &runs[0];
        if smoke.rejected > 0 {
            die(&format!(
                "smoke arrival rate ({:.0} jobs/s) rejected {} of {} jobs",
                smoke.rate, smoke.rejected, smoke.offered
            ));
        }
    }
}
