//! Adaptive throttling validated against the scheduler simulator for the
//! uniform case (Theorem 12).
//!
//! Theorem 12 says a uniform pipeline throttled with window `K = aP` stays
//! within a `(1 + c/a)` factor of the unthrottled schedule — i.e. for
//! uniform work, *wider is (weakly) better and `K ≈ P` is already enough*.
//! The adaptive controller must therefore (a) keep the pipeline correct,
//! (b) stay inside its `[floor, K]` band, and (c) move the effective
//! window in the direction the simulator says helps: its final window's
//! *predicted* makespan must not be worse than the floor's, and whenever
//! the run widened at all, the simulator must agree there was something to
//! gain. Wall-clock timings are deliberately not asserted — the simulator
//! provides the machine-independent half of the validation.

use pipedag::{analyze_unthrottled, simulate_piper};
use piper::{PipeOptions, ThreadPool};
use workloads::uniform::{self, UniformConfig};

/// Simulated makespans of the uniform grid for each candidate window.
fn predicted_makespans(config: &UniformConfig, workers: usize, k: usize) -> Vec<u64> {
    let spec = uniform::build_spec(config, 1);
    (1..=k)
        .map(|w| simulate_piper(&spec, workers, Some(w)).makespan)
        .collect()
}

#[test]
fn simulator_says_wider_windows_never_hurt_uniform_pipelines() {
    // The structural premise the widen-on-stall policy relies on: for the
    // uniform grid, the simulated makespan is non-increasing in the
    // throttle window. (This is Theorem 12's monotone direction; a
    // pathological dag — fig10 — does not have it, which is why the
    // controller also watches cross-edge stalls before widening.)
    let config = UniformConfig {
        iterations: 256,
        stages: 6,
        work_rounds: 1,
    };
    for workers in [2usize, 4, 8] {
        let makespans = predicted_makespans(&config, workers, 4 * workers);
        for pair in makespans.windows(2) {
            assert!(
                pair[1] <= pair[0],
                "simulated makespan increased when widening: {makespans:?} (P={workers})"
            );
        }
    }
}

#[test]
fn simulator_confirms_theorem_12_bound_at_k_equals_ap() {
    // Empirical Theorem 12 on the simulator: K = aP tracks the unthrottled
    // schedule within a small factor that shrinks as `a` grows.
    let config = UniformConfig {
        iterations: 512,
        stages: 8,
        work_rounds: 1,
    };
    let spec = uniform::build_spec(&config, 1);
    let analysis = analyze_unthrottled(&spec);
    for workers in [4usize, 8] {
        let unthrottled = simulate_piper(&spec, workers, None).makespan;
        let greedy_bound = analysis.work / workers as u64 + analysis.span;
        for (a, max_ratio) in [(1u64, 1.5), (2, 1.25), (4, 1.1)] {
            let throttled = simulate_piper(&spec, workers, Some(a as usize * workers)).makespan;
            let ratio = throttled as f64 / unthrottled as f64;
            assert!(
                ratio <= max_ratio,
                "K={a}P: throttled/unthrottled = {ratio:.3} > {max_ratio} (P={workers})"
            );
            assert!(
                throttled <= greedy_bound,
                "K={a}P: throttled makespan {throttled} above the greedy bound {greedy_bound}"
            );
        }
    }
}

#[test]
fn adaptive_window_on_the_real_runtime_matches_simulator_direction() {
    let config = UniformConfig {
        iterations: 600,
        stages: 6,
        work_rounds: 200,
    };
    let workers = 4;
    let k = 4 * workers;
    let serial = uniform::run_serial(&config);
    let pool = ThreadPool::new(workers);
    let makespans = predicted_makespans(&config, workers, k);

    for floor in [1usize, workers] {
        let options = PipeOptions::with_throttle(k).adaptive(floor);
        let (out, stats) = uniform::run_piper(&config, &pool, options);
        // (a) Correctness is window-independent: adaptation may never
        // change the output.
        assert_eq!(out, serial, "adaptive(floor={floor}) output diverged");
        assert_eq!(stats.iterations, config.iterations as u64);
        // (b) The controller stayed inside its band, and the ring held the
        // Theorem 11 space bound regardless of how the window moved.
        let window = stats.effective_window as usize;
        assert!(
            (floor..=k).contains(&window),
            "effective window {window} left [{floor}, {k}]"
        );
        assert!(stats.peak_active_iterations <= k as u64);
        // (c) Simulator agreement: the final window's predicted makespan is
        // no worse than the floor's — the controller moved along the
        // monotone direction Theorem 12 guarantees for uniform pipelines.
        assert!(
            makespans[window - 1] <= makespans[floor - 1],
            "final window {window} predicts {} > floor {floor}'s {}",
            makespans[window - 1],
            makespans[floor - 1]
        );
        // Note: no assertion ties *whether* the run widened to simulator
        // headroom — the simulator is idealized (unit work, zero runtime
        // overhead), while the controller reacts to real stalls, which
        // occur on a loaded host even when the ideal schedule is flat.
        // What must agree is the direction: wherever the controller ends
        // up, the simulator may not call it worse than where it started.
    }
}
