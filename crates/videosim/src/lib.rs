//! A synthetic video-encoder substrate for the x264 workload.
//!
//! The paper's flagship on-the-fly pipeline is the x264 H.264 encoder
//! (Section 3): frames are typed I/P/B, I- and P-frames are encoded row of
//! macroblocks by row of macroblocks, a P-frame row may depend on rows up to
//! a motion-vector window `w` *below* the same row in the previous I/P
//! frame, and buffered B-frames are encoded in parallel once their
//! surrounding I/P frames are done.
//!
//! Reproducing the actual H.264 bitstream is out of scope (and irrelevant to
//! the scheduling behaviour); this crate implements a structurally faithful
//! encoder over synthetic video: motion-compensated prediction against the
//! previous reference frame within a `±w`-row window, residual computation,
//! quantisation and entropy-ish coding (run-length of quantised residuals),
//! with per-row encode costs that depend on the content. The dependency
//! structure — which is what the pipeline schedules — matches x264's.

pub mod encoder;
pub mod frame;
pub mod motion;
pub mod quality;
pub mod transform;

pub use encoder::{encode_bframe, encode_row, EncodeConfig, EncodedRow, RowContext};
pub use frame::{Frame, FrameType, VideoSource};
pub use motion::{diamond_search, full_search, MotionMatch, MotionVector};
pub use quality::{frame_psnr, psnr, RateDistortion};
pub use transform::{decode_block, encode_block, QuantisedBlock};
